//! The §III-E scaling claim, measured: GIS souping time is `O(N·g·F_v)` —
//! linear in the ingredient count — while LS is `O(e·(F_v+B_v))`,
//! *independent of N* (the per-epoch cost gains only the cheap Eq. 3
//! parameter mix per extra ingredient). Criterion output should show GIS
//! time roughly doubling from N=4 to N=8 to N=16 while LS stays nearly
//! flat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use soup_bench::harness::{model_config, train_pool, ExperimentPreset};
use soup_core::{GisSouping, LearnedHyper, LearnedSouping, SoupStrategy};
use soup_gnn::Arch;
use soup_graph::DatasetKind;

fn bench_scaling(c: &mut Criterion) {
    let mut preset = ExperimentPreset::quick();
    preset.train_epochs = 6;
    preset.ingredients = 16;
    let dataset = DatasetKind::Flickr.generate_scaled(42, preset.dataset_scale);
    let cfg = model_config(Arch::Gcn, &dataset);
    let pool = train_pool(&dataset, &cfg, &preset, 42);

    let hyper = LearnedHyper {
        epochs: 10,
        ..Default::default()
    };
    let mut group = c.benchmark_group("ingredient_scaling");
    group.sample_size(10);
    for &n in &[4usize, 8, 16] {
        let ingredients = &pool[..n];
        group.bench_with_input(BenchmarkId::new("GIS_g10", n), &n, |b, _| {
            b.iter(|| {
                std::hint::black_box(GisSouping::new(10).soup(ingredients, &dataset, &cfg, 1))
            })
        });
        group.bench_with_input(BenchmarkId::new("LS_e10", n), &n, |b, _| {
            b.iter(|| {
                std::hint::black_box(LearnedSouping::new(hyper).soup(
                    ingredients,
                    &dataset,
                    &cfg,
                    1,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
