//! Dense matrix product with autograd.

use crate::quant::QuantMat;
use crate::tape::{Tape, Var};

impl Tape {
    /// `a (m,k) × b (k,n)`.
    ///
    /// Backward: `∂L/∂a = g bᵀ`, `∂L/∂b = aᵀ g` — each side is computed
    /// only if gradients actually flow there. The pruning matters for
    /// Learned Souping, where layer inputs can be constants (the feature
    /// matrix) while only the soup-mixed weights carry gradient: skipping
    /// `g bᵀ` saves an `(n × f)` GEMM per layer per epoch.
    pub fn matmul(&self, a: Var, b: Var) -> Var {
        let out = self.value(a).matmul(&self.value(b));
        let need_a = self.requires_grad(a);
        let need_b = self.requires_grad(b);
        self.push_op(
            out,
            vec![a, b],
            Box::new(move |g, parents, _| {
                let ga = need_a.then(|| g.matmul_nt(&parents[1]));
                let gb = need_b.then(|| parents[0].matmul_tn(g));
                vec![ga, gb]
            }),
        )
    }

    /// `a (m,k) × w (k,n)` against a quantized weight matrix.
    ///
    /// **Inference-only**: the product enters the tape as a constant, so no
    /// gradient flows through it (there is no meaningful gradient w.r.t.
    /// int8 weights anyway — quantization happens once, post-soup). The
    /// activations stay f32; accumulation is f32 throughout.
    pub fn matmul_quant(&self, a: Var, w: &QuantMat) -> Var {
        let out = crate::quant::qmatmul(&self.value(a), w);
        self.constant(out)
    }
}

#[cfg(test)]
mod tests {
    use crate::rng::SplitMix64;
    use crate::tape::{gradcheck, Tape};
    use crate::tensor::Tensor;

    #[test]
    fn forward_matches_tensor_matmul() {
        let mut rng = SplitMix64::new(1);
        let a = Tensor::randn(3, 5, 1.0, &mut rng);
        let b = Tensor::randn(5, 2, 1.0, &mut rng);
        let tape = Tape::new();
        let va = tape.constant(a.clone());
        let vb = tape.constant(b.clone());
        let y = tape.matmul(va, vb);
        assert!(tape.value(y).allclose(&a.matmul(&b), 1e-6));
    }

    #[test]
    fn matmul_quant_is_constant_and_close_to_f32() {
        use crate::quant::{QuantKind, QuantMat};
        let mut rng = SplitMix64::new(11);
        let a = Tensor::randn(6, 9, 0.7, &mut rng);
        let w = Tensor::randn(9, 5, 0.7, &mut rng);
        let q = QuantMat::quantize(&w, QuantKind::Int8);
        let tape = Tape::new();
        let va = tape.constant(a.clone());
        let y = tape.matmul_quant(va, &q);
        // Forward agrees with the dequantized product; backward sees a leaf.
        assert!(tape.value(y).allclose(&a.matmul(&q.dequantize()), 1e-4));
        assert!(!tape.requires_grad(y));
    }

    #[test]
    fn gradcheck_both_sides() {
        let mut rng = SplitMix64::new(2);
        let a = Tensor::randn(4, 3, 0.5, &mut rng);
        let b = Tensor::randn(3, 5, 0.5, &mut rng);
        gradcheck(&|t, v| t.sum(t.matmul(v[0], v[1])), &[a, b], 1e-2, 2e-2).unwrap();
    }

    #[test]
    fn gradcheck_chained_matmul() {
        let mut rng = SplitMix64::new(3);
        let a = Tensor::randn(2, 3, 0.5, &mut rng);
        let b = Tensor::randn(3, 3, 0.5, &mut rng);
        let c = Tensor::randn(3, 2, 0.5, &mut rng);
        gradcheck(
            &|t, v| t.sum(t.matmul(t.matmul(v[0], v[1]), v[2])),
            &[a, b, c],
            1e-2,
            3e-2,
        )
        .unwrap();
    }

    #[test]
    fn grad_of_constant_side_not_materialised() {
        let tape = Tape::new();
        let a = tape.constant(Tensor::ones(2, 2));
        let b = tape.param(Tensor::ones(2, 2));
        let y = tape.sum(tape.matmul(a, b));
        let g = tape.backward(y);
        assert!(g.get(a).is_none());
        assert_eq!(g.get(b).unwrap().data(), &[2.0; 4]);
    }
}
