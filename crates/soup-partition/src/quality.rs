//! Partition quality metrics: edge cut and balance.

use crate::coarsen::WGraph;
use soup_graph::CsrGraph;

/// Total weight of edges crossing partition boundaries (each undirected
/// edge counted once) on a weighted working graph.
pub fn edge_cut_wgraph(g: &WGraph, assignment: &[u32]) -> f64 {
    let mut cut = 0.0f64;
    for v in 0..g.num_nodes() {
        for (u, w) in g.neighbors(v) {
            if assignment[v] != assignment[u as usize] {
                cut += w as f64;
            }
        }
    }
    cut / 2.0
}

/// Number of edges crossing partition boundaries on a [`CsrGraph`].
pub fn edge_cut(g: &CsrGraph, assignment: &[u32]) -> usize {
    assert_eq!(assignment.len(), g.num_nodes());
    let mut cut = 0usize;
    for v in 0..g.num_nodes() {
        for &u in g.neighbors(v) {
            if assignment[v] != assignment[u as usize] {
                cut += 1;
            }
        }
    }
    cut / 2
}

/// Maximum partition weight divided by the ideal (total/k): 1.0 is perfect
/// balance; METIS-style constraints allow e.g. ≤ 1.05.
pub fn balance_ratio(vweights: &[f32], assignment: &[u32], k: usize) -> f64 {
    assert_eq!(vweights.len(), assignment.len());
    let mut loads = vec![0.0f64; k];
    for (v, &p) in assignment.iter().enumerate() {
        loads[p as usize] += vweights[v] as f64;
    }
    let total: f64 = loads.iter().sum();
    if total == 0.0 {
        return 1.0;
    }
    let ideal = total / k as f64;
    loads.iter().cloned().fold(0.0f64, f64::max) / ideal
}

/// Per-partition counts of the nodes listed in `subset` (e.g. validation
/// nodes) — used to verify the §III-C validation-balancing requirement.
pub fn subset_counts(assignment: &[u32], subset: &[usize], k: usize) -> Vec<usize> {
    let mut counts = vec![0usize; k];
    for &v in subset {
        counts[assignment[v] as usize] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_cut_counts_crossings() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(edge_cut(&g, &[0, 0, 1, 1]), 1);
        assert_eq!(edge_cut(&g, &[0, 1, 0, 1]), 3);
        assert_eq!(edge_cut(&g, &[0, 0, 0, 0]), 0);
    }

    #[test]
    fn balance_ratio_perfect_and_skewed() {
        let w = vec![1.0f32; 4];
        assert_eq!(balance_ratio(&w, &[0, 0, 1, 1], 2), 1.0);
        assert_eq!(balance_ratio(&w, &[0, 0, 0, 1], 2), 1.5);
        assert_eq!(balance_ratio(&w, &[0, 0, 0, 0], 2), 2.0);
    }

    #[test]
    fn balance_uses_vertex_weights() {
        let w = vec![3.0f32, 1.0, 1.0, 1.0];
        // Part 0: {0} weight 3; part 1: {1,2,3} weight 3 -> perfectly even.
        assert_eq!(balance_ratio(&w, &[0, 1, 1, 1], 2), 1.0);
    }

    #[test]
    fn subset_counts_works() {
        let assignment = vec![0u32, 1, 0, 1, 0];
        let counts = subset_counts(&assignment, &[0, 1, 4], 2);
        assert_eq!(counts, vec![2, 1]);
    }
}
