//! Bounded LRU memoisation of PLS epoch subgraphs.
//!
//! Every PLS epoch draws `R` of `K` partitions and rebuilds the induced
//! subgraph, its propagation operator, its gathered features/labels and its
//! local fit mask from scratch — yet only `binom(K, R)` distinct subsets
//! exist (§VI-B), and at practical bench settings (small `K`, many epochs)
//! the same subsets recur constantly. [`SubgraphCache`] keys prepared
//! epochs by [`soup_graph::subset_key`] (sorted, deduplicated), which is
//! valid because [`InducedSubgraph::from_partitions`] retains nodes in
//! global-id order regardless of the draw's permutation — any two draws of
//! the same subset produce bit-identical subgraphs.
//!
//! Each entry also carries a per-subgraph [`PropCache`], so a cache hit
//! saves the subgraph construction, operator preparation, gathers *and* the
//! first-hop SpMM of that epoch's forward. The build of a fresh entry costs
//! exactly the SpMM the epoch's forward then consumes, so a miss is
//! net-neutral and `spmm_saved` counts hits only.

use soup_gnn::cache::PropCache;
use soup_gnn::model::PropOps;
use soup_graph::InducedSubgraph;
use soup_tensor::Tensor;

/// One fully prepared PLS epoch: everything `learned_step` needs.
#[derive(Debug)]
pub struct SubgraphEntry {
    /// The induced partition-union subgraph.
    pub sub: InducedSubgraph,
    /// Propagation operator prepared on the subgraph.
    pub ops: PropOps,
    /// Features gathered into subgraph-local order.
    pub features: Tensor,
    /// Labels gathered into subgraph-local order.
    pub labels: Vec<u32>,
    /// Fit-mask nodes in subgraph-local ids.
    pub local_mask: Vec<usize>,
    /// First-hop aggregation cache over `features` — `None` when the run
    /// has `prop_cache` disabled, so the baseline never pays a build SpMM
    /// it won't consume.
    pub prop: Option<PropCache>,
}

/// A bounded least-recently-used cache of [`SubgraphEntry`]s keyed by the
/// canonical partition subset. Capacity 0 disables caching entirely.
///
/// Lookups are O(capacity) linear scans — capacities are small (tens of
/// entries; sizing guidance vs. `binom(K, R)` in DESIGN.md §9), and each
/// entry holds megabytes, so pointer-chasing map structures buy nothing.
#[derive(Debug, Default)]
pub struct SubgraphCache {
    capacity: usize,
    /// Most-recently-used last.
    entries: Vec<(Vec<u32>, SubgraphEntry)>,
    hits: usize,
    misses: usize,
}

impl SubgraphCache {
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            entries: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Look up the entry for `key` (a [`soup_graph::subset_key`] output),
    /// building and inserting it via `build` on a miss. Returns `None`
    /// only when the cache is disabled (capacity 0) — the caller then
    /// builds the epoch itself without retaining it.
    pub fn get_or_insert_with(
        &mut self,
        key: Vec<u32>,
        build: impl FnOnce() -> SubgraphEntry,
    ) -> Option<&SubgraphEntry> {
        if self.capacity == 0 {
            return None;
        }
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            self.hits += 1;
            soup_obs::counter!("soup.pls.subgraph_cache_hits").inc();
            let entry = self.entries.remove(pos);
            self.entries.push(entry);
        } else {
            self.misses += 1;
            soup_obs::counter!("soup.pls.subgraph_cache_misses").inc();
            if self.entries.len() >= self.capacity {
                self.entries.remove(0);
                soup_obs::counter!("soup.pls.subgraph_cache_evictions").inc();
            }
            self.entries.push((key, build()));
        }
        soup_obs::gauge!("soup.pls.subcache_occupancy").set(self.entries.len() as f64);
        Some(&self.entries.last().expect("just pushed or promoted").1)
    }

    /// Cache hits so far — each one skipped a subgraph build and one SpMM.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Cache misses so far (entries built).
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soup_gnn::Arch;
    use soup_graph::CsrGraph;
    use soup_tensor::SplitMix64;

    fn entry_for(sub: InducedSubgraph, features: &Tensor, labels: &[u32]) -> SubgraphEntry {
        let ops = PropOps::prepare(Arch::Gcn, &sub.graph);
        let sub_x = sub.gather_features(features);
        let sub_labels = sub.gather_labels(labels);
        let prop = Some(PropCache::new(&ops, &sub_x));
        SubgraphEntry {
            sub,
            ops,
            features: sub_x,
            labels: sub_labels,
            local_mask: vec![0],
            prop,
        }
    }

    fn setup() -> (CsrGraph, Tensor, Vec<u32>, Vec<u32>) {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let mut rng = SplitMix64::new(1);
        let x = Tensor::randn(6, 3, 1.0, &mut rng);
        let labels = vec![0u32, 1, 0, 1, 0, 1];
        let assignment = vec![0u32, 0, 1, 1, 2, 2];
        (g, x, labels, assignment)
    }

    #[test]
    fn hit_returns_same_entry_for_permuted_key() {
        let (g, x, labels, assignment) = setup();
        let mut cache = SubgraphCache::new(4);
        let build = |sel: &[u32]| {
            let sub = InducedSubgraph::from_partitions(&g, &assignment, sel);
            entry_for(sub, &x, &labels)
        };
        let first = cache
            .get_or_insert_with(soup_graph::subset_key(&[0, 1]), || build(&[0, 1]))
            .unwrap()
            .features
            .clone();
        let again = cache
            .get_or_insert_with(soup_graph::subset_key(&[1, 0]), || build(&[1, 0]))
            .unwrap()
            .features
            .clone();
        assert_eq!(first, again);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let (g, x, labels, assignment) = setup();
        let mut cache = SubgraphCache::new(2);
        for sel in [&[0u32][..], &[1u32][..], &[0u32][..], &[2u32][..]] {
            cache.get_or_insert_with(soup_graph::subset_key(sel), || {
                let sub = InducedSubgraph::from_partitions(&g, &assignment, sel);
                entry_for(sub, &x, &labels)
            });
        }
        // [0] was refreshed before [2] arrived, so [1] got evicted.
        assert_eq!(cache.len(), 2);
        cache.get_or_insert_with(soup_graph::subset_key(&[0]), || {
            panic!("[0] should still be cached")
        });
        assert_eq!(cache.hits(), 2);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut cache = SubgraphCache::new(0);
        assert!(cache
            .get_or_insert_with(vec![0], || panic!("must not build"))
            .is_none());
        assert!(cache.is_empty());
        assert_eq!(cache.hits(), 0);
    }
}
