//! Steady-state allocation check: once the workspace pool is warm, a
//! training run over the same graph/model shapes must perform **zero**
//! fresh hot-path buffer allocations — every tensor, gradient and kernel
//! workspace is recycled from the pool.
//!
//! The check reads the process-global `tensor.pool.misses` counter, so it
//! lives alone in its own integration-test binary (own process, single
//! test) where no other test churns the pool concurrently.

use soup_gnn::model::init_params;
use soup_gnn::{train_single, ModelConfig, TrainConfig};
use soup_graph::DatasetKind;
use soup_tensor::SplitMix64;

#[test]
fn warm_pool_training_epoch_allocates_nothing() {
    let d = DatasetKind::Flickr.generate_scaled(11, 0.12);
    let cfg = ModelConfig::gcn(d.num_features(), d.num_classes()).with_hidden(16);
    let mut rng = SplitMix64::new(11);
    let init = init_params(&cfg, &mut rng);
    let tc = TrainConfig {
        epochs: 3,
        eval_every: 1,
        ..TrainConfig::quick()
    };

    // Warm-up run: populates the pool with every buffer shape the training
    // loop uses (activations, gradients, Adam state, GEMM/SpMM workspaces,
    // eval buffers). Drop its result so held parameter buffers return too.
    let warm = train_single(&d, &cfg, &tc, &init, 1);
    drop(warm);

    let misses_before = soup_obs::registry::counter("tensor.pool.misses").get();
    let hits_before = soup_obs::registry::counter("tensor.pool.hits").get();

    // Steady-state run: identical shapes, so every pooled take must hit.
    let tm = train_single(&d, &cfg, &tc, &init, 2);
    assert!(tm.val_accuracy.is_finite());

    let misses = soup_obs::registry::counter("tensor.pool.misses").get() - misses_before;
    let hits = soup_obs::registry::counter("tensor.pool.hits").get() - hits_before;
    assert!(
        hits > 0,
        "steady-state run should recycle buffers from the pool"
    );
    assert_eq!(
        misses, 0,
        "warm-pool training run performed {misses} fresh hot-path \
         allocations (hits: {hits}); some buffer shape is not recycling"
    );
}
