//! Crash-safe Phase-2: kill-at-every-epoch resume, storage-fault healing,
//! and checkpoint-cadence invariants.
//!
//! The headline invariant (ISSUE 5's acceptance bar): an LS or PLS run
//! killed after *any* durable epoch and resumed with `--resume` must
//! produce the final α mix and accuracy **bit-identically** to an
//! uninterrupted run — the checkpoint carries the full optimizer state
//! (α, momentum velocity, RNG stream, best-so-far, watchdog budget), so
//! resumption replays exactly the arithmetic the original run would have
//! performed.

use enhanced_soups::prelude::*;
use enhanced_soups::soup::{
    LearnedHyper, LearnedSouping, PartitionLearnedSouping, SoupCtx, SoupOutcome,
};
use std::path::PathBuf;

/// All runs in this suite share one seed; what varies is the persistence
/// handle. Routes through the unified `SoupStrategy::try_soup` entry point.
fn try_soup(
    strategy: &dyn SoupStrategy,
    ingredients: &[Ingredient],
    dataset: &Dataset,
    cfg: &ModelConfig,
    persist: Option<&Phase2Persist>,
) -> Result<Option<SoupOutcome>> {
    strategy.try_soup(&SoupCtx::new(ingredients, dataset, cfg, 42).with_persist_opt(persist))
}

fn setup() -> (Dataset, ModelConfig, Vec<Ingredient>) {
    let dataset = DatasetKind::Flickr.generate_scaled(11, 0.15);
    let cfg = ModelConfig::gcn(dataset.num_features(), dataset.num_classes()).with_hidden(12);
    let tc = TrainConfig {
        epochs: 6,
        ..TrainConfig::quick()
    };
    let ingredients = train_ingredients(&dataset, &cfg, &tc, 4, 2, 7);
    (dataset, cfg, ingredients)
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("soup_dur_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn bit_identical(a: &SoupOutcome, b: &SoupOutcome) -> bool {
    a.val_accuracy == b.val_accuracy
        && a.params
            .flat()
            .zip(b.params.flat())
            .all(|(x, y)| x.data() == y.data())
}

const EPOCHS: usize = 5;

fn hyper() -> LearnedHyper {
    LearnedHyper {
        epochs: EPOCHS,
        ..Default::default()
    }
}

/// LS killed after every epoch 1..EPOCHS, resumed, must match the
/// uninterrupted run bit for bit.
#[test]
fn ls_kill_at_every_epoch_resumes_bit_identically() {
    let (dataset, cfg, ingredients) = setup();
    let ls = LearnedSouping::new(hyper());
    let baseline = try_soup(&ls, &ingredients, &dataset, &cfg, None)
        .unwrap()
        .unwrap();

    for kill_after in 1..EPOCHS {
        let dir = tmpdir(&format!("ls_kill_{kill_after}"));
        let stopping = Phase2Persist::new(&dir)
            .every(1)
            .stop_after(Some(kill_after));
        let stopped = try_soup(&ls, &ingredients, &dataset, &cfg, Some(&stopping)).unwrap();
        assert!(
            stopped.is_none(),
            "stop_after({kill_after}) must terminate before the mix completes"
        );

        let resuming = Phase2Persist::new(&dir).every(1).resume(true);
        let resumed = try_soup(&ls, &ingredients, &dataset, &cfg, Some(&resuming))
            .unwrap()
            .expect("resumed run must complete");
        assert!(
            bit_identical(&baseline, &resumed),
            "LS resumed from epoch {kill_after} diverged from the uninterrupted run \
             (acc {} vs {})",
            baseline.val_accuracy,
            resumed.val_accuracy
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Same bar for PLS: the draw sequence (partition subsets per epoch) is
/// part of the persisted RNG state, so resumption replays identical draws.
#[test]
fn pls_kill_at_every_epoch_resumes_bit_identically() {
    let (dataset, cfg, ingredients) = setup();
    let pls = PartitionLearnedSouping::new(hyper(), 4, 2);
    let baseline = try_soup(&pls, &ingredients, &dataset, &cfg, None)
        .unwrap()
        .unwrap();

    for kill_after in 1..EPOCHS {
        let dir = tmpdir(&format!("pls_kill_{kill_after}"));
        let stopping = Phase2Persist::new(&dir)
            .every(1)
            .stop_after(Some(kill_after));
        let stopped = try_soup(&pls, &ingredients, &dataset, &cfg, Some(&stopping)).unwrap();
        assert!(stopped.is_none(), "stop_after({kill_after}) must stop PLS");

        let resuming = Phase2Persist::new(&dir).every(1).resume(true);
        let resumed = try_soup(&pls, &ingredients, &dataset, &cfg, Some(&resuming))
            .unwrap()
            .expect("resumed PLS run must complete");
        assert!(
            bit_identical(&baseline, &resumed),
            "PLS resumed from epoch {kill_after} diverged from the uninterrupted run"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A double kill (stop at 1, resume-and-stop at 3, resume to completion)
/// also lands on the uninterrupted result — resume composes.
#[test]
fn ls_double_kill_composes() {
    let (dataset, cfg, ingredients) = setup();
    let ls = LearnedSouping::new(hyper());
    let baseline = try_soup(&ls, &ingredients, &dataset, &cfg, None)
        .unwrap()
        .unwrap();
    let dir = tmpdir("ls_double");

    let first = Phase2Persist::new(&dir).every(1).stop_after(Some(1));
    assert!(try_soup(&ls, &ingredients, &dataset, &cfg, Some(&first))
        .unwrap()
        .is_none());
    let second = Phase2Persist::new(&dir)
        .every(1)
        .resume(true)
        .stop_after(Some(3));
    assert!(try_soup(&ls, &ingredients, &dataset, &cfg, Some(&second))
        .unwrap()
        .is_none());
    let last = Phase2Persist::new(&dir).every(1).resume(true);
    let resumed = try_soup(&ls, &ingredients, &dataset, &cfg, Some(&last))
        .unwrap()
        .unwrap();
    assert!(bit_identical(&baseline, &resumed), "double kill diverged");
    std::fs::remove_dir_all(&dir).ok();
}

/// Storage faults on the Phase-2 state file heal through the store's
/// read-back verification: a resumed run still matches the fault-free one.
#[test]
fn ls_resume_survives_storage_faults() {
    let (dataset, cfg, ingredients) = setup();
    let ls = LearnedSouping::new(hyper());
    let baseline = try_soup(&ls, &ingredients, &dataset, &cfg, None)
        .unwrap()
        .unwrap();
    let dir = tmpdir("ls_faults");

    let stopping = Phase2Persist::new(&dir)
        .every(1)
        .stop_after(Some(2))
        .faults(Some(StorageFaultPlan::new(1.0, 99)));
    assert!(try_soup(&ls, &ingredients, &dataset, &cfg, Some(&stopping))
        .unwrap()
        .is_none());
    let resuming = Phase2Persist::new(&dir).every(1).resume(true);
    let resumed = try_soup(&ls, &ingredients, &dataset, &cfg, Some(&resuming))
        .unwrap()
        .unwrap();
    assert!(
        bit_identical(&baseline, &resumed),
        "torn writes on the state file must heal, not corrupt the resume"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A corrupt state file (damaged on disk after the run stopped) falls back
/// to a fresh run instead of propagating garbage — and a fresh run is
/// still the fault-free answer.
#[test]
fn corrupt_state_file_falls_back_to_fresh_run() {
    let (dataset, cfg, ingredients) = setup();
    let ls = LearnedSouping::new(hyper());
    let baseline = try_soup(&ls, &ingredients, &dataset, &cfg, None)
        .unwrap()
        .unwrap();
    let dir = tmpdir("ls_corrupt");

    let stopping = Phase2Persist::new(&dir).every(1).stop_after(Some(2));
    assert!(try_soup(&ls, &ingredients, &dataset, &cfg, Some(&stopping))
        .unwrap()
        .is_none());
    // Flip one payload byte of the durable state.
    let state_path = Phase2Persist::state_path(&dir, "ls");
    let mut bytes = std::fs::read(&state_path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    std::fs::write(&state_path, bytes).unwrap();

    let resuming = Phase2Persist::new(&dir).every(1).resume(true);
    let resumed = try_soup(&ls, &ingredients, &dataset, &cfg, Some(&resuming))
        .unwrap()
        .unwrap();
    assert!(
        bit_identical(&baseline, &resumed),
        "corrupt state must restart cleanly and reach the fault-free result"
    );
    std::fs::remove_dir_all(&dir).ok();
}
