//! Induced subgraphs and partition-union subgraphs.
//!
//! Partition Learned Souping builds, per epoch, a subgraph from R randomly
//! selected partitions, "preserving the edges cut during partitioning to
//! retain the graph's structural integrity" (§III-C / Eq. 5). That is an
//! *induced* subgraph on the union of the selected partitions: any edge
//! whose both endpoints fall in selected partitions survives, including
//! edges that cross between two different selected partitions.

use crate::csr::CsrGraph;
use crate::splits::Splits;
use soup_tensor::Tensor;

/// A node-induced subgraph with bidirectional index maps.
#[derive(Debug, Clone)]
pub struct InducedSubgraph {
    /// The subgraph itself (local node ids `0..k`).
    pub graph: CsrGraph,
    /// `local_to_global[new] = old`.
    pub local_to_global: Vec<usize>,
    /// `global_to_local[old] = Some(new)` for retained nodes.
    pub global_to_local: Vec<Option<usize>>,
}

impl InducedSubgraph {
    /// Induce on an arbitrary node set (order defines local ids; duplicates
    /// are rejected).
    pub fn new(graph: &CsrGraph, nodes: &[usize]) -> Self {
        let n = graph.num_nodes();
        let mut global_to_local: Vec<Option<usize>> = vec![None; n];
        for (new, &old) in nodes.iter().enumerate() {
            assert!(old < n, "node {old} out of range");
            assert!(global_to_local[old].is_none(), "duplicate node {old}");
            global_to_local[old] = Some(new);
        }
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for (new, &old) in nodes.iter().enumerate() {
            for &u in graph.neighbors(old) {
                if let Some(nu) = global_to_local[u as usize] {
                    if new < nu {
                        edges.push((new as u32, nu as u32));
                    }
                }
            }
        }
        let sub = CsrGraph::from_edges(nodes.len(), &edges);
        Self {
            graph: sub,
            local_to_global: nodes.to_vec(),
            global_to_local,
        }
    }

    /// Induce on the union of the partitions listed in `selected`, given a
    /// node→partition assignment. Cut edges between selected partitions are
    /// preserved (Eq. 5).
    pub fn from_partitions(graph: &CsrGraph, assignment: &[u32], selected: &[u32]) -> Self {
        assert_eq!(
            assignment.len(),
            graph.num_nodes(),
            "assignment length mismatch"
        );
        let sel: std::collections::HashSet<u32> = selected.iter().copied().collect();
        let nodes: Vec<usize> = (0..graph.num_nodes())
            .filter(|&v| sel.contains(&assignment[v]))
            .collect();
        Self::new(graph, &nodes)
    }

    /// Number of retained nodes.
    pub fn num_nodes(&self) -> usize {
        self.local_to_global.len()
    }

    /// Gather global node features into subgraph-local order.
    pub fn gather_features(&self, features: &Tensor) -> Tensor {
        features.gather_rows(&self.local_to_global)
    }

    /// Gather global labels into subgraph-local order.
    pub fn gather_labels(&self, labels: &[u32]) -> Vec<u32> {
        self.local_to_global.iter().map(|&v| labels[v]).collect()
    }

    /// Localise global splits onto the subgraph.
    pub fn localise_splits(&self, splits: &Splits) -> Splits {
        splits.localise(&self.global_to_local)
    }
}

/// Canonical cache key for a partition subset: sorted, deduplicated.
///
/// [`InducedSubgraph::from_partitions`] retains nodes in *global-id* order
/// regardless of the order (or multiplicity) of `selected`, so two draws of
/// the same subset under different permutations produce identical
/// subgraphs — a memoisation cache keyed by `subset_key` can reuse them.
pub fn subset_key(selected: &[u32]) -> Vec<u32> {
    let mut key = selected.to_vec();
    key.sort_unstable();
    key.dedup();
    key
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path 0-1-2-3-4 plus chord 0-4.
    fn path5() -> CsrGraph {
        CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
    }

    #[test]
    fn induces_internal_edges_only() {
        let g = path5();
        let sub = InducedSubgraph::new(&g, &[0, 1, 2]);
        assert_eq!(sub.graph.num_nodes(), 3);
        assert_eq!(sub.graph.num_edges(), 2); // 0-1, 1-2; chord to 4 cut
        assert!(sub.graph.has_edge(0, 1));
        assert!(sub.graph.has_edge(1, 2));
    }

    #[test]
    fn index_maps_are_inverse() {
        let g = path5();
        let sub = InducedSubgraph::new(&g, &[4, 2, 0]);
        assert_eq!(sub.local_to_global, vec![4, 2, 0]);
        assert_eq!(sub.global_to_local[4], Some(0));
        assert_eq!(sub.global_to_local[2], Some(1));
        assert_eq!(sub.global_to_local[0], Some(2));
        assert_eq!(sub.global_to_local[1], None);
        // Edge 0-4 survives with local ids 2-0.
        assert!(sub.graph.has_edge(0, 2));
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_nodes_panic() {
        InducedSubgraph::new(&path5(), &[0, 0]);
    }

    #[test]
    fn partition_union_preserves_cut_edges() {
        let g = path5();
        // Partitions: {0,1} / {2,3} / {4}.
        let assignment = vec![0u32, 0, 1, 1, 2];
        let sub = InducedSubgraph::from_partitions(&g, &assignment, &[0, 1]);
        assert_eq!(sub.num_nodes(), 4);
        // Edge 1-2 crosses partitions 0 and 1 but both are selected: kept.
        let l1 = sub.global_to_local[1].unwrap();
        let l2 = sub.global_to_local[2].unwrap();
        assert!(
            sub.graph.has_edge(l1, l2),
            "cut edge between selected partitions lost"
        );
        // Edges to node 4 (unselected) are dropped.
        assert_eq!(sub.graph.num_edges(), 3);
    }

    #[test]
    fn single_partition_has_no_cut_edges() {
        // The §VI-B observation: R=1 never uses cut edges.
        let g = path5();
        let assignment = vec![0u32, 0, 1, 1, 2];
        let sub = InducedSubgraph::from_partitions(&g, &assignment, &[1]);
        assert_eq!(sub.num_nodes(), 2);
        assert_eq!(sub.graph.num_edges(), 1); // only 2-3 internal
    }

    #[test]
    fn gather_features_and_labels() {
        let g = path5();
        let feats = Tensor::from_vec(5, 2, (0..10).map(|x| x as f32).collect());
        let labels = vec![0u32, 1, 2, 3, 4];
        let sub = InducedSubgraph::new(&g, &[3, 1]);
        let f = sub.gather_features(&feats);
        assert_eq!(f.data(), &[6.0, 7.0, 2.0, 3.0]);
        assert_eq!(sub.gather_labels(&labels), vec![3, 1]);
    }

    #[test]
    fn localise_splits() {
        let g = path5();
        let splits = Splits {
            train: vec![0, 2],
            val: vec![1, 3],
            test: vec![4],
        };
        let sub = InducedSubgraph::new(&g, &[1, 2, 3]);
        let local = sub.localise_splits(&splits);
        assert_eq!(local.train, vec![1]); // node 2 -> local 1
        assert_eq!(local.val, vec![0, 2]); // nodes 1,3 -> local 0,2
        assert!(local.test.is_empty());
    }

    #[test]
    fn subset_key_is_canonical() {
        assert_eq!(subset_key(&[3, 1, 2]), vec![1, 2, 3]);
        assert_eq!(subset_key(&[2, 1, 2]), vec![1, 2]);
        assert_eq!(subset_key(&[3, 1, 2]), subset_key(&[2, 3, 1]));
    }

    #[test]
    fn from_partitions_is_order_independent() {
        // The invariant subset_key-based caches rely on: any permutation of
        // the same subset yields a bit-identical subgraph and index maps.
        let g = path5();
        let assignment = vec![0u32, 0, 1, 1, 2];
        let a = InducedSubgraph::from_partitions(&g, &assignment, &[0, 1]);
        let b = InducedSubgraph::from_partitions(&g, &assignment, &[1, 0]);
        assert_eq!(a.local_to_global, b.local_to_global);
        assert_eq!(a.global_to_local, b.global_to_local);
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        for v in 0..a.num_nodes() {
            assert_eq!(a.graph.neighbors(v), b.graph.neighbors(v));
        }
    }

    #[test]
    fn full_node_set_is_identity() {
        let g = path5();
        let sub = InducedSubgraph::new(&g, &[0, 1, 2, 3, 4]);
        assert_eq!(sub.graph.num_edges(), g.num_edges());
        for v in 0..5 {
            assert_eq!(sub.global_to_local[v], Some(v));
        }
    }
}
