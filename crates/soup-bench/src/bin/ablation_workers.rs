//! §III-A / Eq. (1)-(2) validation: measured Phase-1 wall-clock vs the
//! analytic schedule model across worker counts.
//!
//! Workers run in exclusive-device mode (one single-threaded kernel pool
//! each), modelling the paper's one-GPU-per-worker setup — otherwise the
//! kernels' shared-pool parallelism hides worker-level scaling.
//!
//! Usage: `cargo run --release -p soup-bench --bin ablation_workers [preset]`

use soup_bench::harness::{model_config, write_csv, ExperimentPreset};
use soup_distrib::{predicted_total_time, simulate_schedule, train_ingredients_opts, TrainOpts};
use soup_gnn::{Arch, TrainConfig};
use soup_graph::DatasetKind;

fn main() {
    let preset = ExperimentPreset::from_args();
    let dataset = DatasetKind::Flickr.generate_scaled(42, preset.dataset_scale);
    let cfg = model_config(Arch::Gcn, &dataset);
    let tc = TrainConfig {
        epochs: preset.train_epochs,
        early_stop_patience: None,
        ..TrainConfig::quick()
    };
    let n = preset.ingredients.max(8);
    println!(
        "ABLATION workers: Eq. (1)/(2) schedule model vs measured (flickr/GCN, N={n} ingredients, exclusive devices)"
    );

    // Calibrate T_single with a single-worker run.
    let opts = |w: usize| {
        TrainOpts::default()
            .with_workers(w)
            .with_seed(7)
            .with_exclusive_devices(true)
    };
    let single = train_ingredients_opts(&dataset, &cfg, &tc, 1, &opts(1))
        .expect("calibration run trains without a checkpoint dir");
    let t_single = single.wall_time.as_secs_f64();
    println!("calibrated T_single = {t_single:.3}s");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>10}",
        "workers", "measured(s)", "Eq.(1)(s)", "simulated", "imbalance"
    );
    let mut rows = Vec::new();
    for w in [1usize, 2, 4, 8] {
        let run = train_ingredients_opts(&dataset, &cfg, &tc, n, &opts(w))
            .expect("ablation run trains without a checkpoint dir");
        let measured = run.wall_time.as_secs_f64();
        let predicted = predicted_total_time(n, w, t_single);
        let sim = simulate_schedule(&vec![t_single; n], w);
        println!(
            "{w:>8} {measured:>12.3} {predicted:>12.3} {:>12.3} {:>10.3}",
            sim.makespan,
            sim.imbalance()
        );
        rows.push(format!(
            "{w},{measured:.4},{predicted:.4},{:.4},{:.4}",
            sim.makespan,
            sim.imbalance()
        ));
    }
    println!("\nnote: measured tracks Eq.(1) until physical cores are oversubscribed");
    let _ = write_csv(
        "ablation_workers",
        "workers,measured_s,eq1_s,simulated_s,imbalance",
        &rows,
    )
    .map(|p| soup_obs::info!("wrote {}", p.display()));
    soup_bench::harness::finish_observability();
}
