//! The artifact [`Store`]: a directory of `soup-ckpt/2` envelopes written
//! durably, verified by read-back, and (in test/CI harnesses) struck by a
//! deterministic [`StorageFaultPlan`].
//!
//! Every write follows *seal → (inject fault) → write durable → read back
//! and verify → heal*. Because the clean payload is still in memory when a
//! torn or flipped write is detected, recovery is a clean durable rewrite
//! — which is exactly why every storage-fault run converges to the
//! fault-free artifacts (asserted by `tests/durability.rs`).

use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use soup_error::SoupError;

use crate::atomic::write_durable;
use crate::envelope;
use crate::fault::{self, StorageFaultPlan};

type Result<T> = std::result::Result<T, SoupError>;

/// A crash-safe envelope store rooted at one artifact directory.
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
    faults: Option<StorageFaultPlan>,
    /// Artifacts already struck by this process — faults fire on the first
    /// write only, mirroring Phase-1's first-attempt-only `FaultPlan`.
    struck: Mutex<HashSet<String>>,
}

impl Store {
    /// Open (creating if needed) the artifact directory at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root).map_err(|e| SoupError::io_at(&root, e))?;
        Ok(Self {
            root,
            faults: None,
            struck: Mutex::new(HashSet::new()),
        })
    }

    /// Attach a deterministic storage-fault schedule (None disables).
    pub fn with_faults(mut self, faults: Option<StorageFaultPlan>) -> Self {
        self.faults = faults;
        self
    }

    /// The artifact directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Absolute path of the artifact named `name`.
    pub fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    /// Durably write `payload` as a sealed envelope under `name`.
    ///
    /// If a storage fault strikes the write (per the attached plan), the
    /// damaged bytes land on disk first; the read-back verification then
    /// detects the corruption and heals it with a clean durable rewrite.
    pub fn write_envelope(&self, name: &str, payload: &[u8]) -> Result<()> {
        let sealed = envelope::seal(payload);
        let path = self.path(name);
        soup_obs::counter!("store.writes").inc();

        let mut on_disk = sealed.clone();
        if let Some(plan) = &self.faults {
            let first_write = self.struck.lock().unwrap().insert(name.to_string());
            if first_write {
                if let Some(f) = plan.fault_for(name, on_disk.len()) {
                    fault::apply(f, &mut on_disk);
                    soup_obs::counter!("store.faults_injected").inc();
                    soup_obs::debug!("store: injected {f:?} into {name}");
                }
            }
        }
        write_durable(&path, &on_disk)?;

        // Read-back verification: the write only counts once the bytes on
        // disk open cleanly. A detected tear/flip is healed immediately —
        // the clean payload is still in hand.
        match std::fs::read(&path) {
            Ok(bytes) if envelope::open(&bytes, name).is_ok() && bytes == sealed => Ok(()),
            Ok(_) => {
                soup_obs::counter!("store.corrupt_detected").inc();
                soup_obs::warn!("store: {name} failed read-back verification; rewriting");
                write_durable(&path, &sealed)?;
                let healed = std::fs::read(&path).map_err(|e| SoupError::io_at(&path, e))?;
                envelope::open(&healed, name)?;
                soup_obs::counter!("store.rewrites").inc();
                Ok(())
            }
            Err(e) => Err(SoupError::io_at(&path, e)),
        }
    }

    /// Read and validate the envelope named `name`, returning its payload.
    pub fn read_envelope(&self, name: &str) -> Result<Vec<u8>> {
        read_payload(self.path(name))
    }

    /// True when the artifact exists on disk (no validation).
    pub fn exists(&self, name: &str) -> bool {
        self.path(name).exists()
    }
}

/// Read a `soup-ckpt/2` file and return its validated payload.
pub fn read_payload(path: impl AsRef<Path>) -> Result<Vec<u8>> {
    let path = path.as_ref();
    let bytes = std::fs::read(path).map_err(|e| SoupError::io_at(path, e))?;
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("?");
    envelope::open(&bytes, name).map(|p| p.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(tag: &str) -> Store {
        let d = std::env::temp_dir().join(format!("soup-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        Store::open(d).unwrap()
    }

    #[test]
    fn round_trip() {
        let s = store("rt");
        s.write_envelope("a.ck", b"{\"x\":1}").unwrap();
        assert_eq!(s.read_envelope("a.ck").unwrap(), b"{\"x\":1}");
        assert!(s.exists("a.ck"));
        assert!(!s.exists("b.ck"));
    }

    #[test]
    fn faulty_write_heals_to_clean_bytes() {
        // rate 1.0: every first write is struck; read-back must heal all.
        let s = store("heal").with_faults(Some(StorageFaultPlan::new(1.0, 13)));
        for i in 0..16 {
            let name = format!("ingredient_{i}.ck");
            let payload = format!("{{\"id\":{i}}}").into_bytes();
            s.write_envelope(&name, &payload).unwrap();
            assert_eq!(
                s.read_envelope(&name).unwrap(),
                payload,
                "{name} not healed"
            );
        }
    }

    #[test]
    fn second_write_is_not_struck() {
        let s = store("once").with_faults(Some(StorageFaultPlan::new(1.0, 99)));
        s.write_envelope("x.ck", b"v1").unwrap();
        s.write_envelope("x.ck", b"v2").unwrap();
        assert_eq!(s.read_envelope("x.ck").unwrap(), b"v2");
    }

    #[test]
    fn read_missing_is_io() {
        let s = store("missing");
        assert_eq!(s.read_envelope("nope.ck").unwrap_err().kind(), "io");
    }

    #[test]
    fn read_corrupt_is_corrupt() {
        let s = store("corrupt");
        s.write_envelope("a.ck", b"payload").unwrap();
        let p = s.path("a.ck");
        let mut bytes = std::fs::read(&p).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10;
        std::fs::write(&p, &bytes).unwrap();
        assert_eq!(s.read_envelope("a.ck").unwrap_err().kind(), "corrupt");
    }
}
