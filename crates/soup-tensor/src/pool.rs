//! Workspace buffer pool: a thread-safe, size-bucketed free list for the
//! `Vec<f32>` buffers behind tensors and kernel workspaces.
//!
//! Training is shape-periodic: every epoch allocates the same set of
//! activation, gradient and packing buffers, drops them, and allocates them
//! again. Without a pool each kernel call pays a fresh heap allocation (and,
//! for large buffers, fresh page faults); with it, steady-state epochs
//! recycle the previous epoch's buffers and the hot path performs zero
//! fresh allocations.
//!
//! Design:
//! - **Exact-size buckets.** Buffers are keyed by their `Vec` capacity.
//!   Training workloads use a small, fixed set of shapes, so exact keys give
//!   perfect reuse with *zero over-allocation* — important because tensor
//!   memory accounting feeds the paper's Fig. 4b comparisons.
//! - **Separate accounting.** Bytes sitting idle in the pool are tracked in
//!   [`MemoryMeter`](crate::memory::MemoryMeter) via the `pooled` counter,
//!   *not* in `current` (live bytes): a pooled buffer is memory the process
//!   holds but no tensor owns. [`trim`] releases everything back to the
//!   allocator, after which `DEVICE_MEMORY.pooled()` reads zero.
//! - **Observability.** `tensor.pool.hits` / `misses` / `returns` /
//!   `bypass` counters and the `tensor.pool.idle_bytes` gauge expose pool
//!   behaviour; a steady-state epoch shows hits only.
//!
//! The pool can be disabled for honest no-pool baselines with `SOUP_POOL=0`
//! (read once, at first use).

use crate::memory::{MemGuard, DEVICE_MEMORY};
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Buffers smaller than this (in elements) bypass the pool: the allocator
/// handles tiny blocks faster than a lock + hash probe.
const MIN_POOL_LEN: usize = 64;

/// Free buffers retained per exact capacity; beyond this, returns fall
/// through to the allocator. Bounded by peak live usage anyway (a buffer
/// must have been live to be returned), this is a secondary backstop
/// against pathological shape churn.
const MAX_PER_BUCKET: usize = 256;

fn pool_enabled() -> bool {
    static CACHED: OnceLock<bool> = OnceLock::new();
    *CACHED.get_or_init(|| std::env::var("SOUP_POOL").map_or(true, |v| v != "0"))
}

fn buckets() -> &'static Mutex<HashMap<usize, Vec<Vec<f32>>>> {
    static POOL: OnceLock<Mutex<HashMap<usize, Vec<Vec<f32>>>>> = OnceLock::new();
    POOL.get_or_init(|| Mutex::new(HashMap::new()))
}

fn bytes_of_cap(cap: usize) -> usize {
    cap * std::mem::size_of::<f32>()
}

/// Pop a pooled buffer with capacity exactly `len`, adjusting the idle
/// accounting. Contents are stale.
fn pop(len: usize) -> Option<Vec<f32>> {
    let mut map = buckets().lock().unwrap_or_else(|e| e.into_inner());
    let bucket = map.get_mut(&len)?;
    let v = bucket.pop()?;
    DEVICE_MEMORY.pool_sub(bytes_of_cap(v.capacity()));
    soup_obs::gauge!("tensor.pool.idle_bytes").set(DEVICE_MEMORY.pooled() as f64);
    Some(v)
}

/// Take a zero-filled buffer of `len` elements (for accumulation outputs).
pub fn take_zeroed(len: usize) -> Vec<f32> {
    if len < MIN_POOL_LEN || !pool_enabled() {
        soup_obs::counter!("tensor.pool.bypass").inc();
        return vec![0.0; len];
    }
    match pop(len) {
        Some(mut v) => {
            soup_obs::counter!("tensor.pool.hits").inc();
            v.clear();
            v.resize(len, 0.0);
            v
        }
        None => {
            soup_obs::counter!("tensor.pool.misses").inc();
            vec![0.0; len]
        }
    }
}

/// Take a buffer of `len` elements whose contents are arbitrary (but
/// initialised). For workspaces that overwrite every slot before reading —
/// packing buffers, `map`/`zip` outputs — this skips the zero fill.
pub fn take_scratch(len: usize) -> Vec<f32> {
    if len < MIN_POOL_LEN || !pool_enabled() {
        soup_obs::counter!("tensor.pool.bypass").inc();
        return vec![0.0; len];
    }
    match pop(len) {
        Some(mut v) => {
            soup_obs::counter!("tensor.pool.hits").inc();
            // Capacity equals `len` (the bucket key), so this only adjusts
            // the length; stale contents are deliberately kept.
            v.resize(len, 0.0);
            v.truncate(len);
            v
        }
        None => {
            soup_obs::counter!("tensor.pool.misses").inc();
            vec![0.0; len]
        }
    }
}

/// Take a buffer initialised as a copy of `src` (one pass, no zero fill).
pub fn take_copy(src: &[f32]) -> Vec<f32> {
    if src.len() < MIN_POOL_LEN || !pool_enabled() {
        soup_obs::counter!("tensor.pool.bypass").inc();
        return src.to_vec();
    }
    match pop(src.len()) {
        Some(mut v) => {
            soup_obs::counter!("tensor.pool.hits").inc();
            v.clear();
            v.extend_from_slice(src);
            v
        }
        None => {
            soup_obs::counter!("tensor.pool.misses").inc();
            src.to_vec()
        }
    }
}

/// Take a buffer initialised as a row-major copy of a strided view
/// ([`crate::view::MatRef`]) — the pooled materialisation behind
/// `MatRef::to_tensor`. A contiguous view degenerates to [`take_copy`];
/// strided geometry gathers row by row into the recycled buffer, so even
/// transposed/sliced views materialise without a fresh allocation at
/// steady state.
pub fn take_copy_strided(src: &crate::view::MatRef<'_>) -> Vec<f32> {
    if let Some(s) = src.as_slice() {
        return take_copy(s);
    }
    let (rows, cols) = (src.rows(), src.cols());
    let mut out = take_scratch(rows * cols);
    for (r, dst) in out.chunks_exact_mut(cols.max(1)).enumerate().take(rows) {
        match src.row(r) {
            Some(srow) => dst.copy_from_slice(srow),
            None => {
                for (c, d) in dst.iter_mut().enumerate() {
                    *d = src.get(r, c);
                }
            }
        }
    }
    out
}

/// Return a buffer to the pool (or drop it if pooling is off, the buffer is
/// tiny, or its bucket is full). Called by `Buf::drop` and workspace drops.
pub fn put(v: Vec<f32>) {
    let cap = v.capacity();
    if cap < MIN_POOL_LEN || !pool_enabled() {
        return;
    }
    let mut map = buckets().lock().unwrap_or_else(|e| e.into_inner());
    let bucket = map.entry(cap).or_default();
    if bucket.len() >= MAX_PER_BUCKET {
        return; // lock drops, v deallocates normally
    }
    bucket.push(v);
    DEVICE_MEMORY.pool_add(bytes_of_cap(cap));
    soup_obs::counter!("tensor.pool.returns").inc();
    soup_obs::gauge!("tensor.pool.idle_bytes").set(DEVICE_MEMORY.pooled() as f64);
}

/// Release every idle buffer back to the allocator, returning the number of
/// bytes freed. The bench harness calls this between experiments so that
/// memory comparisons (Fig. 4b) never attribute one experiment's pooled
/// buffers to another, and `DEVICE_MEMORY` pooled accounting re-balances to
/// zero.
pub fn trim() -> usize {
    let drained: Vec<Vec<f32>> = {
        let mut map = buckets().lock().unwrap_or_else(|e| e.into_inner());
        map.drain().flat_map(|(_, bucket)| bucket).collect()
    };
    let bytes: usize = drained.iter().map(|v| bytes_of_cap(v.capacity())).sum();
    DEVICE_MEMORY.pool_sub(bytes);
    soup_obs::counter!("tensor.pool.trimmed_bytes").add(bytes as u64);
    soup_obs::gauge!("tensor.pool.idle_bytes").set(DEVICE_MEMORY.pooled() as f64);
    bytes
}

/// Bytes currently sitting idle in the pool.
pub fn idle_bytes() -> usize {
    DEVICE_MEMORY.pooled()
}

/// RAII kernel workspace: a pooled `Vec<f32>` that counts as live device
/// memory while held (via [`MemGuard`], like CSR arrays) and returns to the
/// pool on drop. Used for GEMM packing buffers.
#[derive(Debug)]
pub struct Workspace {
    data: Vec<f32>,
    _mem: MemGuard,
}

impl Workspace {
    /// Workspace with arbitrary (initialised) contents; the caller must
    /// overwrite before reading.
    pub fn scratch(len: usize) -> Self {
        let data = take_scratch(len);
        let bytes = bytes_of_cap(data.capacity());
        Self {
            data,
            _mem: MemGuard::new(bytes),
        }
    }

    /// Zero-filled workspace.
    pub fn zeroed(len: usize) -> Self {
        let data = take_zeroed(len);
        let bytes = bytes_of_cap(data.capacity());
        Self {
            data,
            _mem: MemGuard::new(bytes),
        }
    }
}

impl std::ops::Deref for Workspace {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        &self.data
    }
}

impl std::ops::DerefMut for Workspace {
    fn deref_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }
}

impl Drop for Workspace {
    fn drop(&mut self) {
        put(std::mem::take(&mut self.data));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Pool state is process-global; tests in this module must tolerate
    // other tests' buffers being present. They therefore assert relative
    // behaviour (deltas, recycling of a marked buffer) rather than absolute
    // pool contents.

    #[test]
    fn round_trip_recycles_buffer() {
        let len = 1 << 14; // distinctive size, unlikely shared with others
        let mut v = take_zeroed(len + 3);
        assert!(v.iter().all(|&x| x == 0.0));
        v[0] = 42.0;
        let cap = v.capacity();
        put(v);
        let w = take_scratch(len + 3);
        assert_eq!(w.capacity(), cap, "exact-size bucket must recycle");
        put(w);
    }

    #[test]
    fn zeroed_take_clears_stale_contents() {
        let len = (1 << 14) + 7;
        let mut v = take_zeroed(len);
        v.iter_mut().for_each(|x| *x = 1.5);
        put(v);
        let w = take_zeroed(len);
        assert!(
            w.iter().all(|&x| x == 0.0),
            "recycled buffer must be zeroed"
        );
        put(w);
    }

    #[test]
    fn copy_take_matches_source() {
        let src: Vec<f32> = (0..12_347).map(|i| i as f32).collect();
        let v = take_copy(&src);
        assert_eq!(v, src);
        put(v);
        let w = take_copy(&src);
        assert_eq!(w, src);
        put(w);
    }

    #[test]
    fn tiny_takes_are_fresh_and_zeroed() {
        let v = take_scratch(MIN_POOL_LEN - 1);
        assert!(v.iter().all(|&x| x == 0.0), "bypassed takes are fresh vecs");
        let w = take_zeroed(MIN_POOL_LEN - 1);
        assert!(w.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn workspace_overwrites_and_reads_back() {
        let mut ws = Workspace::scratch(1 << 13);
        ws.iter_mut().enumerate().for_each(|(i, x)| *x = i as f32);
        assert_eq!(ws[17], 17.0);
        assert_eq!(ws.len(), 1 << 13);
    }

    // Precise DEVICE_MEMORY / trim balance assertions live in the
    // single-threaded integration test `tests/pool_accounting.rs` — they
    // need a process where no other test is churning the global pool.
}
