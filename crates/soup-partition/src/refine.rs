//! Boundary refinement (Fiduccia–Mattheyses-flavoured).
//!
//! After projecting a coarse assignment to a finer level, boundary vertices
//! are visited in random order; each moves to the adjacent partition with
//! the largest positive cut-gain, provided the move keeps every partition
//! under the balance cap. Several passes run until no move helps. This is
//! the greedy single-vertex variant of FM (no hill-climbing buckets), which
//! is what METIS uses between levels in its k-way refinement.

use crate::coarsen::WGraph;
use soup_tensor::SplitMix64;

/// Refine `assignment` in place. Returns the number of moves applied.
pub fn refine_boundary(
    g: &WGraph,
    assignment: &mut [u32],
    k: usize,
    max_load: f64,
    passes: usize,
    rng: &mut SplitMix64,
) -> usize {
    let n = g.num_nodes();
    let mut loads = vec![0.0f64; k];
    for v in 0..n {
        loads[assignment[v] as usize] += g.vweights[v] as f64;
    }
    let mut total_moves = 0usize;
    let mut order: Vec<usize> = (0..n).collect();
    for _ in 0..passes {
        rng.shuffle(&mut order);
        let mut moved = 0usize;
        for &v in &order {
            let own = assignment[v] as usize;
            // Connection weight to each adjacent partition.
            let mut conn: Vec<(usize, f32)> = Vec::new();
            let mut own_conn = 0.0f32;
            for (u, w) in g.neighbors(v) {
                let pu = assignment[u as usize] as usize;
                if pu == own {
                    own_conn += w;
                } else if let Some(entry) = conn.iter_mut().find(|(p, _)| *p == pu) {
                    entry.1 += w;
                } else {
                    conn.push((pu, w));
                }
            }
            if conn.is_empty() {
                continue; // interior vertex
            }
            let vw = g.vweights[v] as f64;
            let mut best: Option<(usize, f32)> = None;
            for &(p, w) in &conn {
                let gain = w - own_conn;
                if gain > 0.0 && loads[p] + vw <= max_load && best.is_none_or(|(_, bg)| gain > bg) {
                    best = Some((p, gain));
                }
            }
            if let Some((p, _)) = best {
                assignment[v] = p as u32;
                loads[own] -= vw;
                loads[p] += vw;
                moved += 1;
            }
        }
        total_moves += moved;
        if moved == 0 {
            break;
        }
    }
    total_moves
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::edge_cut_wgraph;
    use soup_graph::CsrGraph;

    /// Two dense cliques joined by one bridge edge.
    fn two_cliques(size: usize) -> WGraph {
        let mut edges = Vec::new();
        for a in 0..size as u32 {
            for b in (a + 1)..size as u32 {
                edges.push((a, b));
                edges.push((a + size as u32, b + size as u32));
            }
        }
        edges.push((0, size as u32));
        WGraph::from_csr(&CsrGraph::from_edges(2 * size, &edges), vec![1.0; 2 * size])
    }

    #[test]
    fn fixes_one_misassigned_vertex() {
        let g = two_cliques(5);
        // Perfect split except vertex 4 is on the wrong side.
        let mut a: Vec<u32> = (0..10).map(|v| if v < 5 { 0 } else { 1 }).collect();
        a[4] = 1;
        let before = edge_cut_wgraph(&g, &a);
        let moves = refine_boundary(&g, &mut a, 2, 6.0, 4, &mut SplitMix64::new(1));
        let after = edge_cut_wgraph(&g, &a);
        assert!(moves >= 1);
        assert!(after < before, "cut {before} -> {after}");
        assert_eq!(a[4], 0, "vertex 4 should return to its clique");
    }

    #[test]
    fn respects_balance_cap() {
        let g = two_cliques(5);
        // Everything in partition 0; cap prevents mass migration beyond 6.
        let mut a = vec![0u32; 10];
        refine_boundary(&g, &mut a, 2, 6.0, 8, &mut SplitMix64::new(2));
        let load0 = a.iter().filter(|&&p| p == 0).count();
        let load1 = 10 - load0;
        assert!(load0 <= 6 + 4, "load0={load0}"); // cap only limits part 1 here
        assert!(load1 <= 6, "moves exceeded cap: load1={load1}");
    }

    #[test]
    fn never_worsens_cut() {
        let g = two_cliques(6);
        let mut a: Vec<u32> = (0..12).map(|v| if v % 2 == 0 { 0 } else { 1 }).collect();
        let before = edge_cut_wgraph(&g, &a);
        refine_boundary(&g, &mut a, 2, 8.0, 6, &mut SplitMix64::new(3));
        let after = edge_cut_wgraph(&g, &a);
        assert!(after <= before, "{before} -> {after}");
    }

    #[test]
    fn converges_to_zero_moves() {
        let g = two_cliques(5);
        let mut a: Vec<u32> = (0..10).map(|v| if v < 5 { 0 } else { 1 }).collect();
        // Already optimal: no moves possible.
        let moves = refine_boundary(&g, &mut a, 2, 6.0, 5, &mut SplitMix64::new(4));
        assert_eq!(moves, 0);
    }
}
