//! Elementwise arithmetic and bias broadcasting.

use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

impl Tape {
    /// Elementwise `a + b` (same shape).
    pub fn add(&self, a: Var, b: Var) -> Var {
        let out = self.value(a).add(&self.value(b));
        self.push_op(
            out,
            vec![a, b],
            Box::new(|g, _, _| vec![Some(g.clone()), Some(g.clone())]),
        )
    }

    /// Elementwise `a - b`.
    pub fn sub(&self, a: Var, b: Var) -> Var {
        let out = self.value(a).sub(&self.value(b));
        self.push_op(
            out,
            vec![a, b],
            Box::new(|g, _, _| vec![Some(g.clone()), Some(g.scale(-1.0))]),
        )
    }

    /// Hadamard product `a ⊙ b`. Gradients are only materialised for the
    /// sides that need them.
    pub fn mul(&self, a: Var, b: Var) -> Var {
        let out = self.value(a).mul(&self.value(b));
        let need_a = self.requires_grad(a);
        let need_b = self.requires_grad(b);
        self.push_op(
            out,
            vec![a, b],
            Box::new(move |g, parents, _| {
                vec![
                    need_a.then(|| g.mul(&parents[1])),
                    need_b.then(|| g.mul(&parents[0])),
                ]
            }),
        )
    }

    /// Scalar multiple `s * a`.
    pub fn scale(&self, a: Var, s: f32) -> Var {
        let out = self.value(a).scale(s);
        self.push_op(
            out,
            vec![a],
            Box::new(move |g, _, _| vec![Some(g.scale(s))]),
        )
    }

    /// `a + s` elementwise with constant `s`.
    pub fn add_scalar(&self, a: Var, s: f32) -> Var {
        let out = self.value(a).map(|x| x + s);
        self.push_op(out, vec![a], Box::new(|g, _, _| vec![Some(g.clone())]))
    }

    /// Broadcast-multiply by a row: `x (n,c) ⊙ b (1,c)`.
    ///
    /// GAT uses this to apply the attention vectors `aₗ`, `aᵣ` to every
    /// node's transformed features before the per-head reduction.
    pub fn mul_row(&self, x: Var, b: Var) -> Var {
        let xv = self.value(x);
        let bv = self.value(b);
        assert_eq!(
            bv.rows(),
            1,
            "row factor must be (1, c), got {}",
            bv.shape()
        );
        assert_eq!(
            bv.cols(),
            xv.cols(),
            "row width {} != features {}",
            bv.cols(),
            xv.cols()
        );
        let (n, c) = (xv.rows(), xv.cols());
        let mut out = crate::pool::take_zeroed(n * c);
        let bs = bv.data();
        for (orow, xrow) in out.chunks_mut(c).zip(xv.data().chunks(c)) {
            for i in 0..c {
                orow[i] = xrow[i] * bs[i];
            }
        }
        self.push_op(
            Tensor::from_vec(n, c, out),
            vec![x, b],
            Box::new(|g, parents, _| {
                let (n, c) = (g.rows(), g.cols());
                let bs = parents[1].data();
                let xs = parents[0].data();
                let mut gx = crate::pool::take_zeroed(n * c);
                let mut gb = crate::pool::take_zeroed(c);
                for r in 0..n {
                    for i in 0..c {
                        let gv = g.data()[r * c + i];
                        gx[r * c + i] = gv * bs[i];
                        gb[i] += gv * xs[r * c + i];
                    }
                }
                vec![
                    Some(Tensor::from_vec(n, c, gx)),
                    Some(Tensor::from_vec(1, c, gb)),
                ]
            }),
        )
    }

    /// Sum within contiguous column blocks: `(n, blocks*width) -> (n, blocks)`.
    ///
    /// With [`Tape::mul_row`] this computes GAT's per-head attention terms
    /// `aₗᵀ x_v` without materialising a block-diagonal matrix.
    pub fn block_rowsum(&self, x: Var, blocks: usize) -> Var {
        let xv = self.value(x);
        let c = xv.cols();
        assert!(
            blocks > 0 && c.is_multiple_of(blocks),
            "cols {c} not divisible by {blocks} blocks"
        );
        let width = c / blocks;
        let n = xv.rows();
        let mut out = crate::pool::take_zeroed(n * blocks);
        for r in 0..n {
            let row = xv.row(r);
            for b in 0..blocks {
                out[r * blocks + b] = row[b * width..(b + 1) * width].iter().sum();
            }
        }
        self.push_op(
            Tensor::from_vec(n, blocks, out),
            vec![x],
            Box::new(move |g, parents, _| {
                let n = g.rows();
                let c = parents[0].cols();
                let mut gx = crate::pool::take_zeroed(n * c);
                for r in 0..n {
                    for b in 0..blocks {
                        let gv = g.data()[r * blocks + b];
                        for d in 0..width {
                            gx[r * c + b * width + d] = gv;
                        }
                    }
                }
                vec![Some(Tensor::from_vec(n, c, gx))]
            }),
        )
    }

    /// Broadcast-add a bias row: `x (n,c) + b (1,c)`.
    pub fn add_bias(&self, x: Var, b: Var) -> Var {
        let xv = self.value(x);
        let bv = self.value(b);
        assert_eq!(
            bv.rows(),
            1,
            "bias must be a (1, c) row, got {}",
            bv.shape()
        );
        assert_eq!(
            bv.cols(),
            xv.cols(),
            "bias width {} != features {}",
            bv.cols(),
            xv.cols()
        );
        let (n, c) = (xv.rows(), xv.cols());
        let mut out = crate::pool::take_zeroed(n * c);
        let bs = bv.data();
        for (orow, xrow) in out.chunks_mut(c).zip(xv.data().chunks(c)) {
            for i in 0..c {
                orow[i] = xrow[i] + bs[i];
            }
        }
        self.push_op(
            Tensor::from_vec(n, c, out),
            vec![x, b],
            Box::new(|g, _, _| vec![Some(g.clone()), Some(g.sum_rows())]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;
    use crate::tape::gradcheck;

    #[test]
    fn add_forward_backward() {
        let tape = Tape::new();
        let a = tape.param(Tensor::from_vec(1, 2, vec![1.0, 2.0]));
        let b = tape.param(Tensor::from_vec(1, 2, vec![10.0, 20.0]));
        let y = tape.sum(tape.add(a, b));
        assert_eq!(tape.value(y).item(), 33.0);
        let g = tape.backward(y);
        assert_eq!(g.get(a).unwrap().data(), &[1.0, 1.0]);
        assert_eq!(g.get(b).unwrap().data(), &[1.0, 1.0]);
    }

    #[test]
    fn mul_gradcheck() {
        let mut rng = SplitMix64::new(1);
        let a = Tensor::randn(3, 3, 1.0, &mut rng);
        let b = Tensor::randn(3, 3, 1.0, &mut rng);
        gradcheck(&|t, v| t.sum(t.mul(v[0], v[1])), &[a, b], 1e-2, 2e-2).unwrap();
    }

    #[test]
    fn sub_gradcheck() {
        let mut rng = SplitMix64::new(2);
        let a = Tensor::randn(2, 4, 1.0, &mut rng);
        let b = Tensor::randn(2, 4, 1.0, &mut rng);
        gradcheck(&|t, v| t.sum(t.sub(v[0], v[1])), &[a, b], 1e-2, 2e-2).unwrap();
    }

    #[test]
    fn scale_and_add_scalar() {
        let tape = Tape::new();
        let a = tape.param(Tensor::scalar(3.0));
        let y = tape.add_scalar(tape.scale(a, 4.0), 1.0);
        assert_eq!(tape.value(y).item(), 13.0);
        let g = tape.backward(y);
        assert_eq!(g.get(a).unwrap().item(), 4.0);
    }

    #[test]
    fn bias_broadcast_forward() {
        let tape = Tape::new();
        let x = tape.constant(Tensor::from_vec(2, 3, vec![0.0; 6]));
        let b = tape.param(Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]));
        let y = tape.add_bias(x, b);
        assert_eq!(tape.value(y).data(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn bias_gradcheck() {
        let mut rng = SplitMix64::new(3);
        let x = Tensor::randn(4, 3, 1.0, &mut rng);
        let b = Tensor::randn(1, 3, 1.0, &mut rng);
        gradcheck(&|t, v| t.sum(t.add_bias(v[0], v[1])), &[x, b], 1e-2, 2e-2).unwrap();
    }

    #[test]
    fn mul_row_forward() {
        let tape = Tape::new();
        let x = tape.constant(Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
        let b = tape.param(Tensor::from_vec(1, 3, vec![2.0, 0.0, -1.0]));
        let y = tape.value(tape.mul_row(x, b));
        assert_eq!(y.data(), &[2.0, 0.0, -3.0, 8.0, 0.0, -6.0]);
    }

    #[test]
    fn mul_row_gradcheck() {
        let mut rng = SplitMix64::new(4);
        let x = Tensor::randn(4, 3, 1.0, &mut rng);
        let b = Tensor::randn(1, 3, 1.0, &mut rng);
        gradcheck(&|t, v| t.sum(t.mul_row(v[0], v[1])), &[x, b], 1e-2, 2e-2).unwrap();
    }

    #[test]
    fn block_rowsum_forward() {
        let tape = Tape::new();
        let x = tape.constant(Tensor::from_vec(1, 6, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
        let y = tape.value(tape.block_rowsum(x, 2));
        assert_eq!(y.data(), &[6.0, 15.0]);
        let tape2 = Tape::new();
        let x2 = tape2.constant(Tensor::from_vec(1, 6, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
        let y2 = tape2.value(tape2.block_rowsum(x2, 3));
        assert_eq!(y2.data(), &[3.0, 7.0, 11.0]);
    }

    #[test]
    fn block_rowsum_gradcheck() {
        let mut rng = SplitMix64::new(5);
        let x = Tensor::randn(3, 8, 1.0, &mut rng);
        let w = Tensor::randn(3, 4, 1.0, &mut rng);
        gradcheck(
            &|t, v| {
                let y = t.block_rowsum(v[0], 4);
                let wc = t.constant(w.clone());
                t.sum(t.mul(y, wc))
            },
            &[x],
            1e-2,
            2e-2,
        )
        .unwrap();
    }

    #[test]
    fn heads_dot_composition_matches_manual() {
        // block_rowsum(mul_row(x, a)) computes per-head dot products.
        let x = Tensor::from_vec(2, 4, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let a = Tensor::from_vec(1, 4, vec![1.0, -1.0, 2.0, 0.5]);
        let tape = Tape::new();
        let xv = tape.constant(x);
        let av = tape.constant(a);
        let y = tape.value(tape.block_rowsum(tape.mul_row(xv, av), 2));
        // Head 0: 1*1 + 2*(-1) = -1 ; head 1: 3*2 + 4*0.5 = 8.
        assert_eq!(y.row(0), &[-1.0, 8.0]);
        assert_eq!(y.row(1), &[5.0 - 6.0, 14.0 + 4.0]);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn block_rowsum_bad_blocks_panics() {
        let tape = Tape::new();
        let x = tape.constant(Tensor::zeros(2, 5));
        tape.block_rowsum(x, 2);
    }

    #[test]
    #[should_panic(expected = "bias must be")]
    fn bias_wrong_shape_panics() {
        let tape = Tape::new();
        let x = tape.constant(Tensor::zeros(2, 3));
        let b = tape.param(Tensor::zeros(2, 3));
        tape.add_bias(x, b);
    }
}
