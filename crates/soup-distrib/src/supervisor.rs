//! The shard supervisor: self-healing coordinator for multi-process runs.
//!
//! PR-9's coordinator drove the READY → GO → FETCHED → PROCEED → RESULT
//! protocol sequentially over blocking sockets with hour-long timeouts —
//! one dead worker stalled the run and one crash forfeited it. This
//! module replaces that with a supervised poll loop:
//!
//! - **Detection.** Every tick the supervisor `try_wait`s each child
//!   (crash → detected within milliseconds) and checks its heartbeat
//!   deadline (hang → detected within one `worker_timeout`; workers send
//!   [`OP_HEARTBEAT`] at a quarter of that interval). Either way a dead
//!   worker is noticed in well under 2× the deadline.
//! - **Reaping.** A lost child is killed *and waited* — failed runs never
//!   accumulate zombies. The supervisor's `Drop` does the same for every
//!   child still alive, so early errors can't leak processes either.
//! - **Respawn.** A lost shard is relaunched with a bounded restart
//!   budget and a bumped **session epoch**; the worker resumes from its
//!   shard journal, so the recovered run is bit-identical to an
//!   uninterrupted one. Frames carrying a stale epoch (leftovers from a
//!   pre-crash incarnation) are rejected and counted.
//! - **Degradation.** A shard that exhausts its budget is marked lost and
//!   excluded from the barriers; the surviving shards complete and the
//!   run reports exact accuracy over surviving owned-test nodes with
//!   explicit `missing` provenance ([`ShardRunReport::is_degraded`]).
//!   Only when *every* shard is lost does the run error.
//!
//! Barrier semantics are *sticky*: GO is first broadcast when all live
//! shards are simultaneously READY (same for PROCEED/FETCHED); after
//! that, a respawned worker re-entering the protocol receives the barrier
//! release immediately instead of waiting for peers that are already
//! training.
//!
//! Observability: `supervisor.restarts`, `supervisor.reaps`,
//! `supervisor.crashes`, `supervisor.hangs`, `supervisor.stale_frames`,
//! `supervisor.frame_retries` counters, a `supervisor.degraded_shards`
//! gauge, and the per-worker `distrib.worker.<shard>.heartbeat_s` gauges
//! republished from worker heartbeats.

use std::io::Read;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::Child;
use std::time::{Duration, Instant};

use soup_error::SoupError;

use crate::halo::{
    control_socket_path, FrameBuf, OP_ACK, OP_FETCHED, OP_GO, OP_HEARTBEAT, OP_PROCEED, OP_READY,
    OP_RESULT,
};
use crate::shard::{ShardPlan, ShardResult, ShardRunReport, WorkerLaunch};

type Result<T> = std::result::Result<T, SoupError>;

/// Poll-loop granularity. Crash detection latency is one tick; the cost
/// of an idle tick is one `try_wait` + one nonblocking read per worker.
const TICK: Duration = Duration::from_millis(10);

/// Where one worker stands in the control protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    /// Child spawned, READY not yet seen for the current epoch.
    Spawning,
    /// READY seen: halo server is up.
    Ready,
    /// FETCHED seen: halo resident; training once PROCEED lands.
    Fetched,
    /// RESULT accepted and ACKed.
    Done,
    /// Restart budget exhausted; excluded from the run.
    Lost,
}

/// One shard's supervision record.
struct Slot {
    shard: usize,
    /// Session epoch == incarnation counter; bumped on every respawn.
    epoch: u32,
    restarts_left: u32,
    child: Option<Child>,
    conn: Option<Conn>,
    state: SlotState,
    go_sent: bool,
    proceed_sent: bool,
    /// Last proof of life: spawn, READY, FETCHED, RESULT or heartbeat.
    last_seen: Instant,
    done_at: Option<Instant>,
    result: Option<ShardResult>,
    lost_reason: Option<String>,
}

impl Slot {
    fn live(&self) -> bool {
        !matches!(self.state, SlotState::Lost)
    }
}

/// An attached control connection, owned by exactly one (shard, epoch).
struct Conn {
    stream: UnixStream,
    buf: FrameBuf,
}

/// An accepted connection that has not yet identified itself with READY.
struct PendingConn {
    stream: UnixStream,
    buf: FrameBuf,
    since: Instant,
}

/// What `pump` found on a connection this tick.
enum Pumped {
    Idle,
    Progress,
    Eof,
}

/// Read whatever is available on a nonblocking stream into `buf`.
fn pump(stream: &mut UnixStream, buf: &mut FrameBuf) -> Result<Pumped> {
    let mut chunk = [0u8; 4096];
    let mut progressed = false;
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(Pumped::Eof),
            Ok(n) => {
                buf.extend(&chunk[..n]);
                progressed = true;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                return Ok(if progressed {
                    Pumped::Progress
                } else {
                    Pumped::Idle
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(SoupError::from(e)),
        }
    }
}

/// Write a (small) control frame to a nonblocking stream, retrying
/// `WouldBlock` with byte-level progress tracking — a blind re-send of
/// the whole frame after a partial write would desync the stream.
/// Control frames are ≤ a few bytes, so a worker that cannot absorb one
/// within the deadline is as good as dead.
fn write_frame_deadline(
    stream: &mut UnixStream,
    op: u8,
    payload: &[u8],
    deadline: Duration,
) -> Result<()> {
    use std::io::Write;
    let mut frame = Vec::with_capacity(5 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32 + 1).to_le_bytes());
    frame.push(op);
    frame.extend_from_slice(payload);
    let start = Instant::now();
    let mut off = 0;
    while off < frame.len() {
        match (&*stream).write(&frame[off..]) {
            Ok(0) => {
                return Err(SoupError::worker_lost(
                    usize::MAX,
                    "control socket rejected write",
                ))
            }
            Ok(n) => off += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if start.elapsed() >= deadline {
                    return Err(SoupError::worker_lost(
                        usize::MAX,
                        format!("control write stalled for {:.1}s", deadline.as_secs_f64()),
                    ));
                }
                soup_obs::counter!("supervisor.frame_retries").inc();
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(SoupError::from(e)),
        }
    }
    Ok(())
}

fn unix_now_s() -> f64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0)
}

/// The supervisor itself. Construction spawns every worker; [`run`]
/// drives them to completion; `Drop` kills and reaps whatever is left.
///
/// [`run`]: Supervisor::run
struct Supervisor<'a> {
    plan: &'a ShardPlan,
    launch: &'a WorkerLaunch,
    plan_path: PathBuf,
    listener: UnixListener,
    slots: Vec<Slot>,
    pending: Vec<PendingConn>,
    go_barrier: bool,
    proceed_barrier: bool,
    restarts: u32,
}

impl Drop for Supervisor<'_> {
    fn drop(&mut self) {
        // Kill-on-drop with reaping: `kill` alone would leave zombies.
        for slot in &mut self.slots {
            if let Some(mut child) = slot.child.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
}

impl<'a> Supervisor<'a> {
    fn new(plan: &'a ShardPlan, launch: &'a WorkerLaunch) -> Result<Self> {
        let out_dir = plan.out_dir_path();
        std::fs::create_dir_all(&out_dir).map_err(|e| SoupError::io_at(&out_dir, e))?;
        let plan_path = plan.save()?;
        let control = control_socket_path(&out_dir);
        let _ = std::fs::remove_file(&control);
        for shard in 0..plan.k {
            let _ = std::fs::remove_file(crate::halo::halo_socket_path(&out_dir, shard));
        }
        let listener = UnixListener::bind(&control).map_err(|e| SoupError::io_at(&control, e))?;
        listener.set_nonblocking(true).map_err(SoupError::from)?;

        let mut this = Self {
            plan,
            launch,
            plan_path,
            listener,
            slots: Vec::with_capacity(plan.k),
            pending: Vec::new(),
            go_barrier: false,
            proceed_barrier: false,
            restarts: 0,
        };
        for shard in 0..plan.k {
            let child = this.spawn(shard, 0)?;
            this.slots.push(Slot {
                shard,
                epoch: 0,
                restarts_left: plan.restart_budget,
                child: Some(child),
                conn: None,
                state: SlotState::Spawning,
                go_sent: false,
                proceed_sent: false,
                last_seen: Instant::now(),
                done_at: None,
                result: None,
                lost_reason: None,
            });
        }
        Ok(this)
    }

    fn spawn(&self, shard: usize, epoch: u32) -> Result<Child> {
        std::process::Command::new(&self.launch.exe)
            .args(&self.launch.args)
            .arg("--plan")
            .arg(&self.plan_path)
            .arg("--shard")
            .arg(shard.to_string())
            .arg("--epoch")
            .arg(epoch.to_string())
            .spawn()
            .map_err(|e| SoupError::io_at(&self.launch.exe, e))
    }

    fn timeout(&self) -> Duration {
        self.plan.worker_timeout()
    }

    /// Kill + reap slot `i`'s worker and either respawn it into the next
    /// session epoch or, with the budget spent, degrade the run.
    fn lose_slot(&mut self, i: usize, reason: &str, hang: bool) -> Result<()> {
        let timeout = self.timeout();
        let slot = &mut self.slots[i];
        soup_obs::counter!("supervisor.reaps").inc();
        if hang {
            soup_obs::counter!("supervisor.hangs").inc();
        } else {
            soup_obs::counter!("supervisor.crashes").inc();
        }
        if let Some(mut child) = slot.child.take() {
            let _ = child.kill();
            let _ = child.wait(); // reap: no zombies, ever
        }
        slot.conn = None;
        if slot.restarts_left == 0 {
            soup_obs::warn!(
                "shard {}: {reason}; restart budget exhausted — degrading",
                slot.shard
            );
            slot.state = SlotState::Lost;
            slot.lost_reason = Some(reason.to_string());
            let degraded = self.slots.iter().filter(|s| !s.live()).count();
            soup_obs::counter!("supervisor.shards_degraded").inc();
            soup_obs::gauge!("supervisor.degraded_shards").set(degraded as f64);
            return Ok(());
        }
        slot.restarts_left -= 1;
        slot.epoch += 1;
        let (shard, epoch) = (slot.shard, slot.epoch);
        soup_obs::warn!("shard {shard}: {reason}; respawning (session epoch {epoch})");
        soup_obs::counter!("supervisor.restarts").inc();
        self.restarts += 1;
        if let Some(chaos) = &self.plan.chaos {
            if chaos.corrupt_at_respawn(shard, epoch) {
                corrupt_newest_checkpoint(&self.plan.shard_dir(shard));
            }
        }
        let child = self.spawn(shard, epoch)?;
        let slot = &mut self.slots[i];
        slot.child = Some(child);
        slot.state = SlotState::Spawning;
        slot.go_sent = false;
        slot.proceed_sent = false;
        slot.last_seen = Instant::now();
        let _ = timeout;
        Ok(())
    }

    /// Accept any connections waiting on the listener.
    fn accept_new(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    self.pending.push(PendingConn {
                        stream,
                        buf: FrameBuf::new(),
                        since: Instant::now(),
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(_) => return,
            }
        }
    }

    /// Drive pending connections to their READY frame and attach them to
    /// their slot. Anything that identifies badly — stale epoch, unknown
    /// shard, a non-READY first frame — is dropped and counted, never
    /// trusted.
    fn pump_pending(&mut self) {
        let timeout = self.timeout();
        let mut keep: Vec<PendingConn> = Vec::new();
        for mut p in std::mem::take(&mut self.pending) {
            match pump(&mut p.stream, &mut p.buf) {
                Ok(Pumped::Eof) | Err(_) => continue, // dropped before READY
                Ok(_) => {}
            }
            match p.buf.pop() {
                Ok(None) => {
                    if p.since.elapsed() < timeout {
                        keep.push(p);
                    }
                    // else: silently drop a mute connection
                }
                Ok(Some((op, payload))) if op == OP_READY => {
                    match crate::halo::parse_shard_epoch(&payload) {
                        Ok((shard, epoch, _)) => self.attach(p, shard as usize, epoch),
                        Err(_) => {
                            soup_obs::counter!("supervisor.stale_frames").inc();
                        }
                    }
                }
                Ok(Some(_)) | Err(_) => {
                    // First frame must be READY; anything else is a stray
                    // stream from a dead incarnation or a corrupt peer.
                    soup_obs::counter!("supervisor.stale_frames").inc();
                }
            }
        }
        self.pending.extend(keep);
    }

    /// Bind an identified connection to its slot, carrying over any bytes
    /// (heartbeats) already buffered behind the READY frame.
    fn attach(&mut self, p: PendingConn, shard: usize, epoch: u32) {
        let Some(slot) = self.slots.get_mut(shard) else {
            soup_obs::counter!("supervisor.stale_frames").inc();
            return;
        };
        if epoch != slot.epoch || !slot.live() || slot.state != SlotState::Spawning {
            // READY from a pre-crash incarnation that was still in the
            // listener backlog when its successor spawned.
            soup_obs::counter!("supervisor.stale_frames").inc();
            return;
        }
        slot.state = SlotState::Ready;
        slot.last_seen = Instant::now();
        slot.conn = Some(Conn {
            stream: p.stream,
            buf: p.buf,
        });
    }

    /// Drain frames from every attached connection. Returns the slots
    /// that must be declared lost (collected first — `lose_slot` needs
    /// `&mut self`).
    fn pump_slots(&mut self) -> Vec<(usize, String)> {
        let deadline = self.timeout();
        let mut lost: Vec<(usize, String)> = Vec::new();
        for i in 0..self.slots.len() {
            let slot = &mut self.slots[i];
            let Some(conn) = slot.conn.as_mut() else {
                continue;
            };
            let pumped = match pump(&mut conn.stream, &mut conn.buf) {
                Ok(p) => p,
                Err(e) => {
                    lost.push((i, format!("control read failed: {e}")));
                    continue;
                }
            };
            let mut closed = matches!(pumped, Pumped::Eof);
            loop {
                let frame = match slot.conn.as_mut().unwrap().buf.pop() {
                    Ok(Some(f)) => f,
                    Ok(None) => break,
                    Err(e) => {
                        lost.push((i, format!("control stream corrupt: {e}")));
                        closed = false; // already being handled as lost
                        slot.conn = None;
                        break;
                    }
                };
                let (op, payload) = frame;
                let (shard, epoch, rest) = match crate::halo::parse_shard_epoch(&payload) {
                    Ok(t) => t,
                    Err(_) => {
                        lost.push((i, format!("unparsable control frame op={op}")));
                        slot.conn = None;
                        closed = false;
                        break;
                    }
                };
                if shard as usize != slot.shard || epoch != slot.epoch {
                    soup_obs::counter!("supervisor.stale_frames").inc();
                    continue;
                }
                slot.last_seen = Instant::now();
                match op {
                    OP_HEARTBEAT => {
                        soup_obs::registry::gauge(&format!(
                            "distrib.worker.{}.heartbeat_s",
                            slot.shard
                        ))
                        .set(unix_now_s());
                    }
                    OP_FETCHED if slot.state == SlotState::Ready => {
                        slot.state = SlotState::Fetched;
                    }
                    OP_RESULT => match parse_result(rest, slot.shard) {
                        Ok(result) => {
                            let conn = slot.conn.as_mut().unwrap();
                            if let Err(e) =
                                write_frame_deadline(&mut conn.stream, OP_ACK, &[], deadline)
                            {
                                soup_obs::warn!(
                                    "shard {}: ACK not delivered ({e}); result kept",
                                    slot.shard
                                );
                            }
                            slot.result = Some(result);
                            slot.state = SlotState::Done;
                            slot.done_at = Some(Instant::now());
                            slot.conn = None;
                            closed = false;
                            break;
                        }
                        Err(e) => {
                            lost.push((i, format!("RESULT rejected: {e}")));
                            slot.conn = None;
                            closed = false;
                            break;
                        }
                    },
                    other => {
                        lost.push((i, format!("unexpected control opcode {other}")));
                        slot.conn = None;
                        closed = false;
                        break;
                    }
                }
            }
            let slot = &mut self.slots[i];
            if closed && slot.state != SlotState::Done && slot.live() {
                lost.push((i, "control connection closed".to_string()));
                slot.conn = None;
            }
        }
        lost
    }

    /// `try_wait` every child: exits are either expected (Done) or a
    /// crash; hung workers are caught by the heartbeat deadline instead.
    fn check_children(&mut self) -> Vec<(usize, String, bool)> {
        let timeout = self.timeout();
        let mut lost = Vec::new();
        for (i, slot) in self.slots.iter_mut().enumerate() {
            let Some(child) = slot.child.as_mut() else {
                continue;
            };
            match child.try_wait() {
                Ok(Some(status)) => {
                    if slot.state == SlotState::Done {
                        slot.child = None; // clean exit, reaped
                    } else if slot.live() {
                        lost.push((i, format!("worker exited with {status}"), false));
                    }
                }
                Ok(None) => {
                    let stale = slot.last_seen.elapsed();
                    if slot.state == SlotState::Done {
                        // ACKed but lingering: give it one deadline, then
                        // put it down — the result is already in hand.
                        if slot.done_at.is_some_and(|t| t.elapsed() > timeout) {
                            let mut c = slot.child.take().unwrap();
                            let _ = c.kill();
                            let _ = c.wait();
                            soup_obs::counter!("supervisor.reaps").inc();
                            soup_obs::warn!(
                                "shard {}: worker lingered after ACK; reaped",
                                slot.shard
                            );
                        }
                    } else if slot.live() && stale > timeout {
                        lost.push((
                            i,
                            format!(
                                "heartbeat deadline missed ({:.1}s > {:.1}s)",
                                stale.as_secs_f64(),
                                timeout.as_secs_f64()
                            ),
                            true,
                        ));
                    }
                }
                Err(e) => lost.push((i, format!("try_wait failed: {e}"), false)),
            }
        }
        lost
    }

    /// Barrier logic. First release requires every *live* slot to stand
    /// at the barrier simultaneously; afterwards the release is sticky so
    /// respawned workers pass straight through. A slot whose barrier send
    /// fails is reported lost, not fatal to the run.
    fn drive_barriers(&mut self) -> Vec<(usize, String)> {
        let deadline = self.timeout();
        let mut lost = Vec::new();
        if !self.go_barrier
            && self.slots.iter().any(Slot::live)
            && self
                .slots
                .iter()
                .filter(|s| s.live())
                .all(|s| s.state != SlotState::Spawning)
        {
            self.go_barrier = true;
        }
        if self.go_barrier {
            for (i, slot) in self.slots.iter_mut().enumerate() {
                if slot.state == SlotState::Ready && !slot.go_sent {
                    if let Some(conn) = slot.conn.as_mut() {
                        match write_frame_deadline(&mut conn.stream, OP_GO, &[], deadline) {
                            Ok(()) => slot.go_sent = true,
                            Err(e) => lost.push((i, format!("GO not delivered: {e}"))),
                        }
                    }
                }
            }
        }
        if !self.proceed_barrier
            && self.go_barrier
            && self.slots.iter().any(Slot::live)
            && self
                .slots
                .iter()
                .filter(|s| s.live())
                .all(|s| matches!(s.state, SlotState::Fetched | SlotState::Done))
        {
            self.proceed_barrier = true;
        }
        if self.proceed_barrier {
            for (i, slot) in self.slots.iter_mut().enumerate() {
                if slot.state == SlotState::Fetched && !slot.proceed_sent {
                    if let Some(conn) = slot.conn.as_mut() {
                        match write_frame_deadline(&mut conn.stream, OP_PROCEED, &[], deadline) {
                            Ok(()) => slot.proceed_sent = true,
                            Err(e) => lost.push((i, format!("PROCEED not delivered: {e}"))),
                        }
                    }
                }
            }
        }
        lost
    }

    fn run(&mut self) -> Result<()> {
        loop {
            self.accept_new();
            self.pump_pending();
            for (i, reason) in self.pump_slots() {
                if self.slots[i].live() && self.slots[i].state != SlotState::Done {
                    self.lose_slot(i, &reason, false)?;
                }
            }
            for (i, reason, hang) in self.check_children() {
                if self.slots[i].live() && self.slots[i].state != SlotState::Done {
                    self.lose_slot(i, &reason, hang)?;
                }
            }
            for (i, reason) in self.drive_barriers() {
                if self.slots[i].live() && self.slots[i].state != SlotState::Done {
                    self.lose_slot(i, &reason, false)?;
                }
            }
            if self
                .slots
                .iter()
                .all(|s| matches!(s.state, SlotState::Done | SlotState::Lost))
            {
                break;
            }
            std::thread::sleep(TICK);
        }
        // Drain: Done workers exit on their own after ACK; anything still
        // alive past one deadline is killed (and reaped) by check_children
        // or, ultimately, by Drop.
        let drain_deadline = Instant::now() + self.timeout();
        while self.slots.iter().any(|s| s.child.is_some()) && Instant::now() < drain_deadline {
            let _ = self.check_children();
            std::thread::sleep(TICK);
        }
        for slot in &mut self.slots {
            if let Some(mut child) = slot.child.take() {
                let _ = child.kill();
                let _ = child.wait();
                soup_obs::counter!("supervisor.reaps").inc();
            }
        }
        Ok(())
    }
}

fn parse_result(json_bytes: &[u8], want_shard: usize) -> Result<ShardResult> {
    let json = std::str::from_utf8(json_bytes)
        .map_err(|_| SoupError::corrupt("shard RESULT payload is not UTF-8"))?;
    let result: ShardResult = serde_json::from_str(json)
        .map_err(|e| SoupError::corrupt(format!("shard RESULT decode: {e}")))?;
    if result.shard != want_shard {
        return Err(SoupError::corrupt(format!(
            "shard RESULT for {} arrived on shard {want_shard}'s connection",
            result.shard
        )));
    }
    Ok(result)
}

/// Flip bytes in the middle of the newest `ingredient_*.ck` — the
/// respawn-time journal-corruption chaos. The resumed worker's journal
/// validation must reject the artifact and retrain it.
fn corrupt_newest_checkpoint(shard_dir: &std::path::Path) {
    let Ok(entries) = std::fs::read_dir(shard_dir) else {
        return;
    };
    let mut cks: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("ingredient_") && n.ends_with(".ck"))
        })
        .collect();
    cks.sort();
    let Some(target) = cks.pop() else { return };
    let Ok(mut bytes) = std::fs::read(&target) else {
        return;
    };
    if bytes.len() < 64 {
        return;
    }
    let mid = bytes.len() / 2;
    let end = (mid + 16).min(bytes.len());
    for b in &mut bytes[mid..end] {
        *b ^= 0xff;
    }
    let _ = std::fs::write(&target, &bytes);
    soup_obs::warn!("chaos: corrupted {} before respawn", target.display());
}

/// Shape of the durable `out_dir/run.json` provenance record.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
struct RunProvenance {
    k: usize,
    degraded: bool,
    missing: Vec<usize>,
    restarts: u32,
    test_accuracy: f64,
    surviving_shards: Vec<usize>,
}

/// Supervised replacement for the PR-9 coordinator: fork one worker per
/// shard, drive the control protocol with crash/hang detection, bounded
/// respawn and graceful degradation, and aggregate the surviving shards'
/// results. See the module docs for the full fault model.
pub fn run_supervised(plan: &ShardPlan, launch: &WorkerLaunch) -> Result<ShardRunReport> {
    let _span = soup_obs::span!("distrib.shard_run");
    let start = Instant::now();
    soup_obs::gauge!("supervisor.degraded_shards").set(0.0);

    let mut sup = Supervisor::new(plan, launch)?;
    sup.run()?;

    let mut per_shard: Vec<ShardResult> = Vec::new();
    let mut missing: Vec<usize> = Vec::new();
    for slot in &sup.slots {
        match &slot.result {
            Some(r) => per_shard.push(r.clone()),
            None => missing.push(slot.shard),
        }
    }
    per_shard.sort_by_key(|r| r.shard);
    let restarts = sup.restarts;
    drop(sup);

    if per_shard.is_empty() {
        return Err(SoupError::shard_degraded(
            missing,
            "every shard exhausted its restart budget".to_string(),
        ));
    }

    let correct: u64 = per_shard.iter().map(|r| r.correct).sum();
    let total: u64 = per_shard.iter().map(|r| r.test_total).sum();
    let max_worker_peak_rss = per_shard
        .iter()
        .map(|r| r.peak_rss_bytes)
        .max()
        .unwrap_or(0);
    let report = ShardRunReport {
        test_accuracy: correct as f64 / total.max(1) as f64,
        per_shard,
        wall_ms: start.elapsed().as_millis() as u64,
        max_worker_peak_rss,
        missing,
        restarts,
    };
    soup_obs::gauge!("shard.test_accuracy").set(report.test_accuracy);
    soup_obs::gauge!("shard.max_worker_peak_rss").set(max_worker_peak_rss as f64);

    // Durable run provenance: a degraded run must say so on disk, not
    // just on stdout.
    let provenance = RunProvenance {
        k: plan.k,
        degraded: report.is_degraded(),
        missing: report.missing.clone(),
        restarts: report.restarts,
        test_accuracy: report.test_accuracy,
        surviving_shards: report.per_shard.iter().map(|r| r.shard).collect(),
    };
    let run_json = serde_json::to_string_pretty(&provenance)
        .map_err(|e| SoupError::corrupt(format!("run provenance serialise: {e}")))?;
    soup_store::write_durable(plan.out_dir_path().join("run.json"), run_json.as_bytes())?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::halo::write_frame;

    #[test]
    fn pump_handles_fragmented_frames_over_a_socketpair() {
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let mut b = b;
        let mut wire = Vec::new();
        write_frame(&mut wire, OP_READY, &crate::halo::shard_epoch_payload(1, 0)).unwrap();
        // First half now, second half later.
        use std::io::Write;
        a.write_all(&wire[..wire.len() / 2]).unwrap();
        a.flush().unwrap();
        let mut buf = FrameBuf::new();
        assert!(matches!(pump(&mut b, &mut buf).unwrap(), Pumped::Progress));
        assert!(buf.pop().unwrap().is_none(), "half a frame is no frame");
        a.write_all(&wire[wire.len() / 2..]).unwrap();
        a.flush().unwrap();
        assert!(matches!(pump(&mut b, &mut buf).unwrap(), Pumped::Progress));
        let (op, payload) = buf.pop().unwrap().unwrap();
        assert_eq!(op, OP_READY);
        assert_eq!(
            crate::halo::parse_shard_epoch(&payload).unwrap(),
            (1, 0, &[][..])
        );
        // Peer hangs up: pump reports EOF.
        drop(a);
        assert!(matches!(pump(&mut b, &mut buf).unwrap(), Pumped::Eof));
    }

    #[test]
    fn corrupt_newest_checkpoint_flips_bytes_in_place() {
        let dir = std::env::temp_dir().join(format!("soup-supcorrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let ck = dir.join("ingredient_0001.ck");
        let original = vec![0xabu8; 256];
        std::fs::write(&ck, &original).unwrap();
        corrupt_newest_checkpoint(&dir);
        let mutated = std::fs::read(&ck).unwrap();
        assert_ne!(mutated, original, "checkpoint should have been mangled");
        assert_eq!(mutated.len(), original.len());
        // A directory with no checkpoints is a quiet no-op.
        let empty = dir.join("sub");
        std::fs::create_dir_all(&empty).unwrap();
        corrupt_newest_checkpoint(&empty);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
