//! Per-ingredient checkpoint persistence and validation.
//!
//! Phase-1 fault tolerance rests on checkpoints being *independently
//! verifiable*: a resumed run must be able to tell a usable checkpoint from
//! a truncated, corrupted, version-skewed or foreign one without trusting
//! anything but the file itself. A [`Checkpoint`] therefore carries, next
//! to the parameters, everything needed to re-validate it:
//!
//! - `version` — the checkpoint format version ([`FORMAT_VERSION`]);
//!   mismatches are a hard [`SoupError::Checkpoint`], never a best-effort
//!   parse;
//! - `id` / `train_seed` — the ingredient ordinal and the seed that drove
//!   its training, so a resume can detect checkpoints written by a run
//!   with a different root seed (they would silently break the
//!   bit-identical-to-fault-free guarantee);
//! - `val_accuracy` — the greedy sort key, so souping never needs to
//!   re-evaluate resumed ingredients.
//!
//! [`validate_checkpoint`] performs the three checks the fault-injection
//! harness exercises: format version, architecture shape (against a
//! reference [`ParamSet`], usually the shared Phase-1 initialisation), and
//! a NaN/Inf scan over every tensor.

use crate::params::ParamSet;
use serde::{Deserialize, Serialize};
use soup_error::{Result, SoupError};
use std::path::{Path, PathBuf};

/// Version tag written into (and required from) every checkpoint file.
pub const FORMAT_VERSION: u32 = 1;

/// One trained ingredient, as persisted on disk.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    pub version: u32,
    /// Ingredient ordinal in the Phase-1 run.
    pub id: usize,
    /// Seed that drove this ingredient's training randomness.
    pub train_seed: u64,
    /// Validation accuracy measured after training.
    pub val_accuracy: f64,
    pub params: ParamSet,
}

impl Checkpoint {
    pub fn new(id: usize, train_seed: u64, val_accuracy: f64, params: ParamSet) -> Self {
        Self {
            version: FORMAT_VERSION,
            id,
            train_seed,
            val_accuracy,
            params,
        }
    }
}

/// Canonical checkpoint filename for ingredient `id` inside `dir`.
pub fn checkpoint_path(dir: impl AsRef<Path>, id: usize) -> PathBuf {
    dir.as_ref().join(format!("ingredient_{id}.json"))
}

/// Persist a checkpoint as JSON.
pub fn save_checkpoint(ck: &Checkpoint, path: impl AsRef<Path>) -> Result<()> {
    let path = path.as_ref();
    let json = serde_json::to_string(ck)
        .map_err(|e| SoupError::parse(format!("serializing checkpoint {}: {e}", path.display())))?;
    std::fs::write(path, json).map_err(|e| SoupError::io_at(path, e))
}

/// Load a checkpoint written by [`save_checkpoint`]. Parses and checks the
/// format version; run [`validate_checkpoint`] afterwards for the
/// shape/finiteness checks that need run context.
pub fn load_checkpoint(path: impl AsRef<Path>) -> Result<Checkpoint> {
    let path = path.as_ref();
    let json = std::fs::read_to_string(path).map_err(|e| SoupError::io_at(path, e))?;
    let ck: Checkpoint = serde_json::from_str(&json).map_err(|e| {
        SoupError::corrupt(format!(
            "checkpoint {} is not valid JSON: {e}",
            path.display()
        ))
    })?;
    if ck.version != FORMAT_VERSION {
        return Err(SoupError::checkpoint(format!(
            "checkpoint {} has format version {} (expected {FORMAT_VERSION})",
            path.display(),
            ck.version
        )));
    }
    Ok(ck)
}

/// Validate a checkpoint against its run: format version, ordinal, expected
/// training seed, architecture shape (against `reference`, usually the
/// shared initialisation) and a NaN/Inf scan.
pub fn validate_checkpoint(
    ck: &Checkpoint,
    expected_id: usize,
    expected_seed: Option<u64>,
    reference: &ParamSet,
) -> Result<()> {
    if ck.version != FORMAT_VERSION {
        return Err(SoupError::checkpoint(format!(
            "format version {} != {FORMAT_VERSION}",
            ck.version
        )));
    }
    if ck.id != expected_id {
        return Err(SoupError::checkpoint(format!(
            "checkpoint is for ingredient {} but was found in slot {expected_id}",
            ck.id
        )));
    }
    if let Some(seed) = expected_seed {
        if ck.train_seed != seed {
            return Err(SoupError::checkpoint(format!(
                "ingredient {expected_id}: train seed {} != expected {seed} \
                 (checkpoint from a different run?)",
                ck.train_seed
            )));
        }
    }
    if !ck.params.same_shape(reference) {
        return Err(SoupError::shape(format!(
            "ingredient {expected_id}: checkpoint architecture does not match the run's model"
        )));
    }
    for (slot, t) in ck.params.flat().enumerate() {
        if !t.data().iter().all(|v| v.is_finite()) {
            return Err(SoupError::corrupt(format!(
                "ingredient {expected_id}: non-finite parameter in tensor slot {slot}"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::model::init_params;
    use soup_tensor::SplitMix64;

    fn tmpdir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!("soup_gnn_ckpt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn params(seed: u64) -> ParamSet {
        let cfg = ModelConfig::gcn(6, 3).with_hidden(4);
        init_params(&cfg, &mut SplitMix64::new(seed))
    }

    #[test]
    fn roundtrip_and_validate() {
        let p = params(1);
        let ck = Checkpoint::new(2, 99, 0.61, p.clone());
        let path = checkpoint_path(tmpdir(), 2);
        save_checkpoint(&ck, &path).unwrap();
        let back = load_checkpoint(&path).unwrap();
        assert_eq!(back.id, 2);
        assert_eq!(back.train_seed, 99);
        assert_eq!(back.val_accuracy, 0.61);
        validate_checkpoint(&back, 2, Some(99), &p).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_version_rejected() {
        let path = tmpdir().join("ck_wrong_version.json");
        let ck = Checkpoint {
            version: FORMAT_VERSION + 1,
            ..Checkpoint::new(0, 1, 0.5, params(2))
        };
        let json = serde_json::to_string(&ck).unwrap();
        std::fs::write(&path, json).unwrap();
        let err = load_checkpoint(&path).unwrap_err();
        assert_eq!(err.kind(), "checkpoint");
        assert!(err.to_string().contains("format version"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn garbage_file_is_corrupt() {
        let path = tmpdir().join("ck_garbage.json");
        std::fs::write(&path, "{definitely not json").unwrap();
        let err = load_checkpoint(&path).unwrap_err();
        assert_eq!(err.kind(), "corrupt");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io() {
        let err = load_checkpoint("/nonexistent/ck.json").unwrap_err();
        assert_eq!(err.kind(), "io");
    }

    #[test]
    fn nan_scan_catches_poisoned_params() {
        let mut p = params(3);
        p.layers[0].tensors[0].make_mut()[0] = f32::NAN;
        let ck = Checkpoint::new(0, 1, 0.5, p);
        let err = validate_checkpoint(&ck, 0, Some(1), &params(3)).unwrap_err();
        assert_eq!(err.kind(), "corrupt");
    }

    #[test]
    fn shape_mismatch_detected() {
        let ck = Checkpoint::new(0, 1, 0.5, params(4));
        let cfg = ModelConfig::gcn(6, 3).with_hidden(8); // different hidden size
        let other = init_params(&cfg, &mut SplitMix64::new(4));
        let err = validate_checkpoint(&ck, 0, Some(1), &other).unwrap_err();
        assert_eq!(err.kind(), "shape");
    }

    #[test]
    fn seed_and_slot_mismatches_detected() {
        let p = params(5);
        let ck = Checkpoint::new(3, 42, 0.5, p.clone());
        assert_eq!(
            validate_checkpoint(&ck, 3, Some(43), &p)
                .unwrap_err()
                .kind(),
            "checkpoint"
        );
        assert_eq!(
            validate_checkpoint(&ck, 4, Some(42), &p)
                .unwrap_err()
                .kind(),
            "checkpoint"
        );
    }
}
