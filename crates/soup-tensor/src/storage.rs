//! Allocation-tracked buffer storage.
//!
//! [`Buf`] owns the flat `Vec<f32>` behind a tensor and keeps the global
//! [`crate::memory::DEVICE_MEMORY`] meter in sync across its whole
//! lifecycle: construction registers the bytes, `Drop` releases them, and
//! `Clone` (used by copy-on-write updates) registers the copy.
//!
//! Buffers are recycled through the workspace pool ([`crate::pool`]):
//! `zeros` and `Clone` draw from it, and `Drop` returns the vector to it
//! instead of deallocating, so shape-periodic workloads (training epochs)
//! stop hitting the allocator once warm. Live bytes stay in
//! `DEVICE_MEMORY.current`; idle pooled bytes are accounted separately.

use crate::memory::DEVICE_MEMORY;

/// A tracked, heap-allocated `f32` buffer.
#[derive(Debug)]
pub struct Buf {
    data: Vec<f32>,
}

impl Buf {
    /// Take ownership of an existing vector, registering its capacity.
    pub fn from_vec(data: Vec<f32>) -> Self {
        DEVICE_MEMORY.alloc(Self::bytes_of(&data));
        Self { data }
    }

    /// Allocate a zero-filled buffer of `len` elements (pool-recycled).
    pub fn zeros(len: usize) -> Self {
        Self::from_vec(crate::pool::take_zeroed(len))
    }

    /// Allocate a buffer filled with `value`.
    pub fn full(len: usize, value: f32) -> Self {
        Self::from_vec(vec![value; len])
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    fn bytes_of(data: &Vec<f32>) -> usize {
        data.capacity() * std::mem::size_of::<f32>()
    }
}

impl Clone for Buf {
    fn clone(&self) -> Self {
        Self::from_vec(crate::pool::take_copy(&self.data))
    }
}

impl Drop for Buf {
    fn drop(&mut self) {
        DEVICE_MEMORY.free(Self::bytes_of(&self.data));
        crate::pool::put(std::mem::take(&mut self.data));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_alloc_and_free() {
        let before = DEVICE_MEMORY.current();
        let buf = Buf::zeros(1000);
        assert!(DEVICE_MEMORY.current() >= before + 4000);
        drop(buf);
        assert_eq!(
            DEVICE_MEMORY.current().min(before),
            before.min(DEVICE_MEMORY.current())
        );
    }

    #[test]
    fn clone_registers_copy() {
        let buf = Buf::full(256, 1.5);
        let before = DEVICE_MEMORY.current();
        let copy = buf.clone();
        assert!(DEVICE_MEMORY.current() >= before + 1024);
        assert_eq!(copy.as_slice(), buf.as_slice());
        drop(copy);
    }

    #[test]
    fn contents() {
        let buf = Buf::full(4, 2.0);
        assert_eq!(buf.as_slice(), &[2.0; 4]);
        assert_eq!(buf.len(), 4);
        assert!(!buf.is_empty());
    }
}
