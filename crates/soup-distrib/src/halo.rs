//! Halo feature transport between shard-worker processes.
//!
//! Sharded Phase-1 gives every worker process exclusive ownership of one
//! contiguous node range of the shard-ordered mmap dataset. Training a
//! GNN on a shard still needs the *features* of the 1-hop out-of-shard
//! neighbors ("halo" nodes); this module moves them with the same
//! length-prefixed frame discipline as `soup-serve::proto` (u32-LE length,
//! one opcode byte, fixed little-endian payload layout, total decoding):
//!
//! ```text
//! frame     := len:u32-LE  op:u8  payload[len-1]
//! FETCH     := op=1  epoch:u8  count:u32  ids:u32×count   (global node ids)
//! ROWS      := op=2  epoch:u8  count:u32  dim:u32  rows:f32×count×dim
//! BYE       := op=3
//! READY     := op=10 shard:u32 epoch:u32   worker → coordinator (halo server up)
//! GO        := op=11                       coordinator → worker (all servers up)
//! FETCHED   := op=12 shard:u32 epoch:u32   worker → coordinator (halo resident)
//! PROCEED   := op=13                       coordinator → worker (training may start)
//! RESULT    := op=14 shard:u32 epoch:u32 json:u8×rest   worker → coordinator
//! ACK       := op=15                       coordinator → worker (exit)
//! HEARTBEAT := op=16 shard:u32 epoch:u32   worker → coordinator (liveness)
//! ```
//!
//! The **session epoch** is the worker's incarnation counter: 0 on first
//! spawn, bumped by the supervisor on every respawn. Worker→coordinator
//! frames carry it so the supervisor can reject stale frames left in a
//! socket buffer by a pre-crash incarnation; halo FETCH/ROWS carry a
//! truncated epoch byte that the server echoes, so a fetcher never
//! accounts rows against a reply it did not request this incarnation.
//!
//! Two transports deliver identical bytes:
//!
//! - **shared-memory fast path** (default): the dataset file is mapped
//!   `MAP_SHARED` by every process, so the owner's feature pages *are*
//!   shared memory — the fetcher dereferences them directly. Costs: the
//!   halo pages join the fetcher's RSS.
//! - **Unix-domain sockets** (`SOUP_SHARD_NO_SHM=1` or `no_shm` in the
//!   plan): the fetcher asks each owning shard over its `halo-<i>.sock`
//!   and only ever touches its own pages.
//!
//! The determinism test in `tests/shard_pipeline.rs` holds the two paths
//! bit-identical.

use std::io::{Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};

use soup_error::SoupError;
use soup_graph::mmap::MmapDataset;

type Result<T> = std::result::Result<T, SoupError>;

/// Frames above this size are rejected as corrupt (largest legal frame is
/// a ROWS response for one id chunk: `FETCH_CHUNK × dim × 4` plus header).
pub const MAX_FRAME: usize = 16 << 20;

/// Ids per FETCH frame; bounds peak frame size at any feature_dim ≤ 1024.
pub const FETCH_CHUNK: usize = 4096;

pub const OP_FETCH: u8 = 1;
pub const OP_ROWS: u8 = 2;
pub const OP_BYE: u8 = 3;
pub const OP_READY: u8 = 10;
pub const OP_GO: u8 = 11;
pub const OP_FETCHED: u8 = 12;
pub const OP_PROCEED: u8 = 13;
pub const OP_RESULT: u8 = 14;
pub const OP_ACK: u8 = 15;
pub const OP_HEARTBEAT: u8 = 16;

/// Write one `op + payload` frame.
pub fn write_frame(w: &mut impl Write, op: u8, payload: &[u8]) -> Result<()> {
    let len = payload.len() + 1;
    if len > MAX_FRAME {
        return Err(SoupError::usage(format!(
            "halo frame of {len} bytes exceeds MAX_FRAME {MAX_FRAME}"
        )));
    }
    let mut head = [0u8; 5];
    head[0..4].copy_from_slice(&(len as u32).to_le_bytes());
    head[4] = op;
    w.write_all(&head).map_err(SoupError::from)?;
    w.write_all(payload).map_err(SoupError::from)?;
    w.flush().map_err(SoupError::from)
}

/// Read one frame; `Ok(None)` on clean EOF at a frame boundary.
pub fn read_frame(r: &mut impl Read) -> Result<Option<(u8, Vec<u8>)>> {
    let mut lenb = [0u8; 4];
    match r.read_exact(&mut lenb) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(SoupError::from(e)),
    }
    let len = u32::from_le_bytes(lenb) as usize;
    if len == 0 || len > MAX_FRAME {
        return Err(SoupError::corrupt(format!(
            "halo frame length {len} outside 1..={MAX_FRAME}"
        )));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf).map_err(SoupError::from)?;
    let op = buf[0];
    buf.remove(0);
    Ok(Some((op, buf)))
}

/// A frame that must be present and carry the expected opcode.
pub fn expect_frame(r: &mut impl Read, want: u8) -> Result<Vec<u8>> {
    match read_frame(r)? {
        Some((op, payload)) if op == want => Ok(payload),
        Some((op, _)) => Err(SoupError::corrupt(format!(
            "halo protocol: expected opcode {want}, got {op}"
        ))),
        None => Err(SoupError::corrupt(format!(
            "halo protocol: peer closed while waiting for opcode {want}"
        ))),
    }
}

/// `u32` frame payload helper (READY/FETCHED carry the shard ordinal).
pub fn u32_payload(payload: &[u8]) -> Result<u32> {
    if payload.len() != 4 {
        return Err(SoupError::corrupt(format!(
            "halo protocol: expected 4-byte payload, got {}",
            payload.len()
        )));
    }
    Ok(u32::from_le_bytes(payload.try_into().unwrap()))
}

/// Encode the `shard:u32 epoch:u32` prefix carried by every
/// worker→coordinator control frame (READY/FETCHED/RESULT/HEARTBEAT).
pub fn shard_epoch_payload(shard: u32, epoch: u32) -> [u8; 8] {
    let mut p = [0u8; 8];
    p[0..4].copy_from_slice(&shard.to_le_bytes());
    p[4..8].copy_from_slice(&epoch.to_le_bytes());
    p
}

/// Decode a `shard:u32 epoch:u32` prefix, returning the rest of the
/// payload (RESULT carries its JSON there; the others carry nothing).
pub fn parse_shard_epoch(payload: &[u8]) -> Result<(u32, u32, &[u8])> {
    if payload.len() < 8 {
        return Err(SoupError::corrupt(format!(
            "halo protocol: shard+epoch prefix needs 8 bytes, got {}",
            payload.len()
        )));
    }
    let shard = u32::from_le_bytes(payload[0..4].try_into().unwrap());
    let epoch = u32::from_le_bytes(payload[4..8].try_into().unwrap());
    Ok((shard, epoch, &payload[8..]))
}

/// Incremental frame accumulator for nonblocking readers: feed raw bytes
/// as they arrive off the wire, pop complete frames as they materialise.
/// The supervisor drives all K control connections off one poll loop with
/// one of these per connection, so a worker that writes half a frame and
/// stalls never blocks the loop.
#[derive(Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
}

impl FrameBuf {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append bytes read off the wire.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet assembled into a frame.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Pop the next complete frame, `Ok(None)` if more bytes are needed.
    /// A length outside `1..=MAX_FRAME` poisons the stream permanently —
    /// there is no way to resynchronise a corrupt length prefix.
    pub fn pop(&mut self) -> Result<Option<(u8, Vec<u8>)>> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[0..4].try_into().unwrap()) as usize;
        if len == 0 || len > MAX_FRAME {
            return Err(SoupError::corrupt(format!(
                "halo frame length {len} outside 1..={MAX_FRAME}"
            )));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let op = self.buf[4];
        let payload = self.buf[5..4 + len].to_vec();
        self.buf.drain(0..4 + len);
        Ok(Some((op, payload)))
    }
}

/// Socket path of shard `i`'s halo server inside the run directory.
pub fn halo_socket_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("halo-{shard}.sock"))
}

/// Socket path of the coordinator's control plane.
pub fn control_socket_path(dir: &Path) -> PathBuf {
    dir.join("control.sock")
}

/// Serve this shard's owned feature rows on `listener` until the process
/// exits. Each FETCH is answered with one ROWS frame; ids outside
/// `owned` are a protocol violation and close the connection.
///
/// Runs on a detached thread: the listener accepts for the worker's whole
/// lifetime, so a slow peer can fetch at any point before the coordinator's
/// PROCEED barrier releases training.
pub fn serve_halo(
    listener: UnixListener,
    dataset: std::sync::Arc<MmapDataset>,
    owned: std::ops::Range<usize>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { break };
            let dataset = std::sync::Arc::clone(&dataset);
            let owned = owned.clone();
            std::thread::spawn(move || {
                let _ = serve_halo_conn(stream, &dataset, owned);
            });
        }
    })
}

fn serve_halo_conn(
    stream: UnixStream,
    dataset: &MmapDataset,
    owned: std::ops::Range<usize>,
) -> Result<()> {
    let mut reader = std::io::BufReader::new(stream.try_clone().map_err(SoupError::from)?);
    let mut writer = std::io::BufWriter::new(stream);
    let dim = dataset.feature_dim();
    while let Some((op, payload)) = read_frame(&mut reader)? {
        match op {
            OP_FETCH => {
                if payload.len() < 5 {
                    return Err(SoupError::corrupt("halo FETCH shorter than its header"));
                }
                let epoch = payload[0];
                let count = u32::from_le_bytes(payload[1..5].try_into().unwrap()) as usize;
                if payload.len() != 5 + count * 4 {
                    return Err(SoupError::corrupt(format!(
                        "halo FETCH declares {count} ids but carries {} bytes",
                        payload.len() - 5
                    )));
                }
                let mut resp = Vec::with_capacity(9 + count * dim * 4);
                resp.push(epoch); // echo the fetcher's session epoch
                resp.extend_from_slice(&(count as u32).to_le_bytes());
                resp.extend_from_slice(&(dim as u32).to_le_bytes());
                for c in payload[5..].chunks_exact(4) {
                    let id = u32::from_le_bytes(c.try_into().unwrap()) as usize;
                    if !owned.contains(&id) {
                        return Err(SoupError::usage(format!(
                            "halo FETCH for node {id} outside owned range {owned:?}"
                        )));
                    }
                    for &x in dataset.feature_row(id) {
                        resp.extend_from_slice(&x.to_le_bytes());
                    }
                }
                write_frame(&mut writer, OP_ROWS, &resp)?;
            }
            OP_BYE => return Ok(()),
            other => {
                return Err(SoupError::corrupt(format!(
                    "halo server: unexpected opcode {other}"
                )))
            }
        }
    }
    Ok(())
}

/// Retry/timeout policy for halo fetches. Fetches are pure idempotent
/// reads, so a failed chunk is simply re-requested over a fresh
/// connection with exponential backoff between attempts.
#[derive(Debug, Clone, Copy)]
pub struct FetchOpts {
    /// Session epoch of the fetching incarnation; the server echoes its
    /// low byte so stale replies are detected.
    pub epoch: u32,
    /// Per-read/write socket timeout. A peer that stops mid-frame fails
    /// the chunk within this bound instead of pinning the fetcher.
    pub io_timeout: std::time::Duration,
    /// Total attempts per chunk (first try included).
    pub attempts: u32,
    /// Backoff before retry `n` is `base_backoff × 2^(n-1)`.
    pub base_backoff: std::time::Duration,
}

impl Default for FetchOpts {
    fn default() -> Self {
        Self {
            epoch: 0,
            io_timeout: std::time::Duration::from_secs(30),
            attempts: 3,
            base_backoff: std::time::Duration::from_millis(50),
        }
    }
}

struct FetchConn {
    reader: std::io::BufReader<UnixStream>,
    writer: std::io::BufWriter<UnixStream>,
}

fn connect_fetch(sock: &Path, opts: &FetchOpts) -> Result<FetchConn> {
    let stream = UnixStream::connect(sock).map_err(|e| SoupError::io_at(sock, e))?;
    stream
        .set_read_timeout(Some(opts.io_timeout))
        .map_err(SoupError::from)?;
    stream
        .set_write_timeout(Some(opts.io_timeout))
        .map_err(SoupError::from)?;
    Ok(FetchConn {
        reader: std::io::BufReader::new(stream.try_clone().map_err(SoupError::from)?),
        writer: std::io::BufWriter::new(stream),
    })
}

/// One FETCH→ROWS exchange. Rows are stored only after the whole reply
/// validates, so a failed attempt never leaves partial state behind.
fn fetch_chunk(
    conn: &mut FetchConn,
    chunk: &[u32],
    dim: usize,
    epoch: u32,
    store_row: &mut impl FnMut(usize, &[f32]),
) -> Result<()> {
    let mut req = Vec::with_capacity(5 + chunk.len() * 4);
    req.push((epoch & 0xff) as u8);
    req.extend_from_slice(&(chunk.len() as u32).to_le_bytes());
    for &id in chunk {
        req.extend_from_slice(&id.to_le_bytes());
    }
    write_frame(&mut conn.writer, OP_FETCH, &req)?;
    let payload = expect_frame(&mut conn.reader, OP_ROWS)?;
    if payload.len() < 9 {
        return Err(SoupError::corrupt("halo ROWS shorter than its header"));
    }
    if payload[0] != (epoch & 0xff) as u8 {
        return Err(SoupError::corrupt(format!(
            "halo ROWS from stale session epoch {} (want {})",
            payload[0],
            epoch & 0xff
        )));
    }
    let count = u32::from_le_bytes(payload[1..5].try_into().unwrap()) as usize;
    let got_dim = u32::from_le_bytes(payload[5..9].try_into().unwrap()) as usize;
    if count != chunk.len() || got_dim != dim {
        return Err(SoupError::corrupt(format!(
            "halo ROWS shape {count}×{got_dim}, expected {}×{dim}",
            chunk.len()
        )));
    }
    if payload.len() != 9 + count * dim * 4 {
        return Err(SoupError::corrupt("halo ROWS payload size mismatch"));
    }
    let mut row = vec![0f32; dim];
    for (i, &id) in chunk.iter().enumerate() {
        let base = 9 + i * dim * 4;
        for (j, x) in row.iter_mut().enumerate() {
            let off = base + j * 4;
            *x = f32::from_le_bytes(payload[off..off + 4].try_into().unwrap());
        }
        store_row(id as usize, &row);
    }
    Ok(())
}

/// Fetch feature rows for `ids` (global, sorted or not) over the socket of
/// their owning shard, in [`FETCH_CHUNK`]-sized frames with the default
/// [`FetchOpts`]. Rows are handed to `store_row(id, row)` — the caller
/// picks the destination layout.
pub fn fetch_rows_from(
    sock: &Path,
    ids: &[u32],
    dim: usize,
    store_row: impl FnMut(usize, &[f32]),
) -> Result<()> {
    fetch_rows_with(sock, ids, dim, &FetchOpts::default(), store_row)
}

/// [`fetch_rows_from`] with explicit timeout/retry policy. Each chunk is
/// retried up to `opts.attempts` times over a fresh connection with
/// exponential backoff; only `Usage` errors (a fetch outside the owned
/// range — a deterministic bug) fail fast.
pub fn fetch_rows_with(
    sock: &Path,
    ids: &[u32],
    dim: usize,
    opts: &FetchOpts,
    mut store_row: impl FnMut(usize, &[f32]),
) -> Result<()> {
    let mut conn: Option<FetchConn> = None;
    for chunk in ids.chunks(FETCH_CHUNK) {
        let mut attempt = 0u32;
        loop {
            let result = match &mut conn {
                Some(c) => fetch_chunk(c, chunk, dim, opts.epoch, &mut store_row),
                None => match connect_fetch(sock, opts) {
                    Ok(c) => {
                        let c = conn.insert(c);
                        fetch_chunk(c, chunk, dim, opts.epoch, &mut store_row)
                    }
                    Err(e) => Err(e),
                },
            };
            match result {
                Ok(()) => break,
                // Out-of-range fetches are deterministic bugs, not flakes.
                Err(e) if e.kind() == "usage" => return Err(e),
                Err(e) => {
                    attempt += 1;
                    if attempt >= opts.attempts {
                        return Err(e);
                    }
                    soup_obs::counter!("halo.fetch_retries").inc();
                    conn = None; // reconnect on the next attempt
                    std::thread::sleep(opts.base_backoff * (1 << (attempt - 1).min(8)));
                }
            }
        }
    }
    if let Some(mut c) = conn {
        // Best-effort goodbye; the data already landed.
        let _ = write_frame(&mut c.writer, OP_BYE, &[]);
    }
    Ok(())
}

/// Connect to a unix socket, retrying while the peer is still binding.
pub fn connect_retry(path: &Path, timeout: std::time::Duration) -> Result<UnixStream> {
    let start = std::time::Instant::now();
    loop {
        match UnixStream::connect(path) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if start.elapsed() > timeout {
                    return Err(SoupError::io_at(path, e));
                }
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soup_graph::mmap::save_mmap_dataset;
    use soup_graph::DatasetKind;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("soup-halo-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, OP_READY, &7u32.to_le_bytes()).unwrap();
        write_frame(&mut buf, OP_GO, &[]).unwrap();
        let mut r = &buf[..];
        let (op, p) = read_frame(&mut r).unwrap().unwrap();
        assert_eq!((op, u32_payload(&p).unwrap()), (OP_READY, 7));
        let (op, p) = read_frame(&mut r).unwrap().unwrap();
        assert_eq!((op, p.len()), (OP_GO, 0));
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn oversized_and_zero_frames_are_corrupt() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&0u32.to_le_bytes());
        assert_eq!(read_frame(&mut &buf[..]).unwrap_err().kind(), "corrupt");
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
        assert_eq!(read_frame(&mut &buf[..]).unwrap_err().kind(), "corrupt");
    }

    #[test]
    fn fetch_roundtrips_rows_over_uds() {
        let dir = tmpdir("fetch");
        let ds_path = dir.join("ds.gmm");
        let d = DatasetKind::Flickr.generate_scaled(5, 0.02);
        save_mmap_dataset(&d, &ds_path).unwrap();
        let m = std::sync::Arc::new(MmapDataset::open(&ds_path).unwrap());
        let n = m.num_nodes();
        let dim = m.feature_dim();
        let sock = halo_socket_path(&dir, 0);
        let listener = UnixListener::bind(&sock).unwrap();
        let _server = serve_halo(listener, std::sync::Arc::clone(&m), 0..n);

        let ids: Vec<u32> = (0..n as u32).step_by(7).collect();
        let mut got: std::collections::HashMap<usize, Vec<f32>> = Default::default();
        fetch_rows_from(&sock, &ids, dim, |id, row| {
            got.insert(id, row.to_vec());
        })
        .unwrap();
        assert_eq!(got.len(), ids.len());
        for &id in &ids {
            // Transport is bit-exact with the shared-memory path.
            assert_eq!(got[&(id as usize)], m.feature_row(id as usize));
        }
    }

    #[test]
    fn frame_buf_reassembles_split_frames() {
        let mut wire = Vec::new();
        write_frame(&mut wire, OP_READY, &shard_epoch_payload(3, 1)).unwrap();
        write_frame(&mut wire, OP_HEARTBEAT, &shard_epoch_payload(3, 1)).unwrap();
        // Feed one byte at a time — worst-case fragmentation.
        let mut fb = FrameBuf::new();
        let mut got = Vec::new();
        for &b in &wire {
            fb.extend(&[b]);
            while let Some((op, p)) = fb.pop().unwrap() {
                got.push((op, p));
            }
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, OP_READY);
        assert_eq!(got[1].0, OP_HEARTBEAT);
        let (shard, epoch, rest) = parse_shard_epoch(&got[0].1).unwrap();
        assert_eq!((shard, epoch), (3, 1));
        assert!(rest.is_empty());
        assert_eq!(fb.pending(), 0);
    }

    #[test]
    fn frame_buf_rejects_corrupt_length() {
        let mut fb = FrameBuf::new();
        fb.extend(&0u32.to_le_bytes());
        assert_eq!(fb.pop().unwrap_err().kind(), "corrupt");
    }

    #[test]
    fn shard_epoch_prefix_roundtrips_with_tail() {
        let mut p = shard_epoch_payload(7, 42).to_vec();
        p.extend_from_slice(b"{\"x\":1}");
        let (shard, epoch, rest) = parse_shard_epoch(&p).unwrap();
        assert_eq!((shard, epoch), (7, 42));
        assert_eq!(rest, b"{\"x\":1}");
        assert_eq!(parse_shard_epoch(&[0; 7]).unwrap_err().kind(), "corrupt");
    }

    #[test]
    fn fetch_retries_over_a_flaky_connection() {
        let dir = tmpdir("retry");
        let ds_path = dir.join("ds.gmm");
        let d = DatasetKind::Flickr.generate_scaled(5, 0.02);
        save_mmap_dataset(&d, &ds_path).unwrap();
        let m = std::sync::Arc::new(MmapDataset::open(&ds_path).unwrap());
        let n = m.num_nodes();
        let dim = m.feature_dim();
        let sock = halo_socket_path(&dir, 0);
        let listener = UnixListener::bind(&sock).unwrap();
        // First connection is dropped on the floor; later ones are served.
        let srv = std::sync::Arc::clone(&m);
        std::thread::spawn(move || {
            let mut first = true;
            for stream in listener.incoming() {
                let Ok(stream) = stream else { break };
                if std::mem::take(&mut first) {
                    drop(stream); // simulated mid-handshake crash
                    continue;
                }
                let dataset = std::sync::Arc::clone(&srv);
                std::thread::spawn(move || {
                    let _ = serve_halo_conn(stream, &dataset, 0..dataset.num_nodes());
                });
            }
        });
        let ids: Vec<u32> = (0..n as u32).step_by(5).collect();
        let opts = FetchOpts {
            epoch: 1,
            io_timeout: std::time::Duration::from_secs(5),
            attempts: 3,
            base_backoff: std::time::Duration::from_millis(5),
        };
        let mut got = 0usize;
        fetch_rows_with(&sock, &ids, dim, &opts, |id, row| {
            assert_eq!(row, m.feature_row(id));
            got += 1;
        })
        .unwrap();
        assert_eq!(got, ids.len());
    }

    #[test]
    fn fetch_outside_owned_range_closes_connection() {
        let dir = tmpdir("range");
        let ds_path = dir.join("ds.gmm");
        let d = DatasetKind::Flickr.generate_scaled(6, 0.02);
        save_mmap_dataset(&d, &ds_path).unwrap();
        let m = std::sync::Arc::new(MmapDataset::open(&ds_path).unwrap());
        let dim = m.feature_dim();
        let sock = halo_socket_path(&dir, 1);
        let listener = UnixListener::bind(&sock).unwrap();
        // Server owns only the first half.
        let _server = serve_halo(listener, std::sync::Arc::clone(&m), 0..m.num_nodes() / 2);
        let bad = vec![(m.num_nodes() - 1) as u32];
        let err = fetch_rows_from(&sock, &bad, dim, |_, _| {}).unwrap_err();
        // The server drops the connection; the client sees a protocol error.
        assert!(matches!(err.kind(), "corrupt" | "io"), "{err}");
    }
}
