//! Out-of-core datasets: memory-mapped CSR + feature files.
//!
//! At paper scale (synthetic ogbn-products, 2.4M nodes) a materialised
//! [`Dataset`] no longer fits comfortably in one address space: the feature
//! matrix alone is `n × d × 4` bytes. This module stores the whole dataset
//! in a single flat file (`soup-graphmmap/1`) that processes map read-only
//! and share through the page cache — a shard worker that only dereferences
//! its own partition's rows only faults in its own partition's pages, which
//! is what makes the sharded-PLS ≈ R/K resident-set claim measurable
//! (DESIGN.md §12).
//!
//! ## File layout (`soup-graphmmap/1`, little-endian)
//!
//! ```text
//! header (112 B): magic "SOUPMMAP" | version u32 | crc32(header[16..]) u32
//!                 | n u64 | nnz u64 | feature_dim u64 | num_classes u64
//!                 | train_len u64 | val_len u64 | test_len u64 | reserved
//! sections (each 8-byte aligned, zero-padded, in this order):
//!   indptr   u64 × (n+1)      CSR row pointers
//!   indices  u32 × nnz        CSR column indices (strictly sorted per row)
//!   features f32 × n × d      row-major node features
//!   labels   u32 × n
//!   train    u32 × train_len  sorted split node ids
//!   val      u32 × val_len
//!   test     u32 × test_len
//! ```
//!
//! Files are written durably (tmp → fsync → rename → dir fsync) through
//! [`soup_store::write_durable_streamed`], and opening validates the same
//! CSR invariants as [`CsrGraph::validate`] — truncated or corrupted files
//! are rejected as `SoupError::Corrupt` before any graph math sees them.

use std::fs::File;
use std::io::Write;
use std::path::Path;

use soup_error::SoupError;
use soup_tensor::Tensor;

use crate::csr::{validate_parts, CsrGraph};
use crate::datasets::Dataset;
use crate::splits::Splits;

type Result<T> = std::result::Result<T, SoupError>;

pub const MAGIC: &[u8; 8] = b"SOUPMMAP";
pub const VERSION: u32 = 1;
pub const HEADER_LEN: usize = 112;

// ---------------------------------------------------------------------------
// Read-only memory map (raw mmap(2); falls back to a heap read elsewhere)
// ---------------------------------------------------------------------------

#[cfg(unix)]
mod sys {
    use std::os::fd::AsRawFd;

    // Bind mmap/munmap directly: the workspace builds fully offline with no
    // libc crate, and std already links the platform libc that provides
    // these symbols on every unix target.
    extern "C" {
        fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    }

    const PROT_READ: i32 = 1;
    // MAP_SHARED: every process mapping the same file shares one set of
    // physical pages — the "shared memory" that the shard halo fast path
    // reads through.
    const MAP_SHARED: i32 = 1;

    pub struct RawMap {
        ptr: *const u8,
        len: usize,
    }

    // Read-only mapping of an immutable (rename-published) file.
    unsafe impl Send for RawMap {}
    unsafe impl Sync for RawMap {}

    impl RawMap {
        pub fn map(file: &std::fs::File, len: usize) -> std::io::Result<Self> {
            if len == 0 {
                return Ok(Self {
                    ptr: std::ptr::NonNull::<u8>::dangling().as_ptr(),
                    len: 0,
                });
            }
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_SHARED,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(std::io::Error::last_os_error());
            }
            Ok(Self {
                ptr: ptr as *const u8,
                len,
            })
        }

        pub fn bytes(&self) -> &[u8] {
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for RawMap {
        fn drop(&mut self) {
            if self.len > 0 {
                unsafe {
                    munmap(self.ptr as *mut core::ffi::c_void, self.len);
                }
            }
        }
    }
}

/// A read-only byte view of a file: a true `mmap(2)` on unix, a plain heap
/// read elsewhere (correct, just without the out-of-core property).
pub struct Mmap {
    #[cfg(unix)]
    inner: sys::RawMap,
    #[cfg(not(unix))]
    inner: Vec<u8>,
}

impl Mmap {
    /// Map `path` read-only in its entirety.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref();
        let file = File::open(path).map_err(|e| SoupError::io_at(path, e))?;
        let len = file
            .metadata()
            .map_err(|e| SoupError::io_at(path, e))?
            .len();
        if len > usize::MAX as u64 {
            return Err(SoupError::corrupt(format!(
                "mmap: {} is larger than the address space",
                path.display()
            )));
        }
        #[cfg(unix)]
        {
            let inner =
                sys::RawMap::map(&file, len as usize).map_err(|e| SoupError::io_at(path, e))?;
            Ok(Self { inner })
        }
        #[cfg(not(unix))]
        {
            let inner = std::fs::read(path).map_err(|e| SoupError::io_at(path, e))?;
            Ok(Self { inner })
        }
    }

    pub fn bytes(&self) -> &[u8] {
        #[cfg(unix)]
        {
            self.inner.bytes()
        }
        #[cfg(not(unix))]
        {
            &self.inner
        }
    }

    pub fn len(&self) -> usize {
        self.bytes().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------------
// Typed section views
// ---------------------------------------------------------------------------

/// View an 8-byte-aligned byte range as a `T` slice. Alignment holds by
/// construction: the mmap base is page-aligned and every section offset is
/// a multiple of 8 (checked again here defensively).
fn typed_slice<T: Copy>(bytes: &[u8], off: usize, count: usize) -> &[T] {
    let size = std::mem::size_of::<T>();
    let end = off + count * size;
    assert!(end <= bytes.len(), "section out of bounds");
    let ptr = bytes[off..].as_ptr();
    assert_eq!(
        ptr as usize % std::mem::align_of::<T>(),
        0,
        "misaligned section"
    );
    unsafe { std::slice::from_raw_parts(ptr as *const T, count) }
}

fn pad8(len: usize) -> usize {
    len.div_ceil(8) * 8
}

#[derive(Debug, Clone, Copy)]
struct Layout {
    n: usize,
    nnz: usize,
    dim: usize,
    classes: usize,
    train_len: usize,
    val_len: usize,
    test_len: usize,
    off_indptr: usize,
    off_indices: usize,
    off_features: usize,
    off_labels: usize,
    off_train: usize,
    off_val: usize,
    off_test: usize,
    total_len: usize,
}

impl Layout {
    fn compute(
        n: usize,
        nnz: usize,
        dim: usize,
        classes: usize,
        train_len: usize,
        val_len: usize,
        test_len: usize,
    ) -> Self {
        let off_indptr = HEADER_LEN;
        let off_indices = off_indptr + pad8((n + 1) * 8);
        let off_features = off_indices + pad8(nnz * 4);
        let off_labels = off_features + pad8(n * dim * 4);
        let off_train = off_labels + pad8(n * 4);
        let off_val = off_train + pad8(train_len * 4);
        let off_test = off_val + pad8(val_len * 4);
        let total_len = off_test + pad8(test_len * 4);
        Self {
            n,
            nnz,
            dim,
            classes,
            train_len,
            val_len,
            test_len,
            off_indptr,
            off_indices,
            off_features,
            off_labels,
            off_train,
            off_val,
            off_test,
            total_len,
        }
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// A memory-mapped `soup-graphmmap/1` dataset. Opening checks the header
/// (magic, version, crc) and the exact file length; [`Self::validate`] runs
/// the full [`CsrGraph::validate`] rules over the mapped CSR arrays.
///
/// All accessors return zero-copy views into the map — dereferencing a row
/// faults in only that row's pages.
pub struct MmapDataset {
    map: Mmap,
    layout: Layout,
}

impl std::fmt::Debug for MmapDataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MmapDataset")
            .field("layout", &self.layout)
            .finish_non_exhaustive()
    }
}

impl MmapDataset {
    /// Open and header-check `path`. Cheap: O(header), no section is read.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref();
        if cfg!(target_endian = "big") {
            return Err(SoupError::usage(
                "soup-graphmmap files are little-endian; big-endian hosts are unsupported",
            ));
        }
        let map = Mmap::open(path)?;
        let bytes = map.bytes();
        if bytes.len() < HEADER_LEN {
            return Err(SoupError::corrupt(format!(
                "mmap dataset {}: {} bytes is shorter than the {HEADER_LEN}-byte header",
                path.display(),
                bytes.len()
            )));
        }
        if &bytes[0..8] != MAGIC {
            return Err(SoupError::corrupt(format!(
                "mmap dataset {}: bad magic",
                path.display()
            )));
        }
        let u32_at = |off: usize| u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
        let u64_at = |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
        let version = u32_at(8);
        if version != VERSION {
            return Err(SoupError::corrupt(format!(
                "mmap dataset {}: version {version}, expected {VERSION}",
                path.display()
            )));
        }
        let stored_crc = u32_at(12);
        let actual_crc = soup_store::crc::crc32(&bytes[16..HEADER_LEN]);
        if stored_crc != actual_crc {
            return Err(SoupError::corrupt(format!(
                "mmap dataset {}: header crc mismatch (stored {stored_crc:#x}, computed {actual_crc:#x})",
                path.display()
            )));
        }
        let as_usize = |v: u64, what: &str| -> Result<usize> {
            usize::try_from(v).map_err(|_| {
                SoupError::corrupt(format!("mmap dataset: {what} {v} overflows usize"))
            })
        };
        let n = as_usize(u64_at(16), "node count")?;
        let nnz = as_usize(u64_at(24), "nnz")?;
        let dim = as_usize(u64_at(32), "feature dim")?;
        let classes = as_usize(u64_at(40), "class count")?;
        let train_len = as_usize(u64_at(48), "train split length")?;
        let val_len = as_usize(u64_at(56), "val split length")?;
        let test_len = as_usize(u64_at(64), "test split length")?;
        let layout = Layout::compute(n, nnz, dim, classes, train_len, val_len, test_len);
        if bytes.len() != layout.total_len {
            return Err(SoupError::corrupt(format!(
                "mmap dataset {}: file is {} bytes, header implies {} (truncated or padded)",
                path.display(),
                bytes.len(),
                layout.total_len
            )));
        }
        Ok(Self { map, layout })
    }

    pub fn num_nodes(&self) -> usize {
        self.layout.n
    }

    pub fn num_directed_edges(&self) -> usize {
        self.layout.nnz
    }

    pub fn feature_dim(&self) -> usize {
        self.layout.dim
    }

    pub fn num_classes(&self) -> usize {
        self.layout.classes
    }

    /// CSR row pointers (u64 on disk).
    pub fn indptr(&self) -> &[u64] {
        typed_slice(self.map.bytes(), self.layout.off_indptr, self.layout.n + 1)
    }

    /// All CSR column indices.
    pub fn indices(&self) -> &[u32] {
        typed_slice(self.map.bytes(), self.layout.off_indices, self.layout.nnz)
    }

    /// Sorted neighbor list of `v` — touches only `v`'s index pages.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        let ip = self.indptr();
        let (a, b) = (ip[v] as usize, ip[v + 1] as usize);
        &self.indices()[a..b]
    }

    /// Feature row of `v` — touches only `v`'s feature pages.
    pub fn feature_row(&self, v: usize) -> &[f32] {
        let base = self.layout.off_features + v * self.layout.dim * 4;
        typed_slice(self.map.bytes(), base, self.layout.dim)
    }

    pub fn labels(&self) -> &[u32] {
        typed_slice(self.map.bytes(), self.layout.off_labels, self.layout.n)
    }

    /// Sorted train split node ids.
    pub fn train_ids(&self) -> &[u32] {
        typed_slice(
            self.map.bytes(),
            self.layout.off_train,
            self.layout.train_len,
        )
    }

    /// Sorted val split node ids.
    pub fn val_ids(&self) -> &[u32] {
        typed_slice(self.map.bytes(), self.layout.off_val, self.layout.val_len)
    }

    /// Sorted test split node ids.
    pub fn test_ids(&self) -> &[u32] {
        typed_slice(self.map.bytes(), self.layout.off_test, self.layout.test_len)
    }

    /// Gather feature rows for `nodes` into a dense tensor (bitwise equal
    /// to the rows a materialised [`Dataset`] would hold).
    pub fn gather_features(&self, nodes: &[usize]) -> Tensor {
        let dim = self.layout.dim;
        let mut data = Vec::with_capacity(nodes.len() * dim);
        for &v in nodes {
            data.extend_from_slice(self.feature_row(v));
        }
        Tensor::from_vec(nodes.len(), dim, data)
    }

    /// Run the full CSR invariant checks ([`CsrGraph::validate`] rules) plus
    /// label/split range checks over the mapped sections.
    pub fn validate(&self) -> Result<()> {
        let n = self.layout.n;
        let indptr = self.indptr();
        // On 64-bit hosts a u64 section *is* a usize section; elsewhere,
        // fall back to a checked copy.
        #[cfg(target_pointer_width = "64")]
        let indptr_usize: std::borrow::Cow<'_, [usize]> = std::borrow::Cow::Borrowed(unsafe {
            std::slice::from_raw_parts(indptr.as_ptr() as *const usize, indptr.len())
        });
        #[cfg(not(target_pointer_width = "64"))]
        let indptr_usize: std::borrow::Cow<'_, [usize]> = std::borrow::Cow::Owned(
            indptr
                .iter()
                .map(|&v| {
                    usize::try_from(v).expect("indptr value overflows usize on this platform")
                })
                .collect(),
        );
        validate_parts(n, &indptr_usize, self.indices())?;
        let classes = self.layout.classes as u32;
        if let Some(pos) = self.labels().iter().position(|&l| l >= classes) {
            return Err(SoupError::corrupt(format!(
                "mmap dataset: label {} at node {pos} out of range for {classes} classes",
                self.labels()[pos]
            )));
        }
        for (name, ids) in [
            ("train", self.train_ids()),
            ("val", self.val_ids()),
            ("test", self.test_ids()),
        ] {
            if ids.iter().any(|&v| v as usize >= n) {
                return Err(SoupError::corrupt(format!(
                    "mmap dataset: {name} split id out of range for {n} nodes"
                )));
            }
            if ids.windows(2).any(|w| w[0] >= w[1]) {
                return Err(SoupError::corrupt(format!(
                    "mmap dataset: {name} split ids not strictly sorted"
                )));
            }
        }
        Ok(())
    }

    /// Fully materialise into an in-memory [`Dataset`] (feature bytes are
    /// copied verbatim — bitwise round-trip with [`save_mmap_dataset`]).
    pub fn load(&self) -> Result<Dataset> {
        let n = self.layout.n;
        self.validate()?;
        let indptr: Vec<usize> = self.indptr().iter().map(|&v| v as usize).collect();
        let graph = CsrGraph::from_raw_parts(n, indptr, self.indices().to_vec())?;
        let features = Tensor::from_vec(n, self.layout.dim, {
            let all: &[f32] = typed_slice(
                self.map.bytes(),
                self.layout.off_features,
                n * self.layout.dim,
            );
            all.to_vec()
        });
        let to_usize = |ids: &[u32]| ids.iter().map(|&v| v as usize).collect::<Vec<_>>();
        let splits = Splits {
            train: to_usize(self.train_ids()),
            val: to_usize(self.val_ids()),
            test: to_usize(self.test_ids()),
        };
        Ok(Dataset::from_parts(
            graph,
            features,
            self.labels().to_vec(),
            splits,
            self.layout.classes,
        ))
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Shape declaration for a dataset about to be streamed to disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MmapMeta {
    pub n: usize,
    /// Directed adjacency entries (2× undirected edges).
    pub nnz: usize,
    pub feature_dim: usize,
    pub num_classes: usize,
    pub train_len: usize,
    pub val_len: usize,
    pub test_len: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Stage {
    Indptr,
    Indices,
    Features,
    Labels,
    Train,
    Val,
    Test,
    Done,
}

/// Sequential section writer handed to the `fill` callback of
/// [`write_mmap_dataset`]. Values are pushed one at a time (buffered
/// underneath); sections must be filled in file order and the writer
/// enforces the exact counts declared in [`MmapMeta`], inserting alignment
/// padding at each section boundary.
pub struct MmapWriter<'w, 'f> {
    w: &'w mut std::io::BufWriter<&'f mut File>,
    layout: Layout,
    stage: Stage,
    in_stage: usize,
}

impl MmapWriter<'_, '_> {
    fn stage_quota(&self, stage: Stage) -> usize {
        match stage {
            Stage::Indptr => self.layout.n + 1,
            Stage::Indices => self.layout.nnz,
            Stage::Features => self.layout.n * self.layout.dim,
            Stage::Labels => self.layout.n,
            Stage::Train => self.layout.train_len,
            Stage::Val => self.layout.val_len,
            Stage::Test => self.layout.test_len,
            Stage::Done => 0,
        }
    }

    fn stage_elem_size(stage: Stage) -> usize {
        match stage {
            Stage::Indptr => 8,
            Stage::Indices | Stage::Labels | Stage::Train | Stage::Val | Stage::Test => 4,
            Stage::Features => 4,
            Stage::Done => 0,
        }
    }

    fn advance_to(&mut self, want: Stage) -> std::io::Result<()> {
        while self.stage < want {
            let quota = self.stage_quota(self.stage);
            assert_eq!(
                self.in_stage, quota,
                "mmap writer: section {:?} got {} values, declared {}",
                self.stage, self.in_stage, quota
            );
            let bytes = quota * Self::stage_elem_size(self.stage);
            let pad = pad8(bytes) - bytes;
            if pad > 0 {
                self.w.write_all(&[0u8; 8][..pad])?;
            }
            self.stage = match self.stage {
                Stage::Indptr => Stage::Indices,
                Stage::Indices => Stage::Features,
                Stage::Features => Stage::Labels,
                Stage::Labels => Stage::Train,
                Stage::Train => Stage::Val,
                Stage::Val => Stage::Test,
                Stage::Test => Stage::Done,
                Stage::Done => unreachable!(),
            };
            self.in_stage = 0;
        }
        assert_eq!(
            self.stage, want,
            "mmap writer: sections must be written in file order ({want:?} after {:?})",
            self.stage
        );
        Ok(())
    }

    fn put(&mut self, stage: Stage, bytes: &[u8]) -> std::io::Result<()> {
        self.advance_to(stage)?;
        assert!(
            self.in_stage < self.stage_quota(stage),
            "mmap writer: section {stage:?} overflow past {} values",
            self.stage_quota(stage)
        );
        self.in_stage += 1;
        self.w.write_all(bytes)
    }

    pub fn put_indptr(&mut self, v: u64) -> std::io::Result<()> {
        self.put(Stage::Indptr, &v.to_le_bytes())
    }

    pub fn put_index(&mut self, v: u32) -> std::io::Result<()> {
        self.put(Stage::Indices, &v.to_le_bytes())
    }

    pub fn put_feature(&mut self, v: f32) -> std::io::Result<()> {
        self.put(Stage::Features, &v.to_le_bytes())
    }

    /// Push a whole feature row at once.
    pub fn put_feature_row(&mut self, row: &[f32]) -> std::io::Result<()> {
        for &v in row {
            self.put_feature(v)?;
        }
        Ok(())
    }

    pub fn put_label(&mut self, v: u32) -> std::io::Result<()> {
        self.put(Stage::Labels, &v.to_le_bytes())
    }

    pub fn put_train_id(&mut self, v: u32) -> std::io::Result<()> {
        self.put(Stage::Train, &v.to_le_bytes())
    }

    pub fn put_val_id(&mut self, v: u32) -> std::io::Result<()> {
        self.put(Stage::Val, &v.to_le_bytes())
    }

    pub fn put_test_id(&mut self, v: u32) -> std::io::Result<()> {
        self.put(Stage::Test, &v.to_le_bytes())
    }

    fn finish(&mut self) -> std::io::Result<()> {
        self.advance_to(Stage::Test)?;
        // Walk the final boundary too (writes trailing pad, checks count).
        let quota = self.stage_quota(Stage::Test);
        assert_eq!(
            self.in_stage, quota,
            "mmap writer: test split got {} values, declared {quota}",
            self.in_stage
        );
        let bytes = quota * 4;
        let pad = pad8(bytes) - bytes;
        if pad > 0 {
            self.w.write_all(&[0u8; 8][..pad])?;
        }
        self.stage = Stage::Done;
        Ok(())
    }
}

/// Stream a `soup-graphmmap/1` file to `path` durably. `fill` pushes every
/// section's values through the [`MmapWriter`]; counts are enforced against
/// `meta` and the file only becomes visible (rename) once fully written and
/// fsynced.
pub fn write_mmap_dataset(
    path: impl AsRef<Path>,
    meta: &MmapMeta,
    fill: impl FnOnce(&mut MmapWriter<'_, '_>) -> std::io::Result<()>,
) -> Result<()> {
    let layout = Layout::compute(
        meta.n,
        meta.nnz,
        meta.feature_dim,
        meta.num_classes,
        meta.train_len,
        meta.val_len,
        meta.test_len,
    );
    soup_store::write_durable_streamed(path, |w| {
        let mut header = [0u8; HEADER_LEN];
        header[0..8].copy_from_slice(MAGIC);
        header[8..12].copy_from_slice(&VERSION.to_le_bytes());
        header[16..24].copy_from_slice(&(meta.n as u64).to_le_bytes());
        header[24..32].copy_from_slice(&(meta.nnz as u64).to_le_bytes());
        header[32..40].copy_from_slice(&(meta.feature_dim as u64).to_le_bytes());
        header[40..48].copy_from_slice(&(meta.num_classes as u64).to_le_bytes());
        header[48..56].copy_from_slice(&(meta.train_len as u64).to_le_bytes());
        header[56..64].copy_from_slice(&(meta.val_len as u64).to_le_bytes());
        header[64..72].copy_from_slice(&(meta.test_len as u64).to_le_bytes());
        let crc = soup_store::crc::crc32(&header[16..HEADER_LEN]);
        header[12..16].copy_from_slice(&crc.to_le_bytes());
        w.write_all(&header)?;
        let mut mw = MmapWriter {
            w,
            layout,
            stage: Stage::Indptr,
            in_stage: 0,
        };
        fill(&mut mw)?;
        mw.finish()?;
        Ok(())
    })
}

/// Convert an in-memory [`Dataset`] to the mmap format (split ids are
/// sorted, as the format requires; everything else is bitwise-preserved).
pub fn save_mmap_dataset(dataset: &Dataset, path: impl AsRef<Path>) -> Result<()> {
    let g = &dataset.graph;
    let sorted_u32 = |ids: &[usize]| {
        let mut v: Vec<u32> = ids.iter().map(|&i| i as u32).collect();
        v.sort_unstable();
        v
    };
    let train = sorted_u32(&dataset.splits.train);
    let val = sorted_u32(&dataset.splits.val);
    let test = sorted_u32(&dataset.splits.test);
    let meta = MmapMeta {
        n: g.num_nodes(),
        nnz: g.num_directed_edges(),
        feature_dim: dataset.features.cols(),
        num_classes: dataset.num_classes,
        train_len: train.len(),
        val_len: val.len(),
        test_len: test.len(),
    };
    write_mmap_dataset(path, &meta, |w| {
        for &p in g.indptr() {
            w.put_indptr(p as u64)?;
        }
        for &c in g.indices() {
            w.put_index(c)?;
        }
        for v in 0..meta.n {
            w.put_feature_row(dataset.features.row(v))?;
        }
        for &l in &dataset.labels {
            w.put_label(l)?;
        }
        for &v in &train {
            w.put_train_id(v)?;
        }
        for &v in &val {
            w.put_val_id(v)?;
        }
        for &v in &test {
            w.put_test_id(v)?;
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::DatasetKind;

    fn tmp(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("soup-graph-mmap-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d.join(name)
    }

    #[test]
    fn roundtrip_is_bitwise() {
        let d = DatasetKind::Flickr.generate_scaled(7, 0.02);
        let path = tmp("roundtrip.gmm");
        save_mmap_dataset(&d, &path).unwrap();
        let m = MmapDataset::open(&path).unwrap();
        m.validate().unwrap();
        assert_eq!(m.num_nodes(), d.num_nodes());
        assert_eq!(m.num_directed_edges(), d.graph.num_directed_edges());
        let back = m.load().unwrap();
        assert_eq!(back.graph.indptr(), d.graph.indptr());
        assert_eq!(back.graph.indices(), d.graph.indices());
        // Feature bytes preserved exactly (bitwise, not approximately).
        assert_eq!(back.features.data(), d.features.data());
        assert_eq!(back.labels, d.labels);
        assert_eq!(back.num_classes, d.num_classes);
        // Splits are sorted by the format; compare as sets.
        let sorted = |mut v: Vec<usize>| {
            v.sort_unstable();
            v
        };
        assert_eq!(sorted(d.splits.train.clone()), back.splits.train);
        assert_eq!(sorted(d.splits.val.clone()), back.splits.val);
        assert_eq!(sorted(d.splits.test.clone()), back.splits.test);
    }

    #[test]
    fn truncated_file_is_rejected() {
        let d = DatasetKind::Flickr.generate_scaled(8, 0.02);
        let path = tmp("trunc.gmm");
        save_mmap_dataset(&d, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 16]).unwrap();
        let err = MmapDataset::open(&path).unwrap_err();
        assert_eq!(err.kind(), "corrupt");
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn corrupt_header_is_rejected() {
        let d = DatasetKind::Flickr.generate_scaled(9, 0.02);
        let path = tmp("hdr.gmm");
        save_mmap_dataset(&d, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[20] ^= 0xff; // flip a bit in the node count
        std::fs::write(&path, bytes).unwrap();
        let err = MmapDataset::open(&path).unwrap_err();
        assert_eq!(err.kind(), "corrupt");
        assert!(err.to_string().contains("crc"), "{err}");
    }

    #[test]
    fn corrupt_indices_fail_validate() {
        let d = DatasetKind::Flickr.generate_scaled(10, 0.02);
        let path = tmp("idx.gmm");
        save_mmap_dataset(&d, &path).unwrap();
        let m = MmapDataset::open(&path).unwrap();
        let off = m.layout.off_indices;
        drop(m);
        let mut bytes = std::fs::read(&path).unwrap();
        // Out-of-range column index.
        bytes[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&path, bytes).unwrap();
        let m = MmapDataset::open(&path).unwrap();
        let err = m.validate().unwrap_err();
        assert_eq!(err.kind(), "corrupt");
    }

    #[test]
    fn neighbor_and_feature_views_match_memory() {
        let d = DatasetKind::OgbnArxiv.generate_scaled(11, 0.01);
        let path = tmp("views.gmm");
        save_mmap_dataset(&d, &path).unwrap();
        let m = MmapDataset::open(&path).unwrap();
        for v in (0..d.num_nodes()).step_by(17) {
            assert_eq!(m.neighbors(v), d.graph.neighbors(v));
            assert_eq!(m.feature_row(v), d.features.row(v));
        }
        let nodes: Vec<usize> = (0..d.num_nodes()).step_by(13).collect();
        let g = m.gather_features(&nodes);
        for (i, &v) in nodes.iter().enumerate() {
            assert_eq!(g.row(i), d.features.row(v));
        }
    }
}
