//! Offline shim for `serde`.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. This shim keeps the workspace's serde surface compiling and
//! working by routing everything through an owned JSON-like [`Value`] tree
//! (the miniserde design): `Serialize` renders into a `Value`,
//! `Deserialize` reconstructs from one, and `serde_json` (its own shim)
//! does text parsing/printing of `Value`s.
//!
//! Supported surface — exactly what the workspace uses:
//! - `#[derive(Serialize, Deserialize)]` on named-field structs and
//!   unit-variant enums (via the `serde_derive` shim);
//! - hand-written impls against `Serializer`/`Deserializer` with
//!   `de::Error::custom` (see `soup_tensor::Tensor`);
//! - primitives, strings, `Vec<T>`, slices, `Option<T>` and tuples.
//!
//! Integers are preserved exactly (`u64`/`i64` payloads do not round-trip
//! through `f64`), which matters for 64-bit training seeds in checkpoint
//! manifests.

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// An exact integer or a float — mirrors `serde_json::Number` so 64-bit
/// seeds survive round-trips.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl Number {
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(v) => Some(v),
            Number::NegInt(v) => u64::try_from(v).ok(),
            Number::Float(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            Number::Float(_) => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            Number::Float(v)
                if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 =>
            {
                Some(v as i64)
            }
            Number::Float(_) => None,
        }
    }
}

/// Owned JSON-like data tree. Object fields keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable kind for error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Look up an object field by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

/// Error produced when converting between `Value` and Rust types.
#[derive(Debug, Clone)]
pub struct ValueError(pub String);

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ValueError {}

pub mod ser {
    /// Error constraint for [`crate::Serializer`] implementations.
    pub trait Error: Sized + std::error::Error {
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }
}

pub mod de {
    /// Error constraint for [`crate::Deserializer`] implementations.
    pub trait Error: Sized + std::error::Error {
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }
}

impl ser::Error for ValueError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}

impl de::Error for ValueError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}

/// Sink a [`Value`] is rendered into. The shim's single method replaces
/// serde's many `serialize_*` entry points: `Serialize` impls build the
/// `Value` themselves and hand it over.
pub trait Serializer: Sized {
    type Ok;
    type Error: ser::Error;
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// Source a [`Value`] is pulled from (the dual of [`Serializer`]).
pub trait Deserializer<'de>: Sized {
    type Error: de::Error;
    fn take_value(self) -> Result<Value, Self::Error>;
}

pub trait Serialize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Serializer that just yields the built `Value`.
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = ValueError;
    fn serialize_value(self, value: Value) -> Result<Value, ValueError> {
        Ok(value)
    }
}

/// Deserializer over an owned `Value`.
pub struct ValueDeserializer {
    pub value: Value,
}

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = ValueError;
    fn take_value(self) -> Result<Value, ValueError> {
        Ok(self.value)
    }
}

/// Render any `Serialize` type into a `Value`. Infallible for the shim's
/// own impls; a custom impl that invokes `Error::custom` during
/// serialization would panic here (none in this workspace does).
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value
        .serialize(ValueSerializer)
        .expect("serialization into Value is infallible")
}

/// Rebuild a `Deserialize` type from an owned `Value`.
pub fn from_value<'de, T: Deserialize<'de>>(value: Value) -> Result<T, ValueError> {
    T::deserialize(ValueDeserializer { value })
}

/// Remove `key` from an object's field list and deserialize it. Used by
/// derived `Deserialize` impls.
pub fn take_field<'de, T: Deserialize<'de>>(
    fields: &mut Vec<(String, Value)>,
    key: &str,
) -> Result<T, ValueError> {
    let idx = fields
        .iter()
        .position(|(k, _)| k == key)
        .ok_or_else(|| ValueError(format!("missing field `{key}`")))?;
    let (_, value) = fields.swap_remove(idx);
    from_value(value).map_err(|e| ValueError(format!("field `{key}`: {e}")))
}

// ---------------------------------------------------------------------------
// Serialize impls for primitives and containers.

macro_rules! serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(Value::Number(Number::PosInt(*self as u64)))
            }
        }
    )*};
}
serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                let v = *self as i64;
                let n = if v >= 0 { Number::PosInt(v as u64) } else { Number::NegInt(v) };
                s.serialize_value(Value::Number(n))
            }
        }
    )*};
}
serialize_int!(i8, i16, i32, i64, isize);

macro_rules! serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(Value::Number(Number::Float(*self as f64)))
            }
        }
    )*};
}
serialize_float!(f32, f64);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Bool(*self))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::String(self.to_string()))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::String(self.clone()))
    }
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Array(self.iter().map(to_value).collect()))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            None => s.serialize_value(Value::Null),
            Some(v) => v.serialize(s),
        }
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(Value::Array(vec![$(to_value(&self.$idx)),+]))
            }
        }
    )*};
}
serialize_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

// ---------------------------------------------------------------------------
// Deserialize impls.

macro_rules! deserialize_uint {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.take_value()?;
                let n = match &v {
                    Value::Number(n) => n.as_u64(),
                    _ => None,
                };
                n.and_then(|n| <$t>::try_from(n).ok()).ok_or_else(|| {
                    de::Error::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), v
                    ))
                })
            }
        }
    )*};
}
deserialize_uint!(u8, u16, u32, u64, usize);

macro_rules! deserialize_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.take_value()?;
                let n = match &v {
                    Value::Number(n) => n.as_i64(),
                    _ => None,
                };
                n.and_then(|n| <$t>::try_from(n).ok()).ok_or_else(|| {
                    de::Error::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), v
                    ))
                })
            }
        }
    )*};
}
deserialize_int!(i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Number(n) => Ok(n.as_f64()),
            // serde_json serializes non-finite floats as null.
            Value::Null => Ok(f64::NAN),
            v => Err(de::Error::custom(format!(
                "expected f64, got {}",
                v.kind_name()
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        f64::deserialize(d).map(|v| v as f32)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Bool(b) => Ok(b),
            v => Err(de::Error::custom(format!(
                "expected bool, got {}",
                v.kind_name()
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::String(s) => Ok(s),
            v => Err(de::Error::custom(format!(
                "expected string, got {}",
                v.kind_name()
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.take_value()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Array(items) => items
                .into_iter()
                .map(|v| from_value(v).map_err(de::Error::custom))
                .collect(),
            v => Err(de::Error::custom(format!(
                "expected array, got {}",
                v.kind_name()
            ))),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Null => Ok(None),
            v => from_value(v).map(Some).map_err(de::Error::custom),
        }
    }
}

macro_rules! deserialize_tuple {
    ($(($len:literal; $($name:ident),+))*) => {$(
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<__D: Deserializer<'de>>(d: __D) -> Result<Self, __D::Error> {
                let v = d.take_value()?;
                let items = match v {
                    Value::Array(items) if items.len() == $len => items,
                    Value::Array(items) => {
                        return Err(de::Error::custom(format!(
                            "expected array of {}, got {} elements", $len, items.len()
                        )))
                    }
                    v => {
                        return Err(de::Error::custom(format!(
                            "expected array of {}, got {}", $len, v.kind_name()
                        )))
                    }
                };
                let mut it = items.into_iter();
                Ok(($(
                    from_value::<$name>(it.next().expect("length checked"))
                        .map_err(de::Error::custom)?,
                )+))
            }
        }
    )*};
}
deserialize_tuple! {
    (1; A)
    (2; A, B)
    (3; A, B, C)
    (4; A, B, C, D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrip() {
        let v = to_value(&42u64);
        assert_eq!(from_value::<u64>(v).unwrap(), 42);
        let v = to_value(&-7i32);
        assert_eq!(from_value::<i32>(v).unwrap(), -7);
        let v = to_value(&1.5f32);
        assert_eq!(from_value::<f32>(v).unwrap(), 1.5);
    }

    #[test]
    fn u64_seeds_are_exact() {
        let seed = u64::MAX - 12345;
        let v = to_value(&seed);
        assert_eq!(from_value::<u64>(v).unwrap(), seed);
    }

    #[test]
    fn tuples_and_vecs() {
        let v = to_value(&(1usize, 2usize, vec![1.0f32, 2.0]));
        let (a, b, data): (usize, usize, Vec<f32>) = from_value(v).unwrap();
        assert_eq!((a, b), (1, 2));
        assert_eq!(data, vec![1.0, 2.0]);
    }

    #[test]
    fn wrong_shapes_error() {
        assert!(from_value::<u32>(Value::String("x".into())).is_err());
        assert!(from_value::<(u32, u32)>(Value::Array(vec![Value::Null])).is_err());
        assert!(from_value::<Vec<u32>>(Value::Bool(true)).is_err());
    }

    #[test]
    fn option_null_roundtrip() {
        assert_eq!(
            from_value::<Option<u32>>(to_value(&None::<u32>)).unwrap(),
            None
        );
        assert_eq!(
            from_value::<Option<u32>>(to_value(&Some(3u32))).unwrap(),
            Some(3)
        );
    }
}
