//! Autograd stress tests: randomly composed expression DAGs are checked
//! against central finite differences. This complements the per-op
//! gradchecks by exercising *interactions*: shared subexpressions
//! (gradient accumulation), mixed constant/parameter paths (pruning), and
//! deep op chains.

use proptest::prelude::*;
use soup_tensor::tape::{gradcheck, Tape, Var};
use soup_tensor::{SplitMix64, Tensor};

/// Ops that preserve an `(n, n)` square shape so composition is closed.
#[derive(Debug, Clone, Copy)]
enum SquareOp {
    Add,
    Mul,
    MatMul,
    Sub,
    Relu,
    Tanh,
    Sigmoid,
    Scale,
    LogSoftmax,
}

const OPS: [SquareOp; 9] = [
    SquareOp::Add,
    SquareOp::Mul,
    SquareOp::MatMul,
    SquareOp::Sub,
    SquareOp::Relu,
    SquareOp::Tanh,
    SquareOp::Sigmoid,
    SquareOp::Scale,
    SquareOp::LogSoftmax,
];

/// Build a random DAG over `leaves`, returning the final scalar.
fn random_dag(tape: &Tape, leaves: &[Var], ops: &[u8], rng_seed: u64) -> Var {
    let mut rng = SplitMix64::new(rng_seed);
    let mut pool: Vec<Var> = leaves.to_vec();
    for &code in ops {
        let op = OPS[code as usize % OPS.len()];
        let a = pool[rng.next_below(pool.len())];
        let b = pool[rng.next_below(pool.len())];
        let out = match op {
            SquareOp::Add => tape.add(a, b),
            SquareOp::Mul => tape.mul(a, b),
            SquareOp::MatMul => tape.matmul(a, b),
            SquareOp::Sub => tape.sub(a, b),
            SquareOp::Relu => tape.relu(a),
            SquareOp::Tanh => tape.tanh(a),
            SquareOp::Sigmoid => tape.sigmoid(a),
            SquareOp::Scale => tape.scale(a, 0.5),
            SquareOp::LogSoftmax => tape.log_softmax(a),
        };
        pool.push(out);
    }
    // Reduce everything to a scalar through a product with a fixed probe so
    // the reduction is not permutation-symmetric.
    let last = *pool.last().unwrap();
    tape.mean(tape.tanh(last))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_dags_pass_gradcheck(
        seed in 0u64..10_000,
        ops in proptest::collection::vec(0u8..9, 1..8),
        n in 2usize..4,
    ) {
        let mut rng = SplitMix64::new(seed);
        // Two parameters, one constant leaf.
        let p1 = Tensor::randn(n, n, 0.5, &mut rng);
        let p2 = Tensor::randn(n, n, 0.5, &mut rng);
        // Keep values off the ReLU kink for finite differences.
        let nudge = |t: Tensor| t.map(|x| if x.abs() < 0.1 { x + 0.25 } else { x });
        let p1 = nudge(p1);
        let p2 = nudge(p2);
        let c = Tensor::randn(n, n, 0.5, &mut rng);
        let result = gradcheck(
            &|tape, vars| {
                let cv = tape.constant(c.clone());
                random_dag(tape, &[vars[0], vars[1], cv], &ops, seed)
            },
            &[p1, p2],
            1e-2,
            6e-2,
        );
        prop_assert!(result.is_ok(), "{:?}", result.err());
    }
}

#[test]
fn shared_subexpression_accumulates() {
    // y = (x*x) + (x*x) reuses the same node: dy/dx must be 4x.
    let tape = Tape::new();
    let x = tape.param(Tensor::scalar(3.0));
    let sq = tape.mul(x, x);
    let y = tape.add(sq, sq);
    let g = tape.backward(y);
    assert_eq!(g.get(x).unwrap().item(), 12.0);
}

#[test]
fn diamond_dag_gradient() {
    // y = relu(x) * sigmoid(x): two paths from x merge.
    let mut rng = SplitMix64::new(5);
    let x = Tensor::randn(3, 3, 1.0, &mut rng).map(|v| if v.abs() < 0.1 { v + 0.3 } else { v });
    gradcheck(
        &|t, v| {
            let a = t.relu(v[0]);
            let b = t.sigmoid(v[0]);
            t.sum(t.mul(a, b))
        },
        &[x],
        1e-2,
        3e-2,
    )
    .unwrap();
}

#[test]
fn deep_chain_stays_finite() {
    // 60 chained tanh+matmul ops: gradients must not blow up or NaN.
    let tape = Tape::new();
    let mut rng = SplitMix64::new(6);
    let w = tape.param(Tensor::randn(8, 8, 0.3, &mut rng));
    let mut h = tape.constant(Tensor::randn(8, 8, 1.0, &mut rng));
    for _ in 0..60 {
        h = tape.tanh(tape.matmul(h, w));
    }
    let loss = tape.mean(h);
    let g = tape.backward(loss);
    let gw = g.get(w).unwrap();
    assert!(
        gw.data().iter().all(|v| v.is_finite()),
        "non-finite gradient"
    );
}

#[test]
fn mixed_constant_param_pruning_consistency() {
    // The value of the loss must be identical whether the "frozen" side is
    // a constant or a param; and constants must receive no gradient.
    let mut rng = SplitMix64::new(7);
    let a = Tensor::randn(4, 4, 1.0, &mut rng);
    let b = Tensor::randn(4, 4, 1.0, &mut rng);

    let tape1 = Tape::new();
    let pa1 = tape1.param(a.clone());
    let cb1 = tape1.constant(b.clone());
    let y1 = tape1.sum(tape1.matmul(pa1, cb1));

    let tape2 = Tape::new();
    let pa2 = tape2.param(a.clone());
    let pb2 = tape2.param(b.clone());
    let y2 = tape2.sum(tape2.matmul(pa2, pb2));

    assert_eq!(tape1.value(y1).item(), tape2.value(y2).item());
    let g1 = tape1.backward(y1);
    let g2 = tape2.backward(y2);
    assert!(g1.get(cb1).is_none());
    assert!(g1.get(pa1).unwrap().allclose(g2.get(pa2).unwrap(), 1e-6));
    assert!(g2.get(pb2).is_some());
}

#[test]
fn gradients_match_across_tape_reuse_patterns() {
    // Rebuilding the same computation on a fresh tape gives identical
    // gradients (the define-by-run contract LS training relies on).
    let mut rng = SplitMix64::new(8);
    let w = Tensor::randn(5, 5, 1.0, &mut rng);
    let x = Tensor::randn(5, 5, 1.0, &mut rng);
    let run = || {
        let tape = Tape::new();
        let wv = tape.param(w.clone());
        let xv = tape.constant(x.clone());
        let y = tape.mean(tape.relu(tape.matmul(xv, wv)));
        let g = tape.backward(y);
        g.get(wv).unwrap().clone()
    };
    assert_eq!(run(), run());
}
