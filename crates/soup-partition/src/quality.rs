//! Partition quality metrics: edge cut, balance and halo size.
//!
//! The halo metrics quantify what sharded Phase-1 actually pays for a
//! partitioning: every shard must obtain the features of the out-of-shard
//! neighbors of its owned nodes ("halo" nodes, DGL terminology), so the
//! halo fraction is both the communication volume of the UDS feature
//! exchange and the extra resident pages of the shared-mmap fast path
//! (DESIGN.md §12).

use crate::coarsen::WGraph;
use soup_graph::{CsrGraph, NeighborAccess};

/// Total weight of edges crossing partition boundaries (each undirected
/// edge counted once) on a weighted working graph.
pub fn edge_cut_wgraph(g: &WGraph, assignment: &[u32]) -> f64 {
    let mut cut = 0.0f64;
    for v in 0..g.num_nodes() {
        for (u, w) in g.neighbors(v) {
            if assignment[v] != assignment[u as usize] {
                cut += w as f64;
            }
        }
    }
    cut / 2.0
}

/// Number of edges crossing partition boundaries on a [`CsrGraph`].
pub fn edge_cut(g: &CsrGraph, assignment: &[u32]) -> usize {
    edge_cut_on(g, assignment)
}

/// [`edge_cut`] over any adjacency source, including out-of-core
/// [`soup_graph::mmap::MmapDataset`] graphs.
pub fn edge_cut_on<G: NeighborAccess>(g: &G, assignment: &[u32]) -> usize {
    assert_eq!(assignment.len(), g.num_nodes());
    let mut cut = 0usize;
    for v in 0..g.num_nodes() {
        for &u in g.neighbors(v) {
            if assignment[v] != assignment[u as usize] {
                cut += 1;
            }
        }
    }
    cut / 2
}

/// Per-partition halo sizes: `halo[p]` is the number of *distinct* nodes
/// outside partition `p` that are adjacent to a node inside it — exactly
/// the feature rows shard `p` must fetch from other shards.
pub fn halo_counts<G: NeighborAccess>(g: &G, assignment: &[u32], k: usize) -> Vec<usize> {
    let n = g.num_nodes();
    assert_eq!(assignment.len(), n);
    let words = n.div_ceil(64);
    // One bitset per partition: k * n/8 bytes, small next to the graph.
    let mut bits = vec![vec![0u64; words]; k];
    for v in 0..n {
        let pv = assignment[v] as usize;
        for &u in g.neighbors(v) {
            let u = u as usize;
            if assignment[u] as usize != pv {
                bits[pv][u / 64] |= 1 << (u % 64);
            }
        }
    }
    bits.iter()
        .map(|b| b.iter().map(|w| w.count_ones() as usize).sum())
        .collect()
}

/// Total halo volume as a fraction of the node count: `Σ_p |halo(p)| / n`.
/// 0 means no shard needs any remote feature; values near `k-1` mean every
/// node is in every other shard's halo (a partitioning that shards nothing).
pub fn halo_fraction<G: NeighborAccess>(g: &G, assignment: &[u32], k: usize) -> f64 {
    let n = g.num_nodes();
    if n == 0 {
        return 0.0;
    }
    let total: usize = halo_counts(g, assignment, k).iter().sum();
    total as f64 / n as f64
}

/// Maximum partition weight divided by the ideal (total/k): 1.0 is perfect
/// balance; METIS-style constraints allow e.g. ≤ 1.05.
pub fn balance_ratio(vweights: &[f32], assignment: &[u32], k: usize) -> f64 {
    assert_eq!(vweights.len(), assignment.len());
    let mut loads = vec![0.0f64; k];
    for (v, &p) in assignment.iter().enumerate() {
        loads[p as usize] += vweights[v] as f64;
    }
    let total: f64 = loads.iter().sum();
    if total == 0.0 {
        return 1.0;
    }
    let ideal = total / k as f64;
    loads.iter().cloned().fold(0.0f64, f64::max) / ideal
}

/// Per-partition counts of the nodes listed in `subset` (e.g. validation
/// nodes) — used to verify the §III-C validation-balancing requirement.
pub fn subset_counts(assignment: &[u32], subset: &[usize], k: usize) -> Vec<usize> {
    let mut counts = vec![0usize; k];
    for &v in subset {
        counts[assignment[v] as usize] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_cut_counts_crossings() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(edge_cut(&g, &[0, 0, 1, 1]), 1);
        assert_eq!(edge_cut(&g, &[0, 1, 0, 1]), 3);
        assert_eq!(edge_cut(&g, &[0, 0, 0, 0]), 0);
    }

    #[test]
    fn balance_ratio_perfect_and_skewed() {
        let w = vec![1.0f32; 4];
        assert_eq!(balance_ratio(&w, &[0, 0, 1, 1], 2), 1.0);
        assert_eq!(balance_ratio(&w, &[0, 0, 0, 1], 2), 1.5);
        assert_eq!(balance_ratio(&w, &[0, 0, 0, 0], 2), 2.0);
    }

    #[test]
    fn balance_uses_vertex_weights() {
        let w = vec![3.0f32, 1.0, 1.0, 1.0];
        // Part 0: {0} weight 3; part 1: {1,2,3} weight 3 -> perfectly even.
        assert_eq!(balance_ratio(&w, &[0, 1, 1, 1], 2), 1.0);
    }

    #[test]
    fn halo_counts_distinct_out_of_part_neighbors() {
        // Path 0-1-2-3 split {0,1} | {2,3}: part 0's halo is {2}, part 1's
        // halo is {1}.
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(halo_counts(&g, &[0, 0, 1, 1], 2), vec![1, 1]);
        // Star around 0: every leaf in part 1 sees only {0} as halo, part 0
        // sees all three leaves.
        let star = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(halo_counts(&star, &[0, 1, 1, 1], 2), vec![3, 1]);
        assert!((halo_fraction(&star, &[0, 1, 1, 1], 2) - 1.0).abs() < 1e-12);
        // No cut, no halo.
        assert_eq!(halo_counts(&g, &[0, 0, 0, 0], 1), vec![0]);
    }

    #[test]
    fn subset_counts_works() {
        let assignment = vec![0u32, 1, 0, 1, 0];
        let counts = subset_counts(&assignment, &[0, 1, 4], 2);
        assert_eq!(counts, vec![2, 1]);
    }
}
