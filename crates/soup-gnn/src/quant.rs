//! Post-soup weight quantization for inference.
//!
//! Souping produces one frozen [`ParamSet`]; serving it is pure inference.
//! This module quantizes the large weight matrices of that set **once**
//! (int8 with per-output-column scales, or bf16) and runs an eval-mode
//! forward pass through [`soup_tensor::quant::qmatmul`]'s int8×f32 kernel.
//! Activations, biases and attention vectors stay f32 — they are tiny next
//! to the weights and keeping them full-precision bounds the accuracy cost.
//!
//! [`forward_quant`] mirrors [`crate::model::forward_cached`]'s eval-mode
//! structure exactly (aggregate-first first hop for GCN/SAGE/GIN, ReLU/ELU
//! activations, GIN row normalisation), differing only in the weight
//! matmuls; the quantized-accuracy gate (≤ 0.5 pp vs f32 on the standard
//! preset) lives in the workspace `quant_accuracy` integration test and the
//! `soupctl soup --quant-check` smoke.

use crate::cache::PropCache;
use crate::config::{Arch, ModelConfig};
use crate::model::PropOps;
use crate::params::ParamSet;
use soup_graph::metrics::accuracy;
use soup_tensor::quant::{QuantKind, QuantMat};
use soup_tensor::tape::{Tape, Var};
use soup_tensor::Tensor;

/// GIN's fixed ε, matching [`crate::model::forward_cached`]'s call sites.
const GIN_EPSILON: f32 = 0.0;

/// One parameter slot of a quantized layer: either a quantized weight
/// matrix or a tensor kept in f32 (biases, attention vectors).
#[derive(Debug, Clone)]
pub enum QuantSlot {
    Quantized(QuantMat),
    Full(Tensor),
}

/// One layer of a [`QuantParamSet`], slot-for-slot parallel to the source
/// [`crate::params::LayerParams`].
#[derive(Debug, Clone)]
pub struct QuantLayer {
    pub name: String,
    pub slots: Vec<QuantSlot>,
}

/// A souped [`ParamSet`] with its weight matrices quantized for inference.
#[derive(Debug, Clone)]
pub struct QuantParamSet {
    pub layers: Vec<QuantLayer>,
    kind: QuantKind,
    f32_bytes: usize,
}

/// Indices of the slots that hold large weight matrices (the quantization
/// targets) for each architecture. Everything else stays f32.
fn weight_slots(arch: Arch) -> &'static [usize] {
    match arch {
        Arch::Gcn | Arch::Sage | Arch::Gat => &[0],
        Arch::Gin => &[0, 2],
    }
}

impl QuantParamSet {
    /// Quantize the weight matrices of a frozen soup. Called once,
    /// post-soup; the result serves arbitrarily many [`forward_quant`]
    /// calls without re-packing.
    pub fn quantize(cfg: &ModelConfig, params: &ParamSet, kind: QuantKind) -> Self {
        let wslots = weight_slots(cfg.arch);
        let layers = params
            .layers
            .iter()
            .map(|layer| QuantLayer {
                name: layer.name.clone(),
                slots: layer
                    .tensors
                    .iter()
                    .enumerate()
                    .map(|(ti, t)| {
                        if wslots.contains(&ti) {
                            QuantSlot::Quantized(QuantMat::quantize(t, kind))
                        } else {
                            QuantSlot::Full(t.clone())
                        }
                    })
                    .collect(),
            })
            .collect();
        Self {
            layers,
            kind,
            f32_bytes: params.size_bytes(),
        }
    }

    pub fn kind(&self) -> QuantKind {
        self.kind
    }

    /// Bytes held by the quantized set (packed weights + scales + the f32
    /// tensors kept as-is).
    pub fn memory_bytes(&self) -> usize {
        self.layers
            .iter()
            .flat_map(|l| &l.slots)
            .map(|s| match s {
                QuantSlot::Quantized(q) => q.memory_bytes(),
                QuantSlot::Full(t) => t.len() * std::mem::size_of::<f32>(),
            })
            .sum()
    }

    /// Bytes of the f32 set this was quantized from.
    pub fn f32_bytes(&self) -> usize {
        self.f32_bytes
    }

    fn layer(&self, l: usize) -> &QuantLayer {
        &self.layers[l]
    }
}

impl QuantLayer {
    /// The quantized matrix at `slot` (panics if the slot was kept f32 —
    /// slot layouts are fixed per architecture, so that is a logic error).
    fn qmat(&self, slot: usize) -> &QuantMat {
        match &self.slots[slot] {
            QuantSlot::Quantized(q) => q,
            QuantSlot::Full(_) => panic!("slot {slot} of {} is not quantized", self.name),
        }
    }

    /// Register the f32 tensor at `slot` as a tape constant.
    fn full(&self, tape: &Tape, slot: usize) -> Var {
        match &self.slots[slot] {
            QuantSlot::Full(t) => tape.constant(t.clone()),
            QuantSlot::Quantized(_) => panic!("slot {slot} of {} is quantized", self.name),
        }
    }
}

/// Eval-mode forward pass with quantized weight matmuls, producing logits
/// `(n, out_dim)`.
///
/// Structure mirrors [`crate::model::forward_cached`] with
/// `training = false`: no dropout, aggregate-first layer 0 for GCN/SAGE/GIN
/// (from `cache` when provided), ReLU (ELU for GAT) between layers, GIN row
/// normalisation. Inference-only: the tape records constants throughout and
/// is dropped on return.
pub fn forward_quant(
    cfg: &ModelConfig,
    ops: &PropOps,
    cache: Option<&PropCache>,
    qparams: &QuantParamSet,
    features: &Tensor,
) -> Tensor {
    assert_eq!(
        qparams.layers.len(),
        cfg.layers,
        "quantized param layer count mismatch"
    );
    let tape = Tape::new();
    let mut h = tape.constant(features.clone());
    for l in 0..cfg.layers {
        let layer = qparams.layer(l);
        h = if l == 0 && cfg.arch != Arch::Gat {
            quant_first_hop(&tape, cfg, ops, cache, h, layer)
        } else {
            match (ops, cfg.arch) {
                (PropOps::Gcn(adj), Arch::Gcn) => {
                    let hw = tape.matmul_quant(h, layer.qmat(0));
                    let agg = tape.spmm(adj, hw);
                    tape.add_bias(agg, layer.full(&tape, 1))
                }
                (PropOps::Sage(mean), Arch::Sage) => {
                    let agg = tape.spmm(mean, h);
                    sage_preagg_quant(&tape, h, agg, layer)
                }
                (PropOps::Gat(idx), Arch::Gat) => {
                    let heads = cfg.layer_heads(l);
                    let x = tape.matmul_quant(h, layer.qmat(0));
                    let al = tape.block_rowsum(tape.mul_row(x, layer.full(&tape, 1)), heads);
                    let ar = tape.block_rowsum(tape.mul_row(x, layer.full(&tape, 2)), heads);
                    let agg = tape.gat_aggregate(idx, x, al, ar, heads, cfg.negative_slope);
                    tape.add_bias(agg, layer.full(&tape, 3))
                }
                (PropOps::Gin(sum), Arch::Gin) => {
                    let agg = tape.spmm(sum, h);
                    gin_preagg_quant(&tape, h, agg, layer)
                }
                _ => panic!("PropOps does not match architecture {:?}", cfg.arch),
            }
        };
        if l + 1 < cfg.layers {
            h = match cfg.arch {
                Arch::Gat => tape.elu(h, 1.0),
                _ => tape.relu(h),
            };
            if cfg.arch == Arch::Gin {
                h = tape.l2_normalize_rows(h, 1e-8);
            }
        }
    }
    tape.value(h)
}

/// Aggregate-first layer 0 for the cacheable architectures, mirroring
/// `model::eval_first_hop` with quantized weight matmuls.
fn quant_first_hop(
    tape: &Tape,
    cfg: &ModelConfig,
    ops: &PropOps,
    cache: Option<&PropCache>,
    h: Var,
    layer: &QuantLayer,
) -> Var {
    let m = match (ops, cfg.arch) {
        (PropOps::Gcn(m), Arch::Gcn)
        | (PropOps::Sage(m), Arch::Sage)
        | (PropOps::Gin(m), Arch::Gin) => m,
        _ => panic!("PropOps does not match architecture {:?}", cfg.arch),
    };
    let agg = match cache {
        Some(c) => {
            let a = c
                .cached_agg()
                .expect("PropCache built for a cacheable architecture");
            c.record_hit();
            tape.constant(a.clone())
        }
        None => tape.spmm(m, h),
    };
    match cfg.arch {
        Arch::Gcn => {
            let out = tape.matmul_quant(agg, layer.qmat(0));
            tape.add_bias(out, layer.full(tape, 1))
        }
        Arch::Sage => sage_preagg_quant(tape, h, agg, layer),
        Arch::Gin => gin_preagg_quant(tape, h, agg, layer),
        Arch::Gat => unreachable!("GAT never takes the aggregate-first path"),
    }
}

fn sage_preagg_quant(tape: &Tape, h: Var, agg: Var, layer: &QuantLayer) -> Var {
    let cat = tape.concat_cols(h, agg);
    let out = tape.matmul_quant(cat, layer.qmat(0));
    tape.add_bias(out, layer.full(tape, 1))
}

fn gin_preagg_quant(tape: &Tape, h: Var, agg: Var, layer: &QuantLayer) -> Var {
    let self_term = tape.scale(h, 1.0 + GIN_EPSILON);
    let combined = tape.add(self_term, agg);
    let h1 = tape.matmul_quant(combined, layer.qmat(0));
    let hidden = tape.relu(tape.add_bias(h1, layer.full(tape, 1)));
    let h2 = tape.matmul_quant(hidden, layer.qmat(2));
    tape.add_bias(h2, layer.full(tape, 3))
}

/// Argmax class predictions through the quantized forward path.
pub fn predict_quant(
    cfg: &ModelConfig,
    ops: &PropOps,
    cache: Option<&PropCache>,
    qparams: &QuantParamSet,
    features: &Tensor,
) -> Vec<usize> {
    forward_quant(cfg, ops, cache, qparams, features).argmax_rows()
}

/// Class predictions for a subset of nodes through the quantized forward
/// path — the quantized counterpart of
/// [`crate::eval::predict_nodes_cached`].
pub fn predict_nodes_quant(
    cfg: &ModelConfig,
    ops: &PropOps,
    cache: Option<&PropCache>,
    qparams: &QuantParamSet,
    features: &Tensor,
    nodes: &[u32],
) -> Vec<u32> {
    let preds = predict_quant(cfg, ops, cache, qparams, features);
    nodes.iter().map(|&n| preds[n as usize] as u32).collect()
}

/// Accuracy of the quantized forward path over the nodes in `mask`.
pub fn evaluate_accuracy_quant(
    cfg: &ModelConfig,
    ops: &PropOps,
    cache: Option<&PropCache>,
    qparams: &QuantParamSet,
    features: &Tensor,
    labels: &[u32],
    mask: &[usize],
) -> f64 {
    let preds = predict_quant(cfg, ops, cache, qparams, features);
    accuracy(&preds, labels, mask)
}

/// Reference product for tests and diagnostics: dequantize the weights and
/// run the plain f32 GEMM. Any gap between this and the int8 kernel output
/// is kernel error; any gap between this and the original f32 product is
/// rounding error.
pub fn qmatmul_reference(a: &Tensor, q: &QuantMat) -> Tensor {
    a.matmul(&q.dequantize())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{init_params, PropOps};
    use crate::params::ParamVars;
    use soup_graph::CsrGraph;
    use soup_tensor::quant::qmatmul;
    use soup_tensor::SplitMix64;

    fn toy_graph() -> CsrGraph {
        CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)])
    }

    fn cfg_for(arch: Arch) -> ModelConfig {
        match arch {
            Arch::Gcn => ModelConfig::gcn(8, 3),
            Arch::Sage => ModelConfig::sage(8, 3),
            Arch::Gat => ModelConfig::gat(8, 3),
            Arch::Gin => ModelConfig::gin(8, 3),
        }
        .with_hidden(16)
    }

    fn f32_logits(cfg: &ModelConfig, ops: &PropOps, params: &ParamSet, x: &Tensor) -> Tensor {
        let tape = Tape::new();
        let vars = ParamVars::register(&tape, params, false);
        let xv = tape.constant(x.clone());
        let mut rng = SplitMix64::new(0);
        let y = crate::model::forward(&tape, cfg, ops, xv, &vars, false, &mut rng);
        tape.value(y)
    }

    #[test]
    fn bf16_forward_tracks_f32_closely_all_archs() {
        for arch in Arch::ALL {
            let cfg = cfg_for(arch);
            let g = toy_graph();
            let mut rng = SplitMix64::new(3);
            let params = init_params(&cfg, &mut rng);
            let ops = PropOps::prepare(arch, &g);
            let x = Tensor::randn(6, cfg.in_dim, 1.0, &mut rng);
            let full = f32_logits(&cfg, &ops, &params, &x);
            let qp = QuantParamSet::quantize(&cfg, &params, QuantKind::Bf16);
            let quant = forward_quant(&cfg, &ops, None, &qp, &x);
            assert_eq!(full.shape(), quant.shape(), "{arch:?}");
            assert!(
                full.allclose(&quant, 0.05),
                "{arch:?} bf16 logits drifted: max|Δ| {}",
                full.sub(&quant).max_abs()
            );
        }
    }

    #[test]
    fn int8_forward_produces_finite_logits_all_archs() {
        for arch in Arch::ALL {
            let cfg = cfg_for(arch);
            let g = toy_graph();
            let mut rng = SplitMix64::new(4);
            let params = init_params(&cfg, &mut rng);
            let ops = PropOps::prepare(arch, &g);
            let x = Tensor::randn(6, cfg.in_dim, 1.0, &mut rng);
            let qp = QuantParamSet::quantize(&cfg, &params, QuantKind::Int8);
            let y = forward_quant(&cfg, &ops, None, &qp, &x);
            assert_eq!(y.rows(), 6, "{arch:?}");
            assert_eq!(y.cols(), 3, "{arch:?}");
            assert!(y.data().iter().all(|v| v.is_finite()), "{arch:?}");
        }
    }

    #[test]
    fn cached_and_uncached_quant_forward_agree_bitwise() {
        for arch in [Arch::Gcn, Arch::Sage, Arch::Gin] {
            let cfg = cfg_for(arch);
            let g = toy_graph();
            let mut rng = SplitMix64::new(5);
            let params = init_params(&cfg, &mut rng);
            let ops = PropOps::prepare(arch, &g);
            let x = Tensor::randn(6, cfg.in_dim, 1.0, &mut rng);
            let cache = PropCache::new(&ops, &x);
            let qp = QuantParamSet::quantize(&cfg, &params, QuantKind::Int8);
            let plain = forward_quant(&cfg, &ops, None, &qp, &x);
            let cached = forward_quant(&cfg, &ops, Some(&cache), &qp, &x);
            assert_eq!(plain, cached, "{arch:?}");
            assert!(cache.hits() >= 1, "{arch:?} recorded no cache hit");
        }
    }

    #[test]
    fn int8_set_is_much_smaller_than_f32() {
        // Realistic dims: output widths are multiples of the packing panel
        // (QNR = 16) so padding doesn't distort the comparison the way a
        // 3-class toy head would.
        let cfg = ModelConfig::gcn(128, 16).with_hidden(64);
        let mut rng = SplitMix64::new(6);
        let params = init_params(&cfg, &mut rng);
        let qp = QuantParamSet::quantize(&cfg, &params, QuantKind::Int8);
        assert!(
            (qp.memory_bytes() as f64) < 0.5 * qp.f32_bytes() as f64,
            "int8 set {} B not well below f32 {} B",
            qp.memory_bytes(),
            qp.f32_bytes()
        );
        assert_eq!(qp.kind(), QuantKind::Int8);
    }

    #[test]
    fn dequantized_reference_matches_quant_matmul() {
        let mut rng = SplitMix64::new(7);
        let a = Tensor::randn(5, 12, 1.0, &mut rng);
        let w = Tensor::randn(12, 4, 1.0, &mut rng);
        let q = QuantMat::quantize(&w, QuantKind::Int8);
        let via_kernel = qmatmul(&a, &q);
        let via_f32 = qmatmul_reference(&a, &q);
        assert!(via_kernel.allclose(&via_f32, 1e-4));
    }
}
