//! Offline shim for `serde_json`: JSON text ⇄ [`serde::Value`].
//!
//! Implements the entry points the workspace uses — [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`to_value`]/[`from_value`] — over
//! the serde shim's owned `Value` tree. The printer and parser follow
//! serde_json's observable behaviour where it matters here:
//!
//! - integers print exactly (no f64 round-trip; 64-bit seeds survive);
//! - non-finite floats print as `null`;
//! - strings escape control characters, quotes and backslashes;
//! - the parser accepts arbitrary nesting of the JSON data model with
//!   `\uXXXX` escapes (including surrogate pairs).

use serde::{Deserialize, Number, Serialize, Value};
use std::fmt;

pub use serde::{from_value, to_value, Value as JsonValue};

/// Error for both serialization and parsing.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

/// Serialize `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &serde::to_value(value), None, 0);
    Ok(out)
}

/// Serialize `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &serde::to_value(value), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any `Deserialize` type.
pub fn from_str<'de, T: Deserialize<'de>>(s: &'de str) -> Result<T, Error> {
    let value = parse_value(s)?;
    serde::from_value(value).map_err(|e| Error::new(e.to_string()))
}

// ---------------------------------------------------------------------------
// Printer.

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, depth + 1)
        }),
        Value::Object(fields) => write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
            let (k, v) = &fields[i];
            write_string(out, k);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(out, v, indent, depth + 1);
        }),
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_number(out: &mut String, n: &Number) {
    use std::fmt::Write;
    match *n {
        Number::PosInt(v) => write!(out, "{v}").unwrap(),
        Number::NegInt(v) => write!(out, "{v}").unwrap(),
        Number::Float(v) if v.is_finite() => {
            // Rust's shortest-roundtrip float printing; ensure it still
            // looks like a JSON number (Display prints integral floats
            // without a fraction, which JSON happily reparses).
            write!(out, "{v}").unwrap();
        }
        Number::Float(_) => out.push_str("null"),
    }
}

fn write_string(out: &mut String, s: &str) {
    use std::fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32).unwrap(),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser.

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        let end = self.pos + kw.len();
        if self.bytes.get(self.pos..end) == Some(kw.as_bytes()) {
            self.pos = end;
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(b) => Err(self.err(&format!("unexpected character '{}'", b as char))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if !self.eat_keyword("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the raw bytes: step back and take
                    // the full multi-byte character.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().expect("non-empty checked");
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let Some(hex) = self.bytes.get(self.pos..end) else {
            return Err(self.err("truncated \\u escape"));
        };
        let s = std::str::from_utf8(hex).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let n = if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                stripped
                    .parse::<u64>()
                    .ok()
                    .and_then(|_| text.parse::<i64>().ok())
                    .map(Number::NegInt)
            } else {
                text.parse::<u64>().ok().map(Number::PosInt)
            }
        } else {
            None
        };
        let n = match n {
            Some(n) => n,
            None => Number::Float(
                text.parse::<f64>()
                    .map_err(|_| self.err(&format!("invalid number '{text}'")))?,
            ),
        };
        Ok(Value::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
    }

    #[test]
    fn u64_precision_preserved() {
        let seed = 0xDEAD_BEEF_CAFE_F00Du64;
        let json = to_string(&seed).unwrap();
        assert_eq!(from_str::<u64>(&json).unwrap(), seed);
    }

    #[test]
    fn string_escapes() {
        let s = "line\nquote\"back\\slash\ttab\u{1}";
        let json = to_string(&s.to_string()).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn unicode_escape_parsing() {
        assert_eq!(from_str::<String>(r#""Aé""#).unwrap(), "Aé");
        // Surrogate pair for 😀 (U+1F600).
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "😀");
        // Raw UTF-8 passthrough.
        assert_eq!(from_str::<String>("\"héllo 世界\"").unwrap(), "héllo 世界");
    }

    #[test]
    fn nested_structures() {
        let json = r#"{"a": [1, 2.5, null, true], "b": {"c": "d"}}"#;
        let v: Value = from_str(json).unwrap();
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(Value::as_str),
            Some("d")
        );
        let back = to_string(&v).unwrap();
        let v2: Value = from_str(&back).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn pretty_printing_reparses() {
        let v: Value = from_str(r#"{"k": [1, {"n": 2}], "e": [], "o": {}}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Value>(&pretty).unwrap(), v);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }
}
