//! Reductions to scalars.

use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

impl Tape {
    /// Sum of all elements → `(1,1)`.
    pub fn sum(&self, x: Var) -> Var {
        let out = Tensor::scalar(self.value(x).sum());
        self.push_op(
            out,
            vec![x],
            Box::new(|g, parents, _| {
                let s = g.item();
                vec![Some(Tensor::full(parents[0].rows(), parents[0].cols(), s))]
            }),
        )
    }

    /// Mean of all elements → `(1,1)`.
    pub fn mean(&self, x: Var) -> Var {
        let v = self.value(x);
        let n = v.len() as f32;
        let out = Tensor::scalar(v.mean());
        self.push_op(
            out,
            vec![x],
            Box::new(move |g, parents, _| {
                let s = g.item() / n;
                vec![Some(Tensor::full(parents[0].rows(), parents[0].cols(), s))]
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::rng::SplitMix64;
    use crate::tape::{gradcheck, Tape};
    use crate::tensor::Tensor;

    #[test]
    fn sum_grad_is_ones() {
        let tape = Tape::new();
        let x = tape.param(Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let y = tape.sum(x);
        assert_eq!(tape.value(y).item(), 10.0);
        let g = tape.backward(y);
        assert_eq!(g.get(x).unwrap().data(), &[1.0; 4]);
    }

    #[test]
    fn mean_grad_is_uniform() {
        let tape = Tape::new();
        let x = tape.param(Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let y = tape.mean(x);
        assert_eq!(tape.value(y).item(), 2.5);
        let g = tape.backward(y);
        assert_eq!(g.get(x).unwrap().data(), &[0.25; 4]);
    }

    #[test]
    fn mean_gradcheck_composed() {
        let mut rng = SplitMix64::new(1);
        let x = Tensor::randn(3, 3, 1.0, &mut rng);
        gradcheck(&|t, v| t.mean(t.mul(v[0], v[0])), &[x], 1e-2, 2e-2).unwrap();
    }
}
