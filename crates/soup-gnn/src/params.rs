//! Layered parameter sets.
//!
//! A [`ParamSet`] is the unit that souping algorithms manipulate: a list of
//! named layers, each holding the layer's tensors (weight, bias, attention
//! vectors, ...). Learned Souping attaches one interpolation parameter per
//! (ingredient, layer) pair — Eq. 3 mixes *all tensors of a layer* with the
//! same α — so the layer grouping here defines the α granularity.
//!
//! Arithmetic over parameter sets (averaging, pairwise interpolation) backs
//! the Uniform and Greedy-Interpolated baselines.

use serde::{Deserialize, Serialize};
use soup_tensor::tape::{Tape, Var};
use soup_tensor::Tensor;

/// One layer's parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerParams {
    pub name: String,
    pub tensors: Vec<Tensor>,
}

/// All parameters of a model, layer by layer.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct ParamSet {
    pub layers: Vec<LayerParams>,
}

impl ParamSet {
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total scalar parameter count.
    pub fn num_params(&self) -> usize {
        self.layers
            .iter()
            .flat_map(|l| &l.tensors)
            .map(Tensor::len)
            .sum()
    }

    /// Bytes of all parameter tensors (the paper quotes ingredient model
    /// sizes in MB, §IV-B).
    pub fn size_bytes(&self) -> usize {
        self.num_params() * std::mem::size_of::<f32>()
    }

    /// Flat view over all tensors in deterministic (layer, slot) order.
    pub fn flat(&self) -> impl Iterator<Item = &Tensor> {
        self.layers.iter().flat_map(|l| l.tensors.iter())
    }

    /// Structural equality of shapes (same architecture).
    pub fn same_shape(&self, other: &ParamSet) -> bool {
        self.layers.len() == other.layers.len()
            && self.layers.iter().zip(&other.layers).all(|(a, b)| {
                a.tensors.len() == b.tensors.len()
                    && a.tensors
                        .iter()
                        .zip(&b.tensors)
                        .all(|(x, y)| x.shape() == y.shape())
            })
    }

    /// Elementwise average of several parameter sets (Uniform Souping and
    /// the running average in Greedy Souping, Alg. 1).
    pub fn average(sets: &[&ParamSet]) -> ParamSet {
        assert!(!sets.is_empty(), "average of zero parameter sets");
        let first = sets[0];
        for s in sets {
            assert!(first.same_shape(s), "parameter sets differ in shape");
        }
        let scale = 1.0 / sets.len() as f32;
        let layers = first
            .layers
            .iter()
            .enumerate()
            .map(|(li, layer)| LayerParams {
                name: layer.name.clone(),
                tensors: layer
                    .tensors
                    .iter()
                    .enumerate()
                    .map(|(ti, t)| {
                        let mut acc = Tensor::zeros(t.rows(), t.cols());
                        for s in sets {
                            acc.axpy(scale, &s.layers[li].tensors[ti]);
                        }
                        acc
                    })
                    .collect(),
            })
            .collect();
        ParamSet { layers }
    }

    /// Pairwise interpolation `(1-alpha)·self + alpha·other` — the update
    /// GIS searches over (Alg. 2: `interpolate(soup, M_i, α)`).
    pub fn interpolate(&self, other: &ParamSet, alpha: f32) -> ParamSet {
        assert!(
            self.same_shape(other),
            "interpolating mismatched parameter sets"
        );
        let layers = self
            .layers
            .iter()
            .zip(&other.layers)
            .map(|(a, b)| LayerParams {
                name: a.name.clone(),
                tensors: a
                    .tensors
                    .iter()
                    .zip(&b.tensors)
                    .map(|(x, y)| {
                        let mut t = x.scale(1.0 - alpha);
                        t.axpy(alpha, y);
                        t
                    })
                    .collect(),
            })
            .collect();
        ParamSet { layers }
    }

    /// Fused R-way convex blend `Σ αᵢ·setsᵢ` via
    /// [`soup_tensor::ops::soup::blend`] — one pass over each tensor
    /// instead of GIS's chain of pairwise [`Self::interpolate`] calls.
    pub fn blend(coeffs: &[f32], sets: &[&ParamSet]) -> ParamSet {
        assert_eq!(coeffs.len(), sets.len(), "one coefficient per set");
        assert!(!sets.is_empty(), "blend of zero parameter sets");
        let first = sets[0];
        for s in sets {
            assert!(first.same_shape(s), "parameter sets differ in shape");
        }
        let layers = first
            .layers
            .iter()
            .enumerate()
            .map(|(li, layer)| LayerParams {
                name: layer.name.clone(),
                tensors: (0..layer.tensors.len())
                    .map(|ti| {
                        let parts: Vec<&Tensor> =
                            sets.iter().map(|s| &s.layers[li].tensors[ti]).collect();
                        soup_tensor::ops::soup::blend(coeffs, &parts)
                    })
                    .collect(),
            })
            .collect();
        ParamSet { layers }
    }

    /// [`Self::blend`] into an existing same-shaped set, reusing its tensor
    /// buffers when they are not shared (GIS's per-candidate scratch soup).
    pub fn blend_into(dst: &mut ParamSet, coeffs: &[f32], sets: &[&ParamSet]) {
        assert_eq!(coeffs.len(), sets.len(), "one coefficient per set");
        assert!(!sets.is_empty(), "blend of zero parameter sets");
        for s in sets {
            assert!(dst.same_shape(s), "parameter sets differ in shape");
        }
        for li in 0..dst.layers.len() {
            for ti in 0..dst.layers[li].tensors.len() {
                let parts: Vec<&Tensor> = sets.iter().map(|s| &s.layers[li].tensors[ti]).collect();
                soup_tensor::ops::soup::blend_into(&mut dst.layers[li].tensors[ti], coeffs, &parts);
            }
        }
    }

    /// Persist to a JSON file (checkpointing trained ingredients so soup
    /// experiments can be re-run without re-training Phase 1). The write is
    /// atomic and durable (tmp + fsync + rename) so a crash never leaves a
    /// torn file behind.
    pub fn save_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let json = serde_json::to_string(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        soup_store::write_durable(path.as_ref(), json.as_bytes())
            .map_err(|e| std::io::Error::other(e.to_string()))
    }

    /// Load from a JSON file written by [`Self::save_json`].
    pub fn load_json(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// L2 distance between two same-shaped parameter sets (diagnostics:
    /// ingredient diversity).
    pub fn l2_distance(&self, other: &ParamSet) -> f32 {
        assert!(self.same_shape(other), "distance between mismatched sets");
        self.flat()
            .zip(other.flat())
            .map(|(a, b)| a.sub(b).norm_sq())
            .sum::<f32>()
            .sqrt()
    }
}

/// Tape variables for a parameter set, preserving the layer structure.
#[derive(Debug, Clone)]
pub struct ParamVars {
    pub layers: Vec<Vec<Var>>,
}

impl ParamVars {
    /// Register every tensor on `tape` — as trainable parameters when
    /// `trainable`, else as constants (e.g. a frozen soup for evaluation).
    pub fn register(tape: &Tape, params: &ParamSet, trainable: bool) -> Self {
        let layers = params
            .layers
            .iter()
            .map(|l| {
                l.tensors
                    .iter()
                    .map(|t| {
                        if trainable {
                            tape.param(t.clone())
                        } else {
                            tape.constant(t.clone())
                        }
                    })
                    .collect()
            })
            .collect();
        Self { layers }
    }

    /// Flat list of vars in (layer, slot) order — matches `ParamSet::flat`.
    pub fn flat(&self) -> Vec<Var> {
        self.layers.iter().flatten().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soup_tensor::SplitMix64;

    fn small_set(seed: u64) -> ParamSet {
        let mut rng = SplitMix64::new(seed);
        ParamSet {
            layers: vec![
                LayerParams {
                    name: "layer0".into(),
                    tensors: vec![
                        Tensor::randn(3, 4, 1.0, &mut rng),
                        Tensor::randn(1, 4, 1.0, &mut rng),
                    ],
                },
                LayerParams {
                    name: "layer1".into(),
                    tensors: vec![Tensor::randn(4, 2, 1.0, &mut rng)],
                },
            ],
        }
    }

    #[test]
    fn counting() {
        let p = small_set(1);
        assert_eq!(p.num_layers(), 2);
        assert_eq!(p.num_params(), 12 + 4 + 8);
        assert_eq!(p.size_bytes(), 24 * 4);
    }

    #[test]
    fn same_shape_detects_mismatch() {
        let a = small_set(1);
        let b = small_set(2);
        assert!(a.same_shape(&b));
        let mut c = b.clone();
        c.layers[1].tensors[0] = Tensor::zeros(5, 5);
        assert!(!a.same_shape(&c));
    }

    #[test]
    fn average_of_identical_is_identity() {
        let a = small_set(3);
        let avg = ParamSet::average(&[&a, &a, &a]);
        for (x, y) in a.flat().zip(avg.flat()) {
            assert!(x.allclose(y, 1e-6));
        }
    }

    #[test]
    fn average_is_mean() {
        let a = small_set(4);
        let b = small_set(5);
        let avg = ParamSet::average(&[&a, &b]);
        for ((x, y), m) in a.flat().zip(b.flat()).zip(avg.flat()) {
            let expect = x.add(y).scale(0.5);
            assert!(m.allclose(&expect, 1e-6));
        }
    }

    #[test]
    fn interpolation_endpoints() {
        let a = small_set(6);
        let b = small_set(7);
        let at_zero = a.interpolate(&b, 0.0);
        let at_one = a.interpolate(&b, 1.0);
        for (x, y) in a.flat().zip(at_zero.flat()) {
            assert!(x.allclose(y, 1e-6));
        }
        for (x, y) in b.flat().zip(at_one.flat()) {
            assert!(x.allclose(y, 1e-6));
        }
    }

    #[test]
    fn interpolation_midpoint_equals_average() {
        let a = small_set(8);
        let b = small_set(9);
        let mid = a.interpolate(&b, 0.5);
        let avg = ParamSet::average(&[&a, &b]);
        for (x, y) in mid.flat().zip(avg.flat()) {
            assert!(x.allclose(y, 1e-6));
        }
    }

    #[test]
    fn l2_distance_properties() {
        let a = small_set(10);
        let b = small_set(11);
        assert_eq!(a.l2_distance(&a), 0.0);
        assert!(a.l2_distance(&b) > 0.0);
        assert!((a.l2_distance(&b) - b.l2_distance(&a)).abs() < 1e-5);
    }

    #[test]
    fn register_trainable_vs_constant() {
        let p = small_set(12);
        let tape = Tape::new();
        let trainable = ParamVars::register(&tape, &p, true);
        let frozen = ParamVars::register(&tape, &p, false);
        assert!(tape.requires_grad(trainable.layers[0][0]));
        assert!(!tape.requires_grad(frozen.layers[0][0]));
        assert_eq!(trainable.flat().len(), 3);
    }

    #[test]
    fn serde_roundtrip() {
        let p = small_set(13);
        let json = serde_json::to_string(&p).unwrap();
        let back: ParamSet = serde_json::from_str(&json).unwrap();
        assert!(p.same_shape(&back));
        for (a, b) in p.flat().zip(back.flat()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    #[should_panic(expected = "zero parameter sets")]
    fn empty_average_panics() {
        ParamSet::average(&[]);
    }

    #[test]
    fn file_roundtrip() {
        let p = small_set(20);
        let dir = std::env::temp_dir().join("soup_gnn_params_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("params.json");
        p.save_json(&path).unwrap();
        let back = ParamSet::load_json(&path).unwrap();
        assert!(p.same_shape(&back));
        for (a, b) in p.flat().zip(back.flat()) {
            assert_eq!(a, b);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(ParamSet::load_json("/nonexistent/params.json").is_err());
    }

    #[test]
    fn load_corrupt_file_errors() {
        let dir = std::env::temp_dir().join("soup_gnn_params_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.json");
        std::fs::write(&path, "{not json").unwrap();
        assert!(ParamSet::load_json(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn average_commutes(s1 in 0u64..100, s2 in 0u64..100) {
                let a = small_set(s1);
                let b = small_set(s2);
                let ab = ParamSet::average(&[&a, &b]);
                let ba = ParamSet::average(&[&b, &a]);
                for (x, y) in ab.flat().zip(ba.flat()) {
                    prop_assert!(x.allclose(y, 1e-6));
                }
            }

            #[test]
            fn blend_matches_chained_interpolate(
                seed in 0u64..50,
                r in 2usize..=8,
                alphas in proptest::collection::vec(0.05f32..0.95, 7),
            ) {
                // GIS builds its soup by chaining pairwise interpolations;
                // the fused blend must reproduce that chain from the
                // equivalent convex coefficients (ragged shapes: small_set
                // mixes 3×4, 1×4 and 4×2 tensors).
                let sets: Vec<ParamSet> = (0..r).map(|i| small_set(seed + i as u64)).collect();
                let refs: Vec<&ParamSet> = sets.iter().collect();
                let mut coeffs = vec![0.0f32; r];
                coeffs[0] = 1.0;
                let mut chained = sets[0].clone();
                for i in 1..r {
                    let a = alphas[i - 1];
                    chained = chained.interpolate(&sets[i], a);
                    for c in coeffs[..i].iter_mut() {
                        *c *= 1.0 - a;
                    }
                    coeffs[i] = a;
                }
                let blended = ParamSet::blend(&coeffs, &refs);
                for (x, y) in chained.flat().zip(blended.flat()) {
                    prop_assert!(x.allclose(y, 1e-6));
                }
                // blend_into must agree with blend bitwise, and must not
                // corrupt the aliased source (dst shares sets[0]'s Arcs).
                let mut dst = sets[0].clone();
                ParamSet::blend_into(&mut dst, &coeffs, &refs);
                for (x, y) in dst.flat().zip(blended.flat()) {
                    prop_assert!(x == y);
                }
                for (x, y) in sets[0].flat().zip(small_set(seed).flat()) {
                    prop_assert!(x == y);
                }
            }

            #[test]
            fn interpolation_is_convex(s1 in 0u64..50, s2 in 0u64..50, alpha in 0.0f32..1.0) {
                // Every interpolated tensor entry lies between the endpoints.
                let a = small_set(s1);
                let b = small_set(s2);
                let m = a.interpolate(&b, alpha);
                for ((x, y), z) in a.flat().zip(b.flat()).zip(m.flat()) {
                    for i in 0..x.len() {
                        let (lo, hi) = if x.data()[i] <= y.data()[i] {
                            (x.data()[i], y.data()[i])
                        } else {
                            (y.data()[i], x.data()[i])
                        };
                        prop_assert!(z.data()[i] >= lo - 1e-5 && z.data()[i] <= hi + 1e-5);
                    }
                }
            }
        }
    }
}
