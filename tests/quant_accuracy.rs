//! Quantized-inference accuracy gate: train a tiny ingredient pool, soup
//! it, quantize the souped weights, and require the quantized forward path
//! to stay within 0.5 percentage points of f32 test accuracy — the
//! acceptance bound for serving a soup through the int8/bf16 kernels.

use enhanced_soups::gnn::model::PropOps;
use enhanced_soups::gnn::quant::{evaluate_accuracy_quant, QuantParamSet};
use enhanced_soups::gnn::{evaluate_accuracy, Arch};
use enhanced_soups::prelude::*;
use enhanced_soups::tensor::quant::QuantKind;

fn soup_and_check(arch: Arch, seed: u64) {
    let dataset = DatasetKind::Flickr.generate_scaled(seed, 0.5);
    let cfg = match arch {
        Arch::Gcn => ModelConfig::gcn(dataset.num_features(), dataset.num_classes()),
        Arch::Sage => ModelConfig::sage(dataset.num_features(), dataset.num_classes()),
        Arch::Gat => ModelConfig::gat(dataset.num_features(), dataset.num_classes()),
        Arch::Gin => ModelConfig::gin(dataset.num_features(), dataset.num_classes()),
    }
    .with_hidden(16);
    let tc = TrainConfig {
        epochs: 10,
        ..TrainConfig::quick()
    };
    let ingredients = train_ingredients(&dataset, &cfg, &tc, 3, 2, seed);
    let outcome = UniformSouping.soup(&ingredients, &dataset, &cfg, seed);

    let ops = PropOps::prepare(cfg.arch, &dataset.graph);
    // Evaluate over every node, not just the test split: with the scaled
    // synthetic graph a 0.5 pp gate needs enough nodes that a single
    // flipped prediction doesn't exceed it on its own.
    let mask: Vec<usize> = (0..dataset.features.rows()).collect();
    let f32_acc = evaluate_accuracy(
        &cfg,
        &ops,
        &outcome.params,
        &dataset.features,
        &dataset.labels,
        &mask,
    );
    for kind in [QuantKind::Int8, QuantKind::Bf16] {
        let qp = QuantParamSet::quantize(&cfg, &outcome.params, kind);
        let quant_acc = evaluate_accuracy_quant(
            &cfg,
            &ops,
            None,
            &qp,
            &dataset.features,
            &dataset.labels,
            &mask,
        );
        let delta_pp = (f32_acc - quant_acc).abs() * 100.0;
        assert!(
            delta_pp <= 0.5,
            "{arch:?} {kind}: quantized accuracy {:.4} drifted {delta_pp:.3} pp from f32 {:.4}",
            quant_acc,
            f32_acc
        );
        // Quantization must actually shrink the weights it serves.
        assert!(qp.memory_bytes() < qp.f32_bytes(), "{arch:?} {kind}");
    }
}

#[test]
fn quantized_soup_accuracy_within_half_point_gcn() {
    soup_and_check(Arch::Gcn, 11);
}

#[test]
fn quantized_soup_accuracy_within_half_point_sage() {
    soup_and_check(Arch::Sage, 12);
}

#[test]
fn quantized_soup_accuracy_within_half_point_gat() {
    soup_and_check(Arch::Gat, 13);
}

#[test]
fn quantized_soup_accuracy_within_half_point_gin() {
    soup_and_check(Arch::Gin, 14);
}
