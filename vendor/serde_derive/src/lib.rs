//! Offline `#[derive(Serialize, Deserialize)]` for the serde shim.
//!
//! The build environment cannot fetch crates, so this derive is written
//! against `proc_macro` alone — no `syn`/`quote`. It supports exactly the
//! shapes this workspace uses:
//!
//! - structs with named fields (serialized as a JSON object keyed by field
//!   name, field order preserved);
//! - enums whose variants are all unit variants (serialized as the variant
//!   name string).
//!
//! Generics, tuple structs and data-carrying enum variants are rejected
//! with a compile error naming the limitation, so a future change that
//! needs them fails loudly instead of silently misbehaving.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<String> },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Parse the derive input into a struct/enum skeleton (names only — the
/// generated code never needs the field types, inference fills them in).
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut iter = input.into_iter().peekable();
    let kind = loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Attribute: consume the bracket group (and `!` for inner).
                if let Some(TokenTree::Punct(b)) = iter.peek() {
                    if b.as_char() == '!' {
                        iter.next();
                    }
                }
                iter.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break "struct",
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => break "enum",
            Some(other) => return Err(format!("unexpected token `{other}` before item keyword")),
            None => return Err("ran out of tokens before `struct`/`enum`".into()),
        }
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    let body = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err(format!(
                "serde shim derive does not support generic type `{name}`"
            ))
        }
        _ => {
            return Err(format!(
                "serde shim derive supports only brace-bodied structs/enums (`{name}`)"
            ))
        }
    };
    if kind == "struct" {
        Ok(Item::Struct {
            name,
            fields: parse_named_fields(body)?,
        })
    } else {
        Ok(Item::Enum {
            name,
            variants: parse_unit_variants(body)?,
        })
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    'fields: loop {
        // Skip attributes and visibility.
        let name = loop {
            match iter.next() {
                None => break 'fields,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => return Err(format!("unexpected token `{other}` in field list")),
            }
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        fields.push(name);
        // Skip the type: everything up to a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        loop {
            match iter.next() {
                None => break 'fields,
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => break,
                Some(_) => {}
            }
        }
    }
    Ok(fields)
}

fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        match iter.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
            }
            Some(TokenTree::Ident(id)) => {
                let v = id.to_string();
                match iter.peek() {
                    None => {}
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                        iter.next();
                    }
                    _ => {
                        return Err(format!(
                            "serde shim derive supports only unit enum variants \
                             (`{v}` carries data or a discriminant)"
                        ));
                    }
                }
                variants.push(v);
            }
            Some(other) => return Err(format!("unexpected token `{other}` in enum body")),
        }
    }
    Ok(variants)
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    let code = match item {
        Item::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!("fields.push(({f:?}.to_string(), ::serde::to_value(&self.{f})));\n")
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize<S: ::serde::Serializer>(&self, serializer: S) \
                         -> ::core::result::Result<S::Ok, S::Error> {{\n\
                         let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> \
                             = ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::Serializer::serialize_value(serializer, ::serde::Value::Object(fields))\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => {v:?},\n"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize<S: ::serde::Serializer>(&self, serializer: S) \
                         -> ::core::result::Result<S::Ok, S::Error> {{\n\
                         let variant = match self {{ {arms} }};\n\
                         ::serde::Serializer::serialize_value(\
                             serializer, ::serde::Value::String(variant.to_string()))\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    let code = match item {
        Item::Struct { name, fields } => {
            let takes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::take_field(&mut fields, {f:?})\
                             .map_err(|e| <D::Error as ::serde::de::Error>::custom(e))?,\n"
                    )
                })
                .collect();
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                     fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: D) \
                         -> ::core::result::Result<Self, D::Error> {{\n\
                         let value = ::serde::Deserializer::take_value(deserializer)?;\n\
                         let mut fields = match value {{\n\
                             ::serde::Value::Object(fields) => fields,\n\
                             other => return ::core::result::Result::Err(\
                                 <D::Error as ::serde::de::Error>::custom(::std::format!(\n\
                                     \"expected object for struct {name}, got {{}}\", other.kind_name()))),\n\
                         }};\n\
                         ::core::result::Result::Ok({name} {{\n{takes}}})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => ::core::result::Result::Ok({name}::{v}),\n"))
                .collect();
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                     fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: D) \
                         -> ::core::result::Result<Self, D::Error> {{\n\
                         let value = ::serde::Deserializer::take_value(deserializer)?;\n\
                         let s = match value {{\n\
                             ::serde::Value::String(s) => s,\n\
                             other => return ::core::result::Result::Err(\
                                 <D::Error as ::serde::de::Error>::custom(::std::format!(\n\
                                     \"expected variant string for enum {name}, got {{}}\", other.kind_name()))),\n\
                         }};\n\
                         match s.as_str() {{\n\
                             {arms}\
                             other => ::core::result::Result::Err(\
                                 <D::Error as ::serde::de::Error>::custom(::std::format!(\n\
                                     \"unknown {name} variant {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}
