//! Resumable Phase-2 souping: durable optimizer-state checkpoints for the
//! LS/PLS α-optimisation loops.
//!
//! A crash (or a deliberate [`Phase2Persist::stop_after`] kill) between
//! epochs loses nothing: the loop periodically persists a [`Phase2State`]
//! — current raw α tensors, SGD momentum buffers, best-so-far for early
//! stopping, the epoch counter, the watchdog's LR scale, and the *full
//! serialized RNG state* (Weyl counter + cached Box-Muller spare) — as a
//! `soup-ckpt/2` envelope written through the crash-safe [`Store`].
//! Because every stochastic input of an epoch (validation subsampling,
//! PLS partition draws) flows from that RNG and every numeric input is
//! serialized losslessly (the JSON layer prints floats shortest-roundtrip
//! and parses them back bit-exactly), a resumed run replays the remaining
//! epochs **bit-identically**: the kill-at-every-epoch suite in
//! `tests/durability.rs` proves final α and accuracy equal the
//! uninterrupted run from any durable epoch.
//!
//! Resume invariants (checked by [`Phase2State::validate_for`]):
//! - the state was written by the same strategy (`ls` vs `pls`), seed,
//!   epoch schedule, ingredient count and (for PLS) `K`/`R` — anything
//!   else is a foreign checkpoint and a hard [`SoupError::Checkpoint`];
//! - a *corrupt* state file is not fatal: it is reported, counted, and
//!   the run starts fresh (the durable store makes this unreachable short
//!   of external damage);
//! - a state with `next_epoch == total_epochs` marks a finished run, so
//!   resuming it reproduces the final soup without running any epoch.

use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};
use soup_error::SoupError;
use soup_store::{update_journal, Phase2Progress, StorageFaultPlan, Store};
use soup_tensor::Tensor;

type Result<T> = std::result::Result<T, SoupError>;

/// Version tag of the serialized [`Phase2State`] payload.
pub const PHASE2_STATE_VERSION: u32 = 1;

/// How (and whether) a Phase-2 run persists its progress.
#[derive(Debug, Clone)]
pub struct Phase2Persist {
    /// Artifact directory (shared with the Phase-1 checkpoints/manifest).
    pub dir: PathBuf,
    /// Checkpoint cadence: persist after every `every` completed epochs
    /// (a final checkpoint is always written when the loop ends or stops).
    pub every: usize,
    /// Load and continue from an existing state file when present.
    pub resume: bool,
    /// Deterministic simulated kill: checkpoint and stop once this many
    /// epochs (global index, counting skipped PLS draws) have completed.
    /// The souping call then returns `Ok(None)` — the CLI/test analogue of
    /// `kill -9` right after a durable checkpoint.
    pub stop_after: Option<usize>,
    /// Storage faults injected into state/manifest writes (CI chaos).
    pub faults: Option<StorageFaultPlan>,
}

impl Phase2Persist {
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            every: 1,
            resume: false,
            stop_after: None,
            faults: None,
        }
    }

    pub fn every(mut self, every: usize) -> Self {
        self.every = every.max(1);
        self
    }

    pub fn resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    pub fn stop_after(mut self, stop_after: Option<usize>) -> Self {
        self.stop_after = stop_after;
        self
    }

    pub fn faults(mut self, faults: Option<StorageFaultPlan>) -> Self {
        self.faults = faults;
        self
    }

    /// State-file name for a strategy (`phase2_ls.ck` / `phase2_pls.ck`).
    pub fn state_name(strategy: &str) -> String {
        format!("phase2_{strategy}.ck")
    }

    /// State-file path inside an artifact directory.
    pub fn state_path(dir: impl AsRef<Path>, strategy: &str) -> PathBuf {
        dir.as_ref().join(Self::state_name(strategy))
    }
}

/// Everything the LS/PLS loop needs to continue bit-identically from the
/// end of a completed epoch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Phase2State {
    pub version: u32,
    /// `"ls"` or `"pls"`.
    pub strategy: String,
    /// The souping seed the run was started with.
    pub seed: u64,
    /// Configured epoch schedule length (cosine `t_max`).
    pub total_epochs: u64,
    /// Ingredient-pool size the α tensors were shaped for.
    pub num_ingredients: u64,
    /// PLS partition count `K` (0 for LS).
    pub partitions: u64,
    /// PLS per-epoch budget `R` (0 for LS).
    pub budget: u64,
    /// First epoch index that has not run yet.
    pub next_epoch: u64,
    /// Epochs that actually stepped (PLS skips empty draws).
    pub epochs_run: u64,
    /// Forward passes performed so far.
    pub forwards: u64,
    /// RNG Weyl counter at the resume point.
    pub rng_state: u64,
    /// Cached Box-Muller spare at the resume point.
    pub rng_gauss_spare: Option<f32>,
    /// Raw (pre-softmax) per-layer α tensors.
    pub alphas: Vec<Tensor>,
    /// SGD momentum buffers (slot order matches `alphas`).
    pub velocity: Vec<Option<Tensor>>,
    /// Best monitored accuracy so far (LS early stopping).
    pub best_acc: Option<f64>,
    /// α snapshot at the best epoch (LS early stopping).
    pub best_alphas: Option<Vec<Tensor>>,
    /// Epochs since the monitored accuracy last improved.
    pub since_best: u64,
    /// Cumulative learning-rate multiplier applied by the numeric
    /// watchdog (1.0 when it never fired).
    pub lr_scale: f32,
    /// Total watchdog retries so far (telemetry).
    pub nan_retries: u64,
}

/// The immutable identity of one Phase-2 run: everything a state file must
/// agree on before resuming from it is allowed.
#[derive(Debug, Clone, Copy)]
pub struct RunShape {
    /// `"ls"` or `"pls"`.
    pub strategy: &'static str,
    pub seed: u64,
    pub total_epochs: usize,
    pub num_ingredients: usize,
    /// PLS `K` (0 for LS).
    pub partitions: usize,
    /// PLS `R` (0 for LS).
    pub budget: usize,
}

impl RunShape {
    /// Stamp the current loop variables into a serializable [`Phase2State`].
    #[allow(clippy::too_many_arguments)]
    pub fn capture(
        &self,
        next_epoch: usize,
        epochs_run: usize,
        forwards: usize,
        rng: &soup_tensor::SplitMix64,
        alphas: &[Tensor],
        velocity: &[Option<Tensor>],
        best: Option<(f64, &[Tensor])>,
        since_best: usize,
        lr_scale: f32,
        nan_retries: u64,
    ) -> Phase2State {
        let (rng_state, rng_gauss_spare) = rng.snapshot();
        Phase2State {
            version: PHASE2_STATE_VERSION,
            strategy: self.strategy.to_string(),
            seed: self.seed,
            total_epochs: self.total_epochs as u64,
            num_ingredients: self.num_ingredients as u64,
            partitions: self.partitions as u64,
            budget: self.budget as u64,
            next_epoch: next_epoch as u64,
            epochs_run: epochs_run as u64,
            forwards: forwards as u64,
            rng_state,
            rng_gauss_spare,
            alphas: alphas.to_vec(),
            velocity: velocity.to_vec(),
            best_acc: best.map(|(a, _)| a),
            best_alphas: best.map(|(_, raw)| raw.to_vec()),
            since_best: since_best as u64,
            lr_scale,
            nan_retries,
        }
    }
}

impl Phase2State {
    /// Reject a state written by a different run shape. Every mismatch is
    /// a [`SoupError::Checkpoint`]: continuing from it would silently
    /// break the bit-identical-resume guarantee.
    pub fn validate_for(&self, shape: &RunShape) -> Result<()> {
        let RunShape {
            strategy,
            seed,
            total_epochs,
            num_ingredients,
            partitions,
            budget,
        } = *shape;
        let fail = |what: &str, got: &dyn std::fmt::Display, want: &dyn std::fmt::Display| {
            Err(SoupError::checkpoint(format!(
                "phase2 state {what} mismatch: checkpoint has {got}, run expects {want} \
                 (state from a different run?)"
            )))
        };
        if self.version != PHASE2_STATE_VERSION {
            return fail("version", &self.version, &PHASE2_STATE_VERSION);
        }
        if self.strategy != strategy {
            return fail("strategy", &self.strategy, &strategy);
        }
        if self.seed != seed {
            return fail("seed", &self.seed, &seed);
        }
        if self.total_epochs != total_epochs as u64 {
            return fail("total_epochs", &self.total_epochs, &total_epochs);
        }
        if self.num_ingredients != num_ingredients as u64 {
            return fail("num_ingredients", &self.num_ingredients, &num_ingredients);
        }
        if self.partitions != partitions as u64 {
            return fail("partitions", &self.partitions, &partitions);
        }
        if self.budget != budget as u64 {
            return fail("budget", &self.budget, &budget);
        }
        if self.next_epoch > self.total_epochs {
            return Err(SoupError::checkpoint(format!(
                "phase2 state next_epoch {} exceeds total_epochs {}",
                self.next_epoch, self.total_epochs
            )));
        }
        for t in self.alphas.iter().chain(self.best_alphas.iter().flatten()) {
            if !t.data().iter().all(|v| v.is_finite()) {
                return Err(SoupError::corrupt(
                    "phase2 state holds non-finite α parameters".to_string(),
                ));
            }
        }
        Ok(())
    }
}

/// Live persistence handle threaded through one LS/PLS invocation.
/// `Phase2Session::begin(None, ..)` yields an inert session so the loops
/// stay branch-light when persistence is off.
pub struct Phase2Session {
    inner: Option<SessionInner>,
}

struct SessionInner {
    store: Store,
    strategy: &'static str,
    every: usize,
    stop_after: Option<usize>,
    total_epochs: usize,
    resumed: Option<Phase2State>,
}

impl Phase2Session {
    /// Open the store and (on `resume`) load + validate any existing state.
    pub fn begin(persist: Option<&Phase2Persist>, shape: RunShape) -> Result<Self> {
        let Some(p) = persist else {
            return Ok(Self { inner: None });
        };
        let store = Store::open(&p.dir)?.with_faults(p.faults);
        let name = Phase2Persist::state_name(shape.strategy);
        let resumed = if p.resume && store.exists(&name) {
            match store
                .read_envelope(&name)
                .and_then(|payload| decode_state(&payload))
            {
                Ok(state) => {
                    state.validate_for(&shape)?;
                    soup_obs::counter!("soup.phase2.resumed_epochs").add(state.next_epoch);
                    soup_obs::info!(
                        "phase2 resume: {} continuing from epoch {}/{}",
                        shape.strategy,
                        state.next_epoch,
                        shape.total_epochs
                    );
                    Some(state)
                }
                Err(err) if err.kind() == "corrupt" => {
                    soup_obs::counter!("soup.phase2.corrupt_state").inc();
                    soup_obs::warn!("phase2 resume: state file corrupt ({err}); starting fresh");
                    None
                }
                Err(err) => return Err(err),
            }
        } else {
            None
        };
        Ok(Self {
            inner: Some(SessionInner {
                store,
                strategy: shape.strategy,
                every: p.every.max(1),
                stop_after: p.stop_after,
                total_epochs: shape.total_epochs,
                resumed,
            }),
        })
    }

    /// Take the validated state loaded at `begin` (if any) for restoring
    /// loop variables.
    pub fn take_resumed(&mut self) -> Option<Phase2State> {
        self.inner.as_mut().and_then(|s| s.resumed.take())
    }

    /// Called after epoch `next_epoch - 1` finished its bookkeeping.
    /// Persists the state at the configured cadence (and always at the
    /// schedule end or a simulated kill), then reports whether the loop
    /// must stop. `make_state` is only invoked when a checkpoint is due.
    pub fn after_epoch(
        &self,
        next_epoch: usize,
        make_state: impl FnOnce() -> Phase2State,
    ) -> Result<bool> {
        let Some(s) = &self.inner else {
            return Ok(false);
        };
        let stopping = s.stop_after == Some(next_epoch);
        let finished = next_epoch >= s.total_epochs;
        if stopping || finished || next_epoch.is_multiple_of(s.every) {
            self.save(next_epoch, make_state())?;
        }
        Ok(stopping && !finished)
    }

    /// Persist an out-of-cadence state (early stopping marks the run
    /// complete so a later resume reproduces the final soup instantly).
    pub fn save(&self, next_epoch: usize, state: Phase2State) -> Result<()> {
        let Some(s) = &self.inner else {
            return Ok(());
        };
        let payload = encode_state(&state)?;
        s.store
            .write_envelope(&Phase2Persist::state_name(s.strategy), &payload)?;
        soup_obs::counter!("soup.phase2.checkpoints").inc();
        let phase = if next_epoch >= s.total_epochs {
            "phase2-complete"
        } else {
            "phase2"
        };
        update_journal(s.store.root(), phase, |j| {
            j.phase = phase.to_string();
            j.phase2 = Some(Phase2Progress {
                strategy: s.strategy.to_string(),
                next_epoch: next_epoch as u64,
                total_epochs: s.total_epochs as u64,
            });
        })?;
        Ok(())
    }
}

/// Serialize a state to the envelope payload (JSON, floats bit-exact
/// through the workspace's shortest-roundtrip printer).
pub fn encode_state(state: &Phase2State) -> Result<Vec<u8>> {
    serde_json::to_string(state)
        .map(String::into_bytes)
        .map_err(|e| SoupError::parse(format!("serializing phase2 state: {e}")))
}

/// Parse an envelope payload back into a state.
pub fn decode_state(payload: &[u8]) -> Result<Phase2State> {
    let json = std::str::from_utf8(payload)
        .map_err(|_| SoupError::corrupt("phase2 state payload is not UTF-8".to_string()))?;
    serde_json::from_str(json)
        .map_err(|e| SoupError::corrupt(format!("phase2 state is not valid JSON: {e}")))
}

/// Load and validate a phase-2 state file directly (used by `soupctl
/// verify`). Returns `Ok(None)` when the file does not exist.
pub fn load_state(path: impl AsRef<Path>) -> Result<Option<Phase2State>> {
    let path = path.as_ref();
    if !path.exists() {
        return Ok(None);
    }
    let payload = soup_store::read_payload(path)?;
    decode_state(&payload).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use soup_tensor::SplitMix64;

    fn state() -> Phase2State {
        let mut rng = SplitMix64::new(3);
        rng.normal();
        let (rs, spare) = rng.snapshot();
        Phase2State {
            version: PHASE2_STATE_VERSION,
            strategy: "ls".into(),
            seed: 42,
            total_epochs: 30,
            num_ingredients: 4,
            partitions: 0,
            budget: 0,
            next_epoch: 7,
            epochs_run: 7,
            forwards: 14,
            rng_state: rs,
            rng_gauss_spare: spare,
            alphas: vec![Tensor::randn(4, 1, 0.6, &mut rng); 2],
            velocity: vec![Some(Tensor::randn(4, 1, 0.1, &mut rng)), None],
            best_acc: Some(0.53125),
            best_alphas: Some(vec![Tensor::randn(4, 1, 0.6, &mut rng); 2]),
            since_best: 2,
            lr_scale: 0.25,
            nan_retries: 3,
        }
    }

    #[test]
    fn state_round_trips_bit_exactly() {
        let s = state();
        let back = decode_state(&encode_state(&s).unwrap()).unwrap();
        assert_eq!(back.rng_state, s.rng_state);
        assert_eq!(
            back.rng_gauss_spare.map(f32::to_bits),
            s.rng_gauss_spare.map(f32::to_bits)
        );
        assert_eq!(back.alphas, s.alphas);
        assert_eq!(back.velocity, s.velocity);
        assert_eq!(
            back.best_acc.map(f64::to_bits),
            s.best_acc.map(f64::to_bits)
        );
        assert_eq!(back.best_alphas, s.best_alphas);
        assert_eq!(back.lr_scale.to_bits(), s.lr_scale.to_bits());
        assert_eq!(back.next_epoch, 7);
        assert_eq!(back.nan_retries, 3);
    }

    fn shape() -> RunShape {
        RunShape {
            strategy: "ls",
            seed: 42,
            total_epochs: 30,
            num_ingredients: 4,
            partitions: 0,
            budget: 0,
        }
    }

    #[test]
    fn validate_rejects_foreign_states() {
        let s = state();
        s.validate_for(&shape()).unwrap();
        let foreign = [
            RunShape {
                strategy: "pls",
                ..shape()
            },
            RunShape {
                seed: 43,
                ..shape()
            },
            RunShape {
                total_epochs: 31,
                ..shape()
            },
            RunShape {
                num_ingredients: 5,
                ..shape()
            },
            RunShape {
                partitions: 8,
                ..shape()
            },
            RunShape {
                budget: 2,
                ..shape()
            },
        ];
        for sh in foreign {
            assert_eq!(s.validate_for(&sh).unwrap_err().kind(), "checkpoint");
        }
    }

    #[test]
    fn validate_flags_nonfinite_alphas_as_corrupt() {
        let mut s = state();
        s.alphas[0].make_mut()[1] = f32::INFINITY;
        assert_eq!(s.validate_for(&shape()).unwrap_err().kind(), "corrupt");
    }

    #[test]
    fn capture_round_trips_through_validate() {
        let mut rng = SplitMix64::new(9);
        rng.normal();
        let alphas = vec![Tensor::randn(4, 1, 0.5, &mut rng); 3];
        let vel = vec![None, Some(Tensor::randn(4, 1, 0.1, &mut rng)), None];
        let s = shape().capture(
            12,
            11,
            24,
            &rng,
            &alphas,
            &vel,
            Some((0.5, &alphas)),
            1,
            0.5,
            2,
        );
        s.validate_for(&shape()).unwrap();
        let back = decode_state(&encode_state(&s).unwrap()).unwrap();
        assert_eq!(back.alphas, alphas);
        assert_eq!(back.velocity, vel);
        assert_eq!(back.next_epoch, 12);
        let restored = SplitMix64::from_snapshot(back.rng_state, back.rng_gauss_spare);
        assert_eq!(restored.snapshot(), rng.snapshot());
    }

    #[test]
    fn session_cadence_and_stop() {
        let dir = std::env::temp_dir().join(format!("soup-p2-session-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let persist = Phase2Persist::new(&dir).every(3).stop_after(Some(5));
        let session = Phase2Session::begin(Some(&persist), shape()).unwrap();
        let mk = || {
            let mut s = state();
            s.next_epoch = 0; // overwritten per call below for clarity only
            s
        };
        // Epochs 1,2: no checkpoint due. 3: cadence. 5: simulated kill.
        assert!(!session.after_epoch(1, mk).unwrap());
        assert!(!Phase2Persist::state_path(&dir, "ls").exists());
        assert!(!session.after_epoch(3, mk).unwrap());
        assert!(Phase2Persist::state_path(&dir, "ls").exists());
        assert!(session.after_epoch(5, mk).unwrap(), "stop_after must stop");
        // Journal records phase2 progress.
        let j = soup_store::load_journal(&dir).unwrap().unwrap();
        assert_eq!(j.phase, "phase2");
        assert!(j.phase2.is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn inert_session_never_stops_or_writes() {
        let session = Phase2Session::begin(None, shape()).unwrap();
        assert!(!session
            .after_epoch(10, || unreachable!("inert session must not build state"))
            .unwrap());
    }
}
