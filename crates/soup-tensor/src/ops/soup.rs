//! The souping kernel: interpolation-weighted parameter sums.
//!
//! Learned Souping (Alg. 3) builds each soup layer as
//! `W_soup^l = Σ_i α_i^l W_i^l` (Eq. 3) and optimises the α by gradient
//! descent, which needs `∂L/∂α_i^l = ⟨∂L/∂W_soup^l, W_i^l⟩` (Eq. 4).
//! [`Tape::weighted_param_sum`] implements exactly that contraction: the
//! ingredient weights are constants (they were trained in Phase 1 and are
//! frozen), so backward only produces an α-gradient — a length-N vector per
//! layer — making LS's backward dramatically cheaper than retraining.

use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

impl Tape {
    /// `Σ_i alpha[i] · weights[i]` where `alpha` is an `(N, 1)` variable and
    /// `weights` are `N` equally-shaped constant tensors.
    pub fn weighted_param_sum(&self, weights: &[Tensor], alpha: Var) -> Var {
        assert!(
            !weights.is_empty(),
            "weighted_param_sum needs at least one ingredient"
        );
        let av = self.value(alpha);
        assert_eq!(
            av.cols(),
            1,
            "alpha must be a column vector, got {}",
            av.shape()
        );
        assert_eq!(
            av.rows(),
            weights.len(),
            "alpha has {} entries for {} ingredients",
            av.rows(),
            weights.len()
        );
        let shape = weights[0].shape();
        for (i, w) in weights.iter().enumerate() {
            assert_eq!(
                w.shape(),
                shape,
                "ingredient {i} shape {} != {shape}",
                w.shape()
            );
        }
        let mut out = Tensor::zeros(shape.rows, shape.cols);
        for (i, w) in weights.iter().enumerate() {
            out.axpy(av.data()[i], w);
        }
        let weights: Vec<Tensor> = weights.to_vec();
        self.push_op(
            out,
            vec![alpha],
            Box::new(move |g, _, _| {
                let ga: Vec<f32> = weights
                    .iter()
                    .map(|w| g.data().iter().zip(w.data()).map(|(&a, &b)| a * b).sum())
                    .collect();
                vec![Some(Tensor::from_vec(weights.len(), 1, ga))]
            }),
        )
    }

    /// Convenience used by LS/PLS: softmax-normalise raw interpolation
    /// parameters, then mix. Returns the mixed tensor variable.
    pub fn soup_layer(&self, weights: &[Tensor], raw_alpha: Var) -> Var {
        let alpha = self.softmax_vec(raw_alpha);
        self.weighted_param_sum(weights, alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;
    use crate::tape::gradcheck;

    #[test]
    fn forward_is_linear_combination() {
        let w1 = Tensor::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let w2 = Tensor::from_vec(2, 2, vec![0.0, 2.0, 2.0, 0.0]);
        let tape = Tape::new();
        let alpha = tape.param(Tensor::from_vec(2, 1, vec![0.5, 0.25]));
        let y = tape.value(tape.weighted_param_sum(&[w1, w2], alpha));
        assert_eq!(y.data(), &[0.5, 0.5, 0.5, 0.5]);
    }

    #[test]
    fn alpha_gradient_is_inner_product() {
        let w1 = Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let w2 = Tensor::from_vec(1, 3, vec![-1.0, 0.0, 1.0]);
        let tape = Tape::new();
        let alpha = tape.param(Tensor::from_vec(2, 1, vec![1.0, 1.0]));
        let y = tape.weighted_param_sum(&[w1, w2], alpha);
        let loss = tape.sum(y);
        let g = tape.backward(loss);
        // dL/dalpha_i = sum of W_i entries.
        assert_eq!(g.get(alpha).unwrap().data(), &[6.0, 0.0]);
    }

    #[test]
    fn gradcheck_through_softmax_mix() {
        let mut rng = SplitMix64::new(1);
        let weights: Vec<Tensor> = (0..4).map(|_| Tensor::randn(3, 3, 1.0, &mut rng)).collect();
        let raw = Tensor::randn(4, 1, 0.5, &mut rng);
        let probe = Tensor::randn(3, 3, 1.0, &mut rng);
        gradcheck(
            &|t, v| {
                let mixed = t.soup_layer(&weights, v[0]);
                let p = t.constant(probe.clone());
                t.sum(t.mul(mixed, p))
            },
            &[raw],
            1e-2,
            2e-2,
        )
        .unwrap();
    }

    #[test]
    fn uniform_alpha_equals_average() {
        let mut rng = SplitMix64::new(2);
        let weights: Vec<Tensor> = (0..5).map(|_| Tensor::randn(2, 4, 1.0, &mut rng)).collect();
        let tape = Tape::new();
        // Equal raw alphas -> softmax gives 1/5 each.
        let raw = tape.param(Tensor::zeros(5, 1));
        let y = tape.value(tape.soup_layer(&weights, raw));
        let mut avg = Tensor::zeros(2, 4);
        for w in &weights {
            avg.axpy(0.2, w);
        }
        assert!(y.allclose(&avg, 1e-5));
    }

    #[test]
    fn saturated_alpha_selects_single_ingredient() {
        let mut rng = SplitMix64::new(3);
        let weights: Vec<Tensor> = (0..3).map(|_| Tensor::randn(2, 2, 1.0, &mut rng)).collect();
        let tape = Tape::new();
        let raw = tape.param(Tensor::from_vec(3, 1, vec![0.0, 50.0, 0.0]));
        let y = tape.value(tape.soup_layer(&weights, raw));
        assert!(y.allclose(&weights[1], 1e-4));
    }

    #[test]
    #[should_panic(expected = "at least one ingredient")]
    fn empty_ingredients_panic() {
        let tape = Tape::new();
        let alpha = tape.param(Tensor::zeros(0, 1));
        tape.weighted_param_sum(&[], alpha);
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn mismatched_shapes_panic() {
        let tape = Tape::new();
        let alpha = tape.param(Tensor::from_vec(2, 1, vec![0.5, 0.5]));
        tape.weighted_param_sum(&[Tensor::zeros(2, 2), Tensor::zeros(3, 2)], alpha);
    }
}
