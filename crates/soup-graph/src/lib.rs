//! # soup-graph
//!
//! Graph substrate for the *Enhanced Soups for GNNs* reproduction: CSR
//! graph storage, message-passing operator construction (GCN normalisation,
//! mean aggregation, GAT edge indexes), synthetic counterparts of the
//! paper's four benchmark datasets, train/val/test splits, GraphSAGE-style
//! neighbor sampling and the induced-subgraph machinery that Partition
//! Learned Souping builds its epoch subgraphs with (Eq. 5).
//!
//! The paper evaluates on Flickr, ogbn-arxiv, Reddit and ogbn-products;
//! those datasets cannot be redistributed here, so [`DatasetKind`]
//! generates *shape-preserving synthetic counterparts*: degree-corrected
//! stochastic-block-model graphs with the paper's class counts and split
//! ratios, scaled down uniformly (see DESIGN.md §2 for the substitution
//! argument).

pub mod csr;
pub mod datasets;
pub mod io;
pub mod metrics;
pub mod mmap;
pub mod sampling;
pub mod splits;
pub mod stats;
pub mod subgraph;
pub mod synth;

pub use csr::CsrGraph;

/// Read access to an adjacency structure, satisfied both by the in-memory
/// [`CsrGraph`] and the out-of-core [`mmap::MmapDataset`]. Algorithms that
/// must run at paper scale (streaming partitioners, quality metrics, halo
/// discovery) are generic over this so they never force materialisation.
pub trait NeighborAccess {
    fn num_nodes(&self) -> usize;
    /// Sorted neighbor list of `v`.
    fn neighbors(&self, v: usize) -> &[u32];
    /// Directed adjacency entries (2× undirected edges).
    fn num_directed_edges(&self) -> usize;
}

impl NeighborAccess for CsrGraph {
    fn num_nodes(&self) -> usize {
        CsrGraph::num_nodes(self)
    }
    fn neighbors(&self, v: usize) -> &[u32] {
        CsrGraph::neighbors(self, v)
    }
    fn num_directed_edges(&self) -> usize {
        CsrGraph::num_directed_edges(self)
    }
}

impl NeighborAccess for mmap::MmapDataset {
    fn num_nodes(&self) -> usize {
        mmap::MmapDataset::num_nodes(self)
    }
    fn neighbors(&self, v: usize) -> &[u32] {
        mmap::MmapDataset::neighbors(self, v)
    }
    fn num_directed_edges(&self) -> usize {
        mmap::MmapDataset::num_directed_edges(self)
    }
}
pub use datasets::{Dataset, DatasetKind};
pub use mmap::{save_mmap_dataset, write_mmap_dataset, Mmap, MmapDataset, MmapMeta, MmapWriter};
pub use sampling::{NeighborSampler, SampledSubgraph};
pub use splits::Splits;
pub use subgraph::{subset_key, InducedSubgraph};
pub use synth::SbmConfig;
