//! Live time-series telemetry — the `soup-metrics/1` JSONL sampler.
//!
//! [`start`] spawns a background thread that snapshots the registry every
//! `interval` and appends one JSON object per tick, so a long training or
//! souping run can be watched live (`soupctl obs tail`) instead of only
//! summarized at exit. The stream is schema-versioned and validated by
//! [`validate_file`], mirroring the `soup-trace/1` discipline.
//!
//! # Schema (`soup-metrics/1`)
//!
//! | `type`   | required fields                                                |
//! |----------|----------------------------------------------------------------|
//! | `header` | `schema` (= `"soup-metrics/1"`), `pid`, `unix_time_s`, `interval_ms` |
//! | `sample` | `seq`, `ts_us`, `rss_bytes`, `counters`, `gauges`, `histograms`, `spans` |
//! | `footer` | `samples`                                                      |
//!
//! `seq` increments from 0; `ts_us` is microseconds since process start
//! (same clock as `soup-trace/1`, so the two files line up). Each entry in
//! `counters` is `{"total": u64, "delta": u64}` — the running value and the
//! change since the previous tick (`total` of the first sample doubles as
//! its delta), so rates fall out without post-processing. `gauges` are
//! instantaneous values; `histograms` and `spans` are full summary digests
//! per tick. `rss_bytes` is read from `/proc/self/status` (0 where absent).
//! The footer is written on a clean [`SamplerHandle::stop`]; a crashed run
//! simply lacks it, which [`validate_file`] reports via
//! [`Series::complete`] rather than an error.
//!
//! External crates publish into the stream through [`register_probe`]: the
//! sampler runs every probe immediately before each snapshot, so e.g.
//! `soup-tensor` can refresh `tensor.mem.live_bytes`/`pooled`/`peak` gauges
//! without `soup-obs` depending on it.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::time::{Duration, SystemTime};

use parking_lot::Mutex;
use serde::{Number, Value};
use soup_error::{Result, SoupError};

use crate::registry::HistogramSummary;

/// Version tag written into (and required from) every series header.
pub const SCHEMA: &str = "soup-metrics/1";

type Probe = Box<dyn Fn() + Send>;

/// Probes registered by other crates, run before every sample tick.
fn probes() -> &'static Mutex<Vec<Probe>> {
    static PROBES: std::sync::OnceLock<Mutex<Vec<Probe>>> = std::sync::OnceLock::new();
    PROBES.get_or_init(|| Mutex::new(Vec::new()))
}

/// Register a sampler probe: a closure the sampler thread calls immediately
/// before each registry snapshot. Probes should refresh gauges from state
/// the registry cannot see itself (e.g. pool occupancy); they must be cheap
/// and must not block.
pub fn register_probe(probe: impl Fn() + Send + 'static) {
    probes().lock().push(Box::new(probe));
}

/// Run all registered probes (also used by one-shot snapshot paths so
/// end-of-run reports include probe-fed gauges).
pub fn run_probes() {
    for probe in probes().lock().iter() {
        probe();
    }
}

/// Resident set size of this process in bytes, from `/proc/self/status`
/// (`None` on platforms without procfs).
pub fn rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// Peak resident set size of this process in bytes (`VmHWM`, the RSS
/// high-water mark) from `/proc/self/status` — the number `bench_shard`
/// records per process to demonstrate the sharded ≈ R/K memory curve.
/// `None` on platforms without procfs.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// Handle to a running sampler thread. Dropping it stops the thread and
/// finalizes the file; prefer [`SamplerHandle::stop`] to also learn the
/// output path.
pub struct SamplerHandle {
    stop_tx: mpsc::Sender<()>,
    join: Option<std::thread::JoinHandle<PathBuf>>,
}

impl SamplerHandle {
    /// Signal the sampler, wait for the final sample + footer to be
    /// written, and return the series path.
    pub fn stop(mut self) -> Option<PathBuf> {
        let _ = self.stop_tx.send(());
        self.join.take().and_then(|j| j.join().ok())
    }
}

impl Drop for SamplerHandle {
    fn drop(&mut self) {
        let _ = self.stop_tx.send(());
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// Start a background sampler writing `soup-metrics/1` JSONL to `path`
/// every `interval` (clamped to ≥ 1ms). The sampler emits one final sample
/// on stop, so even runs shorter than one interval produce a usable series.
pub fn start(path: impl AsRef<Path>, interval: Duration) -> std::io::Result<SamplerHandle> {
    let path = path.as_ref().to_path_buf();
    let interval = interval.max(Duration::from_millis(1));
    crate::trace::process_start();
    let file = File::create(&path)?;
    let mut writer = BufWriter::new(file);
    let unix_time_s = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let header = Value::Object(vec![
        ("type".into(), Value::String("header".into())),
        ("schema".into(), Value::String(SCHEMA.into())),
        (
            "pid".into(),
            Value::Number(Number::PosInt(std::process::id() as u64)),
        ),
        (
            "unix_time_s".into(),
            Value::Number(Number::PosInt(unix_time_s)),
        ),
        (
            "interval_ms".into(),
            Value::Number(Number::PosInt(interval.as_millis() as u64)),
        ),
    ]);
    writeln!(
        writer,
        "{}",
        serde_json::to_string(&header).expect("header serializes")
    )?;
    let (stop_tx, stop_rx) = mpsc::channel::<()>();
    let join = std::thread::Builder::new()
        .name("soup-metrics-sampler".into())
        .spawn(move || {
            let mut prev_counters: BTreeMap<String, u64> = BTreeMap::new();
            let mut seq = 0u64;
            loop {
                let stopping = !matches!(
                    stop_rx.recv_timeout(interval),
                    Err(RecvTimeoutError::Timeout)
                );
                let line = sample_value(seq, &mut prev_counters);
                if let Ok(line) = serde_json::to_string(&line) {
                    // Telemetry is best-effort; a full disk must not kill
                    // the run being observed.
                    let _ = writeln!(writer, "{line}");
                }
                seq += 1;
                if stopping {
                    break;
                }
            }
            let footer = Value::Object(vec![
                ("type".into(), Value::String("footer".into())),
                ("samples".into(), Value::Number(Number::PosInt(seq))),
            ]);
            if let Ok(line) = serde_json::to_string(&footer) {
                let _ = writeln!(writer, "{line}");
            }
            let _ = writer.flush();
            path
        })?;
    Ok(SamplerHandle {
        stop_tx,
        join: Some(join),
    })
}

/// Build one `sample` record: run probes, snapshot the registry, compute
/// counter deltas against `prev_counters` (updated in place).
fn sample_value(seq: u64, prev_counters: &mut BTreeMap<String, u64>) -> Value {
    run_probes();
    let snap = crate::registry::snapshot();
    let ts_us = crate::trace::since_start_us(std::time::Instant::now());
    let counters: Vec<(String, Value)> = snap
        .counters
        .iter()
        .map(|(name, total)| {
            // saturating: a registry reset mid-run (bench cells) makes the
            // total drop; the delta restarts from the new total.
            let delta = total.saturating_sub(prev_counters.get(name).copied().unwrap_or(0));
            prev_counters.insert(name.clone(), *total);
            (
                name.clone(),
                Value::Object(vec![
                    ("total".into(), Value::Number(Number::PosInt(*total))),
                    ("delta".into(), Value::Number(Number::PosInt(delta))),
                ]),
            )
        })
        .collect();
    let gauges = snap
        .gauges
        .iter()
        .map(|(k, v)| (k.clone(), Value::Number(Number::Float(*v))))
        .collect();
    let digests = |entries: &[(String, HistogramSummary)]| {
        Value::Object(
            entries
                .iter()
                .map(|(k, h)| (k.clone(), h.to_value()))
                .collect(),
        )
    };
    Value::Object(vec![
        ("type".into(), Value::String("sample".into())),
        ("seq".into(), Value::Number(Number::PosInt(seq))),
        ("ts_us".into(), Value::Number(Number::PosInt(ts_us))),
        (
            "rss_bytes".into(),
            Value::Number(Number::PosInt(rss_bytes().unwrap_or(0))),
        ),
        ("counters".into(), Value::Object(counters)),
        ("gauges".into(), Value::Object(gauges)),
        ("histograms".into(), digests(&snap.histograms)),
        ("spans".into(), digests(&snap.spans)),
    ])
}

/// One parsed `sample` record.
#[derive(Debug, Clone)]
pub struct Sample {
    pub seq: u64,
    pub ts_us: u64,
    pub rss_bytes: u64,
    /// `(name, total, delta)` per counter.
    pub counters: Vec<(String, u64, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub histograms: Vec<(String, HistogramSummary)>,
    pub spans: Vec<(String, HistogramSummary)>,
}

impl Sample {
    pub fn counter_total(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, total, _)| *total)
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }
}

/// A parsed, validated `soup-metrics/1` series.
#[derive(Debug, Clone)]
pub struct Series {
    pub interval_ms: u64,
    pub samples: Vec<Sample>,
    /// Whether the footer was present (clean shutdown) — `false` for a
    /// series cut short by a crash or kill.
    pub complete: bool,
}

fn require_u64(obj: &Value, key: &str, line_no: usize) -> Result<u64> {
    obj.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| SoupError::parse(format!("line {line_no}: missing or non-integer `{key}`")))
}

/// Parse and validate a `soup-metrics/1` file.
///
/// Checks the header schema tag, that `seq` increments from 0 and `ts_us`
/// never goes backwards, that every counter entry's `delta` is consistent
/// with the change in its `total` (modulo registry resets, which restart
/// the delta), and that the footer — when present — is the final record
/// with a matching sample count.
pub fn validate_file(path: impl AsRef<Path>) -> Result<Series> {
    let path = path.as_ref();
    let content = std::fs::read_to_string(path).map_err(|e| SoupError::io_at(path, e))?;
    let mut series = Series {
        interval_ms: 0,
        samples: Vec::new(),
        complete: false,
    };
    let mut prev_counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut prev_ts = 0u64;
    for (idx, line) in content.lines().enumerate() {
        let line_no = idx + 1;
        if series.complete {
            return Err(SoupError::parse(format!(
                "line {line_no}: record after `footer`"
            )));
        }
        let record: Value = serde_json::from_str(line)
            .map_err(|e| SoupError::parse(format!("line {line_no}: invalid JSON: {e}")))?;
        let kind = record
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| SoupError::parse(format!("line {line_no}: missing `type`")))?;
        if idx == 0 {
            if kind != "header" {
                return Err(SoupError::parse(format!(
                    "line 1: first record must be `header`, found `{kind}`"
                )));
            }
            let schema = record
                .get("schema")
                .and_then(Value::as_str)
                .unwrap_or_default();
            if schema != SCHEMA {
                return Err(SoupError::parse(format!(
                    "line 1: schema `{schema}` != expected `{SCHEMA}`"
                )));
            }
            require_u64(&record, "pid", line_no)?;
            require_u64(&record, "unix_time_s", line_no)?;
            series.interval_ms = require_u64(&record, "interval_ms", line_no)?;
            continue;
        }
        match kind {
            "header" => {
                return Err(SoupError::parse(format!(
                    "line {line_no}: duplicate `header`"
                )));
            }
            "sample" => {
                let seq = require_u64(&record, "seq", line_no)?;
                if seq != series.samples.len() as u64 {
                    return Err(SoupError::parse(format!(
                        "line {line_no}: seq {seq} != expected {}",
                        series.samples.len()
                    )));
                }
                let ts_us = require_u64(&record, "ts_us", line_no)?;
                if ts_us < prev_ts {
                    return Err(SoupError::parse(format!(
                        "line {line_no}: non-monotonic ts_us {ts_us} < {prev_ts}"
                    )));
                }
                prev_ts = ts_us;
                let rss = require_u64(&record, "rss_bytes", line_no)?;
                let Some(Value::Object(counter_fields)) = record.get("counters") else {
                    return Err(SoupError::parse(format!(
                        "line {line_no}: missing `counters` object"
                    )));
                };
                let mut counters = Vec::with_capacity(counter_fields.len());
                for (name, entry) in counter_fields {
                    let total = require_u64(entry, "total", line_no)?;
                    let delta = require_u64(entry, "delta", line_no)?;
                    let expected =
                        total.saturating_sub(prev_counters.get(name).copied().unwrap_or(0));
                    if delta != expected {
                        return Err(SoupError::parse(format!(
                            "line {line_no}: counter `{name}` delta {delta} != total change {expected}"
                        )));
                    }
                    prev_counters.insert(name.clone(), total);
                    counters.push((name.clone(), total, delta));
                }
                let gauges = match record.get("gauges") {
                    Some(Value::Object(fields)) => fields
                        .iter()
                        .map(|(k, v)| {
                            v.as_f64().map(|v| (k.clone(), v)).ok_or_else(|| {
                                SoupError::parse(format!(
                                    "line {line_no}: gauge `{k}` is not a number"
                                ))
                            })
                        })
                        .collect::<Result<Vec<_>>>()?,
                    _ => {
                        return Err(SoupError::parse(format!(
                            "line {line_no}: missing `gauges` object"
                        )));
                    }
                };
                let digests = |key: &str| -> Result<Vec<(String, HistogramSummary)>> {
                    match record.get(key) {
                        Some(Value::Object(fields)) => fields
                            .iter()
                            .map(|(k, v)| {
                                HistogramSummary::from_value(v)
                                    .map(|h| (k.clone(), h))
                                    .ok_or_else(|| {
                                        SoupError::parse(format!(
                                            "line {line_no}: malformed digest `{key}.{k}`"
                                        ))
                                    })
                            })
                            .collect(),
                        _ => Err(SoupError::parse(format!(
                            "line {line_no}: missing `{key}` object"
                        ))),
                    }
                };
                series.samples.push(Sample {
                    seq,
                    ts_us,
                    rss_bytes: rss,
                    counters,
                    gauges,
                    histograms: digests("histograms")?,
                    spans: digests("spans")?,
                });
            }
            "footer" => {
                let samples = require_u64(&record, "samples", line_no)?;
                if samples != series.samples.len() as u64 {
                    return Err(SoupError::parse(format!(
                        "line {line_no}: footer samples {samples} != seen {}",
                        series.samples.len()
                    )));
                }
                series.complete = true;
            }
            other => {
                return Err(SoupError::parse(format!(
                    "line {line_no}: unknown record type `{other}`"
                )));
            }
        }
    }
    if content.lines().next().is_none() {
        return Err(SoupError::parse("metrics file is empty"));
    }
    Ok(series)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("soup_series_{name}_{}.jsonl", std::process::id()))
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn peak_rss_is_at_least_current_rss() {
        let peak = peak_rss_bytes().expect("procfs available on linux");
        let now = rss_bytes().expect("procfs available on linux");
        assert!(peak >= now, "VmHWM {peak} < VmRSS {now}");
        assert!(peak > 0);
    }

    #[test]
    fn sampler_emits_valid_series_with_counter_deltas() {
        let _serial = crate::test_serial();
        crate::registry::set_enabled(true);
        let path = temp("roundtrip");
        let counter = crate::registry::counter("test.series.ticks");
        let before = counter.get();
        let handle = start(&path, Duration::from_millis(2)).unwrap();
        for _ in 0..10 {
            counter.inc();
            std::thread::sleep(Duration::from_millis(1));
        }
        let finished = handle.stop().expect("sampler returns path");
        assert_eq!(finished, path);

        let series = validate_file(&path).expect("series validates");
        assert!(series.complete, "footer missing");
        assert_eq!(series.interval_ms, 2);
        assert!(!series.samples.is_empty());
        let last = series.samples.last().unwrap();
        assert_eq!(last.counter_total("test.series.ticks"), Some(before + 10));
        // Deltas across the series sum to the final total (first delta
        // includes the pre-existing value).
        let delta_sum: u64 = series
            .samples
            .iter()
            .filter_map(|s| {
                s.counters
                    .iter()
                    .find(|(n, _, _)| n == "test.series.ticks")
                    .map(|(_, _, d)| *d)
            })
            .sum();
        assert_eq!(delta_sum, before + 10);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn probes_feed_gauges_into_samples() {
        let _serial = crate::test_serial();
        crate::registry::set_enabled(true);
        register_probe(|| crate::registry::gauge("test.series.probe").set(42.5));
        let path = temp("probe");
        let handle = start(&path, Duration::from_millis(50)).unwrap();
        // Stop immediately: the final forced sample still runs probes.
        handle.stop();
        let series = validate_file(&path).unwrap();
        assert!(series
            .samples
            .iter()
            .any(|s| s.gauge("test.series.probe") == Some(42.5)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn validate_rejects_corrupt_series() {
        let path = temp("corrupt");
        let header = format!(
            "{{\"type\":\"header\",\"schema\":\"{SCHEMA}\",\"pid\":1,\"unix_time_s\":1,\"interval_ms\":100}}"
        );
        let sample = |seq: u64, total: u64, delta: u64| {
            format!(
                "{{\"type\":\"sample\",\"seq\":{seq},\"ts_us\":{},\"rss_bytes\":0,\
                 \"counters\":{{\"c\":{{\"total\":{total},\"delta\":{delta}}}}},\
                 \"gauges\":{{}},\"histograms\":{{}},\"spans\":{{}}}}",
                seq * 1000
            )
        };

        // Wrong schema tag.
        std::fs::write(
            &path,
            "{\"type\":\"header\",\"schema\":\"soup-metrics/99\",\"pid\":1,\"unix_time_s\":1,\"interval_ms\":1}\n",
        )
        .unwrap();
        assert!(validate_file(&path)
            .unwrap_err()
            .to_string()
            .contains("schema"));

        // Sequence gap.
        std::fs::write(
            &path,
            format!("{header}\n{}\n{}\n", sample(0, 1, 1), sample(2, 2, 1)),
        )
        .unwrap();
        assert!(validate_file(&path)
            .unwrap_err()
            .to_string()
            .contains("seq"));

        // Delta inconsistent with totals.
        std::fs::write(
            &path,
            format!("{header}\n{}\n{}\n", sample(0, 5, 5), sample(1, 8, 1)),
        )
        .unwrap();
        assert!(validate_file(&path)
            .unwrap_err()
            .to_string()
            .contains("delta"));

        // Footer count mismatch.
        std::fs::write(
            &path,
            format!(
                "{header}\n{}\n{{\"type\":\"footer\",\"samples\":7}}\n",
                sample(0, 1, 1)
            ),
        )
        .unwrap();
        assert!(validate_file(&path)
            .unwrap_err()
            .to_string()
            .contains("footer"));

        // Missing footer is not an error, just incomplete.
        std::fs::write(&path, format!("{header}\n{}\n", sample(0, 1, 1))).unwrap();
        let series = validate_file(&path).unwrap();
        assert!(!series.complete);
        assert_eq!(series.samples.len(), 1);

        std::fs::remove_file(&path).ok();
    }
}
