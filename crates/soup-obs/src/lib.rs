//! # soup-obs — observability for the Enhanced Soups pipeline
//!
//! A lightweight, dependency-minimal observability layer shared by every
//! crate in the workspace. Three pieces:
//!
//! 1. **Metrics registry** ([`registry`]) — named atomic [`registry::Counter`]s,
//!    [`registry::Gauge`]s, and log-bucketed [`registry::Histogram`]s. Hot-path
//!    cost when metrics are enabled is a single relaxed atomic RMW; when
//!    disabled via [`set_enabled`]`(false)`, a single relaxed load.
//! 2. **Timing spans** ([`mod@span`]) — RAII guards with thread-local nesting.
//!    Dropping a [`Span`] records its wall time into a per-path histogram and,
//!    if tracing is active, appends a structured event to the trace file.
//! 3. **Trace sink + reporter** ([`trace`], [`report`]) — one JSONL file per
//!    run (schema `soup-trace/1`, one JSON object per line), and a
//!    human-readable end-of-run summary table: span tree with call counts,
//!    total/mean wall time and p50/p95/p99 latencies, plus all counters,
//!    gauges, and histograms.
//!
//! There is also a leveled stderr logger ([`log`]) filtered by the `SOUP_LOG`
//! environment variable (`debug` | `info` | `warn` | `off`; default `info`),
//! used by the bench bins instead of raw `println!` progress prints.
//!
//! ## Quick tour
//!
//! ```
//! // Counters: macro caches the registry lookup in a local static.
//! soup_obs::counter!("demo.calls").inc();
//! soup_obs::counter!("demo.bytes").add(4096);
//!
//! // Spans: RAII; nesting is tracked per thread.
//! {
//!     let _outer = soup_obs::span!("demo.outer");
//!     let _inner = soup_obs::span!("demo.inner"); // recorded as demo.outer/demo.inner
//! }
//!
//! // Structured trace events (no-ops unless `trace::init` was called).
//! soup_obs::trace_event!("demo.tick", "step" => 3_u64, "loss" => 0.25_f64);
//!
//! // Leveled logging (stderr, filtered by SOUP_LOG).
//! soup_obs::info!("finished step {}", 3);
//!
//! assert_eq!(soup_obs::counter!("demo.calls").get(), 1);
//! ```
//!
//! The trace schema is documented on [`trace`] and checked by
//! [`trace::validate_file`], which CI runs against a real `soupctl train`
//! trace.

pub mod attrib;
pub mod diff;
pub mod flame;
pub mod log;
pub mod registry;
pub mod report;
pub mod series;
pub mod span;
pub mod trace;

pub use registry::{enabled, set_enabled, snapshot, snapshot_value, Counter, Gauge, Histogram};
pub use serde::{to_value, Value};
pub use span::Span;

/// Unit tests touching global state (the enabled flag, the registry, the
/// thread-local span stack's trace sink) serialize on this lock.
#[cfg(test)]
pub(crate) fn test_serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Look up (and cache) a named [`Counter`] in the global registry.
///
/// The registry lookup happens once per call site; afterwards the macro
/// expands to a single relaxed atomic load of a local `OnceLock`.
/// For dynamically-named counters (for example per-worker), call
/// [`registry::counter`] directly with a formatted name.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __SOUP_OBS_SLOT: ::std::sync::OnceLock<::std::sync::Arc<$crate::registry::Counter>> =
            ::std::sync::OnceLock::new();
        &**__SOUP_OBS_SLOT.get_or_init(|| $crate::registry::counter($name))
    }};
}

/// Look up (and cache) a named [`Gauge`] in the global registry.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static __SOUP_OBS_SLOT: ::std::sync::OnceLock<::std::sync::Arc<$crate::registry::Gauge>> =
            ::std::sync::OnceLock::new();
        &**__SOUP_OBS_SLOT.get_or_init(|| $crate::registry::gauge($name))
    }};
}

/// Look up (and cache) a named [`Histogram`] in the global registry.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static __SOUP_OBS_SLOT: ::std::sync::OnceLock<
            ::std::sync::Arc<$crate::registry::Histogram>,
        > = ::std::sync::OnceLock::new();
        &**__SOUP_OBS_SLOT.get_or_init(|| $crate::registry::histogram($name))
    }};
}

/// Open a RAII timing [`Span`]; bind it to a local (`let _span = ...`) so it
/// stays alive for the region being timed.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::Span::enter($name)
    };
}

/// Emit a structured trace event with named fields. A no-op unless
/// [`trace::init`] has been called. Field values can be anything
/// serializable (integers, floats, strings, ...).
#[macro_export]
macro_rules! trace_event {
    ($name:expr $(, $key:literal => $value:expr)* $(,)?) => {
        if $crate::trace::active() {
            $crate::trace::emit_event(
                $name,
                vec![$((($key).to_string(), $crate::to_value(&$value))),*],
            );
        }
    };
}

/// Log at debug level (stderr; shown when `SOUP_LOG=debug`).
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Debug, format_args!($($arg)*))
    };
}

/// Log at info level (stderr; shown unless `SOUP_LOG=warn` or `off`).
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Info, format_args!($($arg)*))
    };
}

/// Log at warn level (stderr; shown unless `SOUP_LOG=off`).
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Warn, format_args!($($arg)*))
    };
}
