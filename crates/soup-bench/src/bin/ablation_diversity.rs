//! §V-A / §VIII ablation: ingredient diversity vs strategy ranking.
//!
//! The paper explains US's surprise win on GAT/Reddit by the pool being
//! "uncharacteristically similar (the standard deviation between them was
//! 0.06%)". This experiment measures pool diversity (weight distance,
//! prediction disagreement, val-acc std) on pools of increasing training
//! divergence and reports which strategy wins each regime.
//!
//! Usage: `cargo run --release -p soup-bench --bin ablation_diversity [preset]`

use soup_bench::harness::{model_config, write_csv, ExperimentPreset};
use soup_core::diversity::diversity_report;
use soup_core::strategy::test_accuracy;
use soup_core::{
    GisSouping, Ingredient, LearnedHyper, LearnedSouping, SoupStrategy, UniformSouping,
};
use soup_gnn::model::init_params;
use soup_gnn::{train_single, Arch, TrainConfig};
use soup_graph::DatasetKind;
use soup_tensor::SplitMix64;

fn main() {
    let preset = ExperimentPreset::from_args();
    let dataset = DatasetKind::OgbnArxiv.generate_scaled(42, preset.dataset_scale);
    let cfg = model_config(Arch::Gcn, &dataset);
    let mut rng = SplitMix64::new(42);
    let init = init_params(&cfg, &mut rng);

    println!("ABLATION diversity (ogbn-arxiv/GCN): pool regimes vs strategy ranking\n");
    println!(
        "{:<12} {:>10} {:>12} {:>10} | {:>8} {:>8} {:>8} | {:<8}",
        "regime", "w-dist", "disagree", "acc-std", "US", "GIS", "LS", "winner"
    );
    let mut rows = Vec::new();
    let regimes: &[(&str, Vec<usize>)] = &[
        ("homogeneous", vec![preset.train_epochs]),
        ("mild", vec![preset.train_epochs, preset.train_epochs / 2]),
        ("dispersed", vec![preset.train_epochs, 3]),
    ];
    for (name, epoch_mix) in regimes {
        let n = preset.ingredients.max(6);
        let ingredients: Vec<Ingredient> = (0..n)
            .map(|i| {
                let tc = TrainConfig {
                    epochs: epoch_mix[i % epoch_mix.len()],
                    early_stop_patience: None,
                    ..TrainConfig::quick()
                };
                let tm = train_single(&dataset, &cfg, &tc, &init, 700 + i as u64);
                Ingredient::new(i, tm.params, tm.val_accuracy, 700 + i as u64)
            })
            .collect();
        let report = diversity_report(&ingredients, &dataset, &cfg);
        let hyper = LearnedHyper {
            epochs: preset.learned_epochs,
            ..Default::default()
        };
        let candidates: Vec<(&str, Box<dyn SoupStrategy>)> = vec![
            ("US", Box::new(UniformSouping)),
            ("GIS", Box::new(GisSouping::new(preset.gis_granularity))),
            ("LS", Box::new(LearnedSouping::new(hyper))),
        ];
        let mut scores = Vec::new();
        for (sname, s) in candidates {
            let outcome = s.soup(&ingredients, &dataset, &cfg, 3);
            scores.push((sname, test_accuracy(&outcome, &dataset, &cfg)));
        }
        let winner = scores
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap()
            .0;
        println!(
            "{name:<12} {:>10.3} {:>11.2}% {:>9.3}% | {:>7.2}% {:>7.2}% {:>7.2}% | {winner:<8}",
            report.mean_weight_distance,
            report.mean_disagreement * 100.0,
            report.val_acc_std * 100.0,
            scores[0].1 * 100.0,
            scores[1].1 * 100.0,
            scores[2].1 * 100.0,
        );
        rows.push(format!(
            "{name},{:.4},{:.4},{:.5},{:.4},{:.4},{:.4},{winner}",
            report.mean_weight_distance,
            report.mean_disagreement,
            report.val_acc_std,
            scores[0].1,
            scores[1].1,
            scores[2].1
        ));
    }
    println!("\nExpected shape (§V-A): on homogeneous pools US is competitive (informed");
    println!("strategies overfit the val split); dispersion favours GIS/LS.");
    let _ = write_csv(
        "ablation_diversity",
        "regime,weight_dist,disagreement,acc_std,us,gis,ls,winner",
        &rows,
    )
    .map(|p| soup_obs::info!("wrote {}", p.display()));
    soup_bench::harness::finish_observability();
}
