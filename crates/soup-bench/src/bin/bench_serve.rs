//! Serving-layer bench: closed-loop Zipf-skewed load against a live
//! `soup-serve` server, sweeping client concurrency for the f32 and the
//! int8-quantized forward path.
//!
//! Each arm starts a real TCP server (micro-batching, admission control)
//! and drives it with `run_closed_loop`: every client hammers
//! back-to-back requests whose node ids follow a Zipf(1.0) popularity
//! curve, so batches actually coalesce hot nodes the way production
//! traffic would. Reported per concurrency level: throughput plus the
//! client-observed p50/p99 latency. Machine-readable results go to
//! `BENCH_serve.json` (workspace root), gated by `soup-bench regress`
//! (`*_rps` higher-is-better, `*_us` lower-is-better).
//!
//! Usage:
//! `cargo run -p soup-bench --release --bin bench_serve -- [quick|standard|full]`

use serde::Serialize;
use soup_bench::harness::{finish_observability, ExperimentPreset};
use soup_core::strategy::SoupStrategy;
use soup_core::UniformSouping;
use soup_gnn::ModelConfig;
use soup_gnn::TrainConfig;
use soup_graph::{Dataset, DatasetKind};
use soup_serve::{run_closed_loop, LoadConfig, ServeConfig, Server};
use soup_tensor::quant::QuantKind;
use std::time::Duration;

/// Concurrency sweep — fixed across presets so the sidecar's leaf paths
/// stay stable for the regression gate; presets only scale request count.
const LEVELS: [usize; 3] = [1, 4, 8];

#[derive(Serialize)]
struct ServePoint {
    clients: usize,
    requests: u64,
    served: u64,
    overloaded: u64,
    throughput_rps: f64,
    p50_us: u64,
    p99_us: u64,
    mean_us: f64,
}

/// One forward-path arm across the concurrency sweep. Named fields (not an
/// array) so regress paths read `f32.c4.p99_us` and stay index-free.
#[derive(Serialize)]
struct ArmReport {
    c1: ServePoint,
    c4: ServePoint,
    c8: ServePoint,
}

#[derive(Serialize)]
struct ServeCounters {
    requests: u64,
    batches: u64,
    rejected: u64,
}

#[derive(Serialize)]
struct ServeReport {
    nodes: usize,
    max_batch: usize,
    max_delay_us: u64,
    f32: ArmReport,
    int8: ArmReport,
    /// Registry totals across both arms; requests/batches is the achieved
    /// coalescing factor (informational).
    counters: ServeCounters,
}

fn run_arm(
    dataset: &Dataset,
    cfg: &ModelConfig,
    params: &soup_gnn::ParamSet,
    quant: Option<QuantKind>,
    requests_per_client: usize,
) -> ArmReport {
    let config = ServeConfig {
        port: 0,
        max_batch: 64,
        max_delay: Duration::from_micros(200),
        queue_depth: 256,
        // Connections are persistent, so workers bounds live clients.
        workers: LEVELS[LEVELS.len() - 1] + 2,
        quant,
        ..ServeConfig::default()
    };
    let server = Server::start(dataset.clone(), cfg.clone(), params.clone(), config)
        .expect("bench server failed to bind");
    let addr = server.addr();
    let point = |clients: usize| {
        let load = LoadConfig {
            clients,
            requests_per_client,
            nodes_per_request: 4,
            zipf_s: 1.0,
            seed: 42 + clients as u64,
        };
        let report =
            run_closed_loop(addr, dataset.num_nodes(), &load).expect("bench load generator failed");
        ServePoint {
            clients,
            requests: (clients * requests_per_client) as u64,
            served: report.served,
            overloaded: report.overloaded,
            throughput_rps: report.rps,
            p50_us: report.p50_us,
            p99_us: report.p99_us,
            mean_us: report.mean_us,
        }
    };
    let arm = ArmReport {
        c1: point(LEVELS[0]),
        c4: point(LEVELS[1]),
        c8: point(LEVELS[2]),
    };
    server.stop();
    arm
}

fn counter(name: &str) -> u64 {
    soup_obs::registry::counter(name).get()
}

fn main() {
    let preset = ExperimentPreset::from_args();
    let (requests_per_client, scale) = match preset.name {
        "quick" => (150, 0.12),
        "full" => (1200, 0.35),
        _ => (600, 0.2),
    };
    let _span = soup_obs::span!("bench.serve");

    let dataset = DatasetKind::Flickr.generate_scaled(11, scale);
    let cfg = ModelConfig::gcn(dataset.num_features(), dataset.num_classes()).with_hidden(32);
    // A real (small) soup: the served weights don't affect latency, but the
    // bench should exercise the same artifact the pipeline deploys.
    let tc = TrainConfig {
        epochs: 5,
        ..TrainConfig::quick()
    };
    let ingredients = soup_distrib::train_ingredients(&dataset, &cfg, &tc, 2, 2, 42);
    let outcome = UniformSouping.soup(&ingredients, &dataset, &cfg, 42);

    let f32_arm = run_arm(&dataset, &cfg, &outcome.params, None, requests_per_client);
    let int8_arm = run_arm(
        &dataset,
        &cfg,
        &outcome.params,
        Some(QuantKind::Int8),
        requests_per_client,
    );

    let report = ServeReport {
        nodes: dataset.num_nodes(),
        max_batch: 64,
        max_delay_us: 200,
        f32: f32_arm,
        int8: int8_arm,
        counters: ServeCounters {
            requests: counter("serve.requests"),
            batches: counter("serve.batches"),
            rejected: counter("serve.rejected"),
        },
    };

    let sidecar = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(
        sidecar,
        serde_json::to_string_pretty(&report).unwrap() + "\n",
    )
    .expect("write sidecar");
    println!("wrote {sidecar}:");
    for (name, arm) in [("f32", &report.f32), ("int8", &report.int8)] {
        for p in [&arm.c1, &arm.c4, &arm.c8] {
            println!(
                "  {name:<5} c={:<2} {:>9.0} req/s  p50 {:>7} us  p99 {:>7} us  \
                 ({} served, {} overloaded)",
                p.clients, p.throughput_rps, p.p50_us, p.p99_us, p.served, p.overloaded,
            );
        }
    }
    let c = &report.counters;
    println!(
        "  batching: {} requests in {} batches ({:.1} req/batch), {} rejected",
        c.requests,
        c.batches,
        c.requests as f64 / c.batches.max(1) as f64,
        c.rejected,
    );
    drop(_span);
    finish_observability();
}
