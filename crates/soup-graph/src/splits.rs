//! Train/validation/test node splits.
//!
//! Table I of the paper fixes a split ratio per dataset (e.g. 0.5/0.25/0.25
//! for Flickr, 0.1/0.02/0.88 for ogbn-products). Splits are materialised as
//! explicit index lists because every phase of the pipeline addresses them
//! directly: ingredient training uses `train`, souping optimises on `val`
//! (Alg. 3/4), and the reported numbers are `test` accuracy.

use serde::{Deserialize, Serialize};
use soup_tensor::SplitMix64;

/// Disjoint node-index lists covering (a subset of) the graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Splits {
    pub train: Vec<usize>,
    pub val: Vec<usize>,
    pub test: Vec<usize>,
}

impl Splits {
    /// Randomly split `n` nodes with the given ratios (must sum to ≤ 1;
    /// any remainder is unlabeled/ignored, as in ogbn-style datasets).
    pub fn random(n: usize, train_ratio: f64, val_ratio: f64, test_ratio: f64, seed: u64) -> Self {
        assert!(
            train_ratio >= 0.0 && val_ratio >= 0.0 && test_ratio >= 0.0,
            "ratios must be non-negative"
        );
        let total = train_ratio + val_ratio + test_ratio;
        assert!(total <= 1.0 + 1e-9, "split ratios sum to {total} > 1");
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = SplitMix64::new(seed).derive(0x5117);
        rng.shuffle(&mut order);
        let n_train = (n as f64 * train_ratio).round() as usize;
        let n_val = (n as f64 * val_ratio).round() as usize;
        let n_test = ((n as f64 * test_ratio).round() as usize).min(n - n_train - n_val);
        let train = order[..n_train].to_vec();
        let val = order[n_train..n_train + n_val].to_vec();
        let test = order[n_train + n_val..n_train + n_val + n_test].to_vec();
        Self { train, val, test }
    }

    /// Total number of split-assigned nodes.
    pub fn len(&self) -> usize {
        self.train.len() + self.val.len() + self.test.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Split the validation set itself into a (train, holdout) pair.
    ///
    /// §IV-C: "For LS and PLS, hyperparameters were selected by randomly
    /// splitting the validation set for training and validating the soup."
    pub fn split_val(&self, holdout_ratio: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
        assert!(
            (0.0..1.0).contains(&holdout_ratio),
            "holdout ratio in [0,1)"
        );
        let mut order = self.val.clone();
        let mut rng = SplitMix64::new(seed).derive(0xa1);
        rng.shuffle(&mut order);
        let n_holdout = (order.len() as f64 * holdout_ratio).round() as usize;
        let holdout = order[..n_holdout].to_vec();
        let fit = order[n_holdout..].to_vec();
        (fit, holdout)
    }

    /// Restrict to nodes present in `keep` (a local-index remap), producing
    /// the split lists of an induced subgraph. `old_to_new[old] == Some(new)`.
    pub fn localise(&self, old_to_new: &[Option<usize>]) -> Splits {
        let remap = |xs: &[usize]| -> Vec<usize> {
            xs.iter()
                .filter_map(|&i| old_to_new.get(i).copied().flatten())
                .collect()
        };
        Splits {
            train: remap(&self.train),
            val: remap(&self.val),
            test: remap(&self.test),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_respected() {
        let s = Splits::random(1000, 0.5, 0.25, 0.25, 7);
        assert_eq!(s.train.len(), 500);
        assert_eq!(s.val.len(), 250);
        assert_eq!(s.test.len(), 250);
    }

    #[test]
    fn partial_coverage_allowed() {
        let s = Splits::random(1000, 0.1, 0.02, 0.5, 7);
        assert_eq!(s.train.len(), 100);
        assert_eq!(s.val.len(), 20);
        assert_eq!(s.test.len(), 500);
        assert_eq!(s.len(), 620);
    }

    #[test]
    fn splits_are_disjoint() {
        let s = Splits::random(500, 0.6, 0.2, 0.2, 11);
        let mut all: Vec<usize> = s
            .train
            .iter()
            .chain(&s.val)
            .chain(&s.test)
            .copied()
            .collect();
        all.sort_unstable();
        let before = all.len();
        all.dedup();
        assert_eq!(all.len(), before, "splits overlap");
    }

    #[test]
    fn deterministic_by_seed() {
        assert_eq!(
            Splits::random(100, 0.5, 0.3, 0.2, 3),
            Splits::random(100, 0.5, 0.3, 0.2, 3)
        );
        assert_ne!(
            Splits::random(100, 0.5, 0.3, 0.2, 3),
            Splits::random(100, 0.5, 0.3, 0.2, 4)
        );
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn over_unity_panics() {
        Splits::random(10, 0.8, 0.3, 0.3, 1);
    }

    #[test]
    fn split_val_partitions_val() {
        let s = Splits::random(400, 0.5, 0.3, 0.2, 5);
        let (fit, holdout) = s.split_val(0.25, 9);
        assert_eq!(fit.len() + holdout.len(), s.val.len());
        let mut merged: Vec<usize> = fit.iter().chain(&holdout).copied().collect();
        merged.sort_unstable();
        let mut val_sorted = s.val.clone();
        val_sorted.sort_unstable();
        assert_eq!(merged, val_sorted);
    }

    #[test]
    fn localise_remaps_and_filters() {
        let s = Splits {
            train: vec![0, 3],
            val: vec![1],
            test: vec![2, 4],
        };
        // Keep old nodes {1, 3, 4} -> new ids {0, 1, 2}.
        let map = vec![None, Some(0), None, Some(1), Some(2)];
        let local = s.localise(&map);
        assert_eq!(local.train, vec![1]);
        assert_eq!(local.val, vec![0]);
        assert_eq!(local.test, vec![2]);
    }

    #[test]
    fn serde_roundtrip() {
        let s = Splits::random(50, 0.5, 0.25, 0.25, 1);
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(serde_json::from_str::<Splits>(&json).unwrap(), s);
    }
}
