//! Microbenchmarks of the tensor and graph kernels every souping strategy
//! is built on: dense GEMM, CSR SpMM, GAT aggregation and the
//! soup-weighted parameter sum (Eq. 3).
//!
//! Beyond the criterion groups, `main` runs two head-to-head comparisons —
//! cache-blocked vs naive GEMM, and nnz-balanced vs row-parallel SpMM on a
//! Zipf-degree graph — and writes machine-readable ops/sec results to
//! `BENCH_kernels.json` (workspace root). With `SOUP_TRACE_OUT=<path>`
//! the run also emits a JSONL trace that `soupctl trace-validate` checks
//! in CI. See `benches/README.md` for how these map onto the paper's
//! figures.

use criterion::{criterion_group, BenchmarkId, Criterion};
use serde::Serialize;
use soup_graph::{CsrGraph, SbmConfig};
use soup_tensor::ops::sparse::{spmm_rowpar_reference, SparseMat};
use soup_tensor::tape::Tape;
use soup_tensor::{pool, SplitMix64, Tensor};
use std::time::Instant;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[64usize, 128, 256] {
        let mut rng = SplitMix64::new(1);
        let a = Tensor::randn(n, n, 1.0, &mut rng);
        let b = Tensor::randn(n, n, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(a.matmul(&b)));
        });
    }
    group.finish();
}

fn bench_matmul_blocked_vs_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul_512");
    let mut rng = SplitMix64::new(2);
    let a = Tensor::randn(512, 512, 1.0, &mut rng);
    let b = Tensor::randn(512, 512, 1.0, &mut rng);
    group.bench_function("blocked", |bench| {
        bench.iter(|| std::hint::black_box(a.matmul(&b)));
    });
    group.bench_function("naive", |bench| {
        bench.iter(|| std::hint::black_box(a.matmul_naive(&b)));
    });
    group.finish();
}

fn test_graph(nodes: usize) -> (CsrGraph, Tensor) {
    let synth = SbmConfig {
        nodes,
        classes: 8,
        avg_degree: 16.0,
        feature_dim: 64,
        ..Default::default()
    }
    .generate(3);
    (synth.graph, synth.features)
}

/// A Zipf-degree adjacency: degree of the rank-`r` vertex ∝ 1/(r+1)^s,
/// scaled to hit `avg_degree`. Models the hub-dominated degree profiles of
/// the paper's datasets (Reddit/Flickr), where row-count chunking stalls on
/// hub rows.
fn zipf_graph(nodes: usize, avg_degree: f64, s: f64, seed: u64) -> SparseMat {
    let mut rng = SplitMix64::new(seed);
    let weights: Vec<f64> = (0..nodes).map(|r| 1.0 / (r as f64 + 1.0).powf(s)).collect();
    let wsum: f64 = weights.iter().sum();
    let scale = avg_degree * nodes as f64 / wsum;
    let mut indptr = vec![0usize; nodes + 1];
    let mut indices = Vec::new();
    let mut values = Vec::new();
    for r in 0..nodes {
        let deg = ((weights[r] * scale).round() as usize).clamp(1, nodes);
        for _ in 0..deg {
            indices.push(rng.next_below(nodes) as u32);
            values.push(1.0 / deg as f32);
        }
        indptr[r + 1] = indices.len();
    }
    SparseMat::new(nodes, nodes, indptr, indices, values, false)
}

fn bench_spmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmm_gcn_norm");
    for &n in &[1000usize, 4000] {
        let (graph, feats) = test_graph(n);
        let adj = graph.gcn_norm();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(adj.matvec_dense(&feats)));
        });
    }
    group.finish();
}

fn bench_spmm_zipf(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmm_zipf");
    {
        let n = 4000usize;
        let adj = zipf_graph(n, 16.0, 1.1, 7);
        let mut rng = SplitMix64::new(8);
        let feats = Tensor::randn(n, 64, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::new("balanced", n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(adj.matvec_dense(&feats)));
        });
        group.bench_with_input(BenchmarkId::new("rowpar", n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(spmm_rowpar_reference(&adj, &feats)));
        });
    }
    group.finish();
}

fn bench_gat_aggregate(c: &mut Criterion) {
    let mut group = c.benchmark_group("gat_aggregate");
    for &n in &[1000usize, 4000] {
        let (graph, _) = test_graph(n);
        let idx = graph.edge_index();
        let mut rng = SplitMix64::new(4);
        let heads = 4;
        let dim = 16;
        let x = Tensor::randn(n, heads * dim, 1.0, &mut rng);
        let al = Tensor::randn(n, heads, 1.0, &mut rng);
        let ar = Tensor::randn(n, heads, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                let tape = Tape::new();
                let xv = tape.constant(x.clone());
                let a = tape.constant(al.clone());
                let b = tape.constant(ar.clone());
                std::hint::black_box(tape.value(tape.gat_aggregate(&idx, xv, a, b, heads, 0.2)))
            });
        });
    }
    group.finish();
}

fn bench_soup_weighted_sum(c: &mut Criterion) {
    let mut group = c.benchmark_group("soup_weighted_sum");
    for &n_ing in &[8usize, 50] {
        let mut rng = SplitMix64::new(5);
        let weights: Vec<Tensor> = (0..n_ing)
            .map(|_| Tensor::randn(128, 64, 1.0, &mut rng))
            .collect();
        let raw = Tensor::randn(n_ing, 1, 0.2, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n_ing), &n_ing, |bench, _| {
            bench.iter(|| {
                let tape = Tape::new();
                let a = tape.param(raw.clone());
                let mixed = tape.soup_layer(&weights, a);
                let loss = tape.sum(mixed);
                std::hint::black_box(tape.backward(loss))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_matmul_blocked_vs_naive,
    bench_spmm,
    bench_spmm_zipf,
    bench_gat_aggregate,
    bench_soup_weighted_sum
);

/// Best-of-`reps` seconds/iteration (after one warm-up). Minimum rather
/// than median: on shared machines external noise only ever adds time, so
/// the minimum is the most stable estimator of intrinsic kernel cost.
fn time_best(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up: populates the pool, faults pages, warms caches
    (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn counter(name: &str) -> u64 {
    soup_obs::registry::counter(name).get()
}

#[derive(Serialize)]
struct GemmComparison {
    shape: Vec<usize>,
    naive_ms: f64,
    blocked_ms: f64,
    naive_gflops: f64,
    blocked_gflops: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct SpmmComparison {
    nodes: usize,
    features: usize,
    nnz: usize,
    rowpar_ms: f64,
    balanced_ms: f64,
    rowpar_gflops: f64,
    balanced_gflops: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct PoolStats {
    hits: u64,
    misses: u64,
    returns: u64,
    final_trim_bytes: usize,
}

#[derive(Serialize)]
struct KernelReport {
    gemm_512: GemmComparison,
    spmm_zipf: SpmmComparison,
    pool: PoolStats,
}

/// Head-to-head comparisons for the JSON sidecar. Manual timing (not the
/// criterion shim) so ops/sec can be computed from known op counts.
fn comparison_report(quick: bool) -> KernelReport {
    let reps = if quick { 5 } else { 15 };

    // --- Dense GEMM, 512 features: naive saxpy loops vs blocked kernel.
    let (m, n, k) = (512usize, 512, 512);
    let mut rng = SplitMix64::new(21);
    let a = Tensor::randn(m, k, 1.0, &mut rng);
    let b = Tensor::randn(k, n, 1.0, &mut rng);
    let naive_s = time_best(reps, || {
        std::hint::black_box(a.matmul_naive(&b));
    });
    let blocked_s = time_best(reps, || {
        std::hint::black_box(a.matmul(&b));
    });
    let flops = (2 * m * n * k) as f64;
    let gemm_512 = GemmComparison {
        shape: vec![m, n, k],
        naive_ms: naive_s * 1e3,
        blocked_ms: blocked_s * 1e3,
        naive_gflops: flops / naive_s / 1e9,
        blocked_gflops: flops / blocked_s / 1e9,
        speedup: naive_s / blocked_s,
    };
    drop((a, b));
    pool::trim(); // don't attribute GEMM buffers to the SpMM experiment

    // --- Zipf-degree SpMM: row-parallel baseline vs nnz-balanced kernel.
    let nodes = 4000usize;
    let feat = 64usize;
    let adj = zipf_graph(nodes, 16.0, 1.1, 7);
    let mut rng = SplitMix64::new(22);
    let x = Tensor::randn(nodes, feat, 1.0, &mut rng);
    let rowpar_s = time_best(reps, || {
        std::hint::black_box(spmm_rowpar_reference(&adj, &x));
    });
    let balanced_s = time_best(reps, || {
        std::hint::black_box(adj.matvec_dense(&x));
    });
    let edge_flops = (2 * adj.nnz() * feat) as f64;
    let spmm_zipf = SpmmComparison {
        nodes,
        features: feat,
        nnz: adj.nnz(),
        rowpar_ms: rowpar_s * 1e3,
        balanced_ms: balanced_s * 1e3,
        rowpar_gflops: edge_flops / rowpar_s / 1e9,
        balanced_gflops: edge_flops / balanced_s / 1e9,
        speedup: rowpar_s / balanced_s,
    };
    drop((adj, x));
    let trimmed = pool::trim();

    KernelReport {
        gemm_512,
        spmm_zipf,
        pool: PoolStats {
            hits: counter("tensor.pool.hits"),
            misses: counter("tensor.pool.misses"),
            returns: counter("tensor.pool.returns"),
            final_trim_bytes: trimmed,
        },
    }
}

fn main() {
    let trace = std::env::var("SOUP_TRACE_OUT").ok();
    if let Some(path) = &trace {
        soup_obs::trace::init(path).expect("trace init");
    }
    let _span = soup_obs::span!("bench.kernels");

    benches();

    let quick = std::env::var("CRITERION_QUICK").is_ok_and(|v| v == "1");
    let report = comparison_report(quick);
    // Anchor to the workspace root: cargo runs benches with the package
    // directory as cwd, which would scatter sidecars across crates/.
    let sidecar = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    std::fs::write(
        sidecar,
        serde_json::to_string_pretty(&report).unwrap() + "\n",
    )
    .expect("write sidecar");
    println!("\nwrote {sidecar}:");
    println!(
        "  gemm_512   speedup {:.2}x  ({:.2} -> {:.2} GFLOP/s)",
        report.gemm_512.speedup, report.gemm_512.naive_gflops, report.gemm_512.blocked_gflops,
    );
    println!(
        "  spmm_zipf  speedup {:.2}x  ({:.2} -> {:.2} GFLOP/s)",
        report.spmm_zipf.speedup, report.spmm_zipf.rowpar_gflops, report.spmm_zipf.balanced_gflops,
    );

    drop(_span);
    if trace.is_some() {
        soup_obs::trace::finish();
    }
}
