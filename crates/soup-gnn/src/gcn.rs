//! Graph Convolutional Network layer (Kipf & Welling 2017).
//!
//! `H' = Â H W + b` with `Â = D̃^{-1/2}(A+I)D̃^{-1/2}` prepared once per
//! graph by [`soup_graph::CsrGraph::gcn_norm`]. The dense transform runs
//! first (`(HW)` is `n×out`, usually narrower than `H`), then the sparse
//! propagation.

use crate::config::ModelConfig;
use crate::params::LayerParams;
use soup_tensor::init::{xavier_normal, zeros_bias};
use soup_tensor::ops::SparseMat;
use soup_tensor::tape::{Tape, Var};
use soup_tensor::SplitMix64;

/// Parameter layout: `[W (in×out), b (1×out)]`.
pub fn init_layer(cfg: &ModelConfig, l: usize, rng: &mut SplitMix64) -> LayerParams {
    let (din, dout) = (cfg.layer_in_dim(l), cfg.layer_out_dim(l));
    LayerParams {
        name: format!("gcn{l}"),
        tensors: vec![xavier_normal(din, dout, 1.0, rng), zeros_bias(dout)],
    }
}

/// One GCN layer forward.
pub fn forward_layer(tape: &Tape, adj: &SparseMat, h: Var, params: &[Var]) -> Var {
    debug_assert_eq!(params.len(), 2, "GCN layer expects [W, b]");
    let hw = tape.matmul(h, params[0]);
    let agg = tape.spmm(adj, hw);
    tape.add_bias(agg, params[1])
}

/// One GCN layer forward with the propagation already applied
/// (`agg = Â·H`). Used by the eval-mode aggregate-first path, where the
/// first hop is weight-independent and may come from a
/// [`crate::cache::PropCache`]. `Â(HW) = (ÂH)W` exactly in linear
/// algebra, but not bitwise in f32 — so cached and uncached eval both go
/// through this aggregate-first ordering.
pub fn forward_layer_preagg(tape: &Tape, agg: Var, params: &[Var]) -> Var {
    debug_assert_eq!(params.len(), 2, "GCN layer expects [W, b]");
    let out = tape.matmul(agg, params[0]);
    tape.add_bias(out, params[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamVars;
    use crate::ParamSet;
    use soup_graph::CsrGraph;
    use soup_tensor::Tensor;

    fn setup() -> (CsrGraph, ModelConfig) {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let cfg = ModelConfig::gcn(3, 2).with_hidden(5).with_layers(1);
        (g, cfg)
    }

    #[test]
    fn layer_shapes() {
        let (_, cfg) = setup();
        let mut rng = SplitMix64::new(1);
        let lp = init_layer(&cfg, 0, &mut rng);
        assert_eq!(lp.tensors[0].shape(), soup_tensor::Shape::new(3, 2));
        assert_eq!(lp.tensors[1].shape(), soup_tensor::Shape::new(1, 2));
        assert_eq!(lp.name, "gcn0");
    }

    #[test]
    fn forward_output_shape() {
        let (g, cfg) = setup();
        let mut rng = SplitMix64::new(2);
        let params = ParamSet {
            layers: vec![init_layer(&cfg, 0, &mut rng)],
        };
        let tape = Tape::new();
        let vars = ParamVars::register(&tape, &params, true);
        let x = tape.constant(Tensor::randn(4, 3, 1.0, &mut rng));
        let adj = g.gcn_norm();
        let y = forward_layer(&tape, &adj, x, &vars.layers[0]);
        let yv = tape.value(y);
        assert_eq!(yv.rows(), 4);
        assert_eq!(yv.cols(), 2);
    }

    #[test]
    fn propagation_mixes_neighbors() {
        // With identity weights and zero bias, a node's output is the
        // normalised neighborhood average of its features.
        let g = CsrGraph::from_edges(2, &[(0, 1)]);
        let cfg = ModelConfig::gcn(2, 2).with_layers(1);
        let tape = Tape::new();
        let w = tape.param(Tensor::eye(2));
        let b = tape.param(Tensor::zeros(1, 2));
        let x = tape.constant(Tensor::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]));
        let y = forward_layer(&tape, &g.gcn_norm(), x, &[w, b]);
        let yv = tape.value(y);
        // Â for the single edge graph: all entries 1/2.
        assert!((yv.get(0, 0) - 0.5).abs() < 1e-5);
        assert!((yv.get(0, 1) - 0.5).abs() < 1e-5);
        let _ = cfg;
    }

    #[test]
    fn gradients_reach_weights() {
        let (g, cfg) = setup();
        let mut rng = SplitMix64::new(3);
        let params = ParamSet {
            layers: vec![init_layer(&cfg, 0, &mut rng)],
        };
        let tape = Tape::new();
        let vars = ParamVars::register(&tape, &params, true);
        let x = tape.constant(Tensor::randn(4, 3, 1.0, &mut rng));
        let y = forward_layer(&tape, &g.gcn_norm(), x, &vars.layers[0]);
        let loss = tape.sum(tape.mul(y, y));
        let grads = tape.backward(loss);
        assert!(grads.get(vars.layers[0][0]).is_some(), "no grad for W");
        assert!(grads.get(vars.layers[0][1]).is_some(), "no grad for b");
    }
}
