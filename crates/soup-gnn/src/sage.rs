//! GraphSAGE layer with mean aggregation (Hamilton et al. 2018).
//!
//! `H' = [H ‖ D^{-1} A H] W + b`: each node's own representation is
//! concatenated with the mean of its neighbors' before the linear
//! transform, so isolated nodes degrade gracefully to a self-transform.

use crate::config::ModelConfig;
use crate::params::LayerParams;
use soup_tensor::init::{xavier_normal, zeros_bias};
use soup_tensor::ops::SparseMat;
use soup_tensor::tape::{Tape, Var};
use soup_tensor::SplitMix64;

/// Parameter layout: `[W (2·in×out), b (1×out)]`.
pub fn init_layer(cfg: &ModelConfig, l: usize, rng: &mut SplitMix64) -> LayerParams {
    let (din, dout) = (cfg.layer_in_dim(l), cfg.layer_out_dim(l));
    LayerParams {
        name: format!("sage{l}"),
        tensors: vec![xavier_normal(2 * din, dout, 1.0, rng), zeros_bias(dout)],
    }
}

/// One GraphSAGE layer forward. `mean` is the `D^{-1}A` operator.
pub fn forward_layer(tape: &Tape, mean: &SparseMat, h: Var, params: &[Var]) -> Var {
    let agg = tape.spmm(mean, h);
    forward_layer_preagg(tape, h, agg, params)
}

/// One GraphSAGE layer forward with the neighbor mean `agg = D^{-1}A·H`
/// already computed (possibly by a [`crate::cache::PropCache`]).
pub fn forward_layer_preagg(tape: &Tape, h: Var, agg: Var, params: &[Var]) -> Var {
    debug_assert_eq!(params.len(), 2, "SAGE layer expects [W, b]");
    let cat = tape.concat_cols(h, agg);
    let out = tape.matmul(cat, params[0]);
    tape.add_bias(out, params[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{ParamSet, ParamVars};
    use soup_graph::CsrGraph;
    use soup_tensor::Tensor;

    #[test]
    fn layer_shapes() {
        let cfg = ModelConfig::sage(6, 3).with_layers(1);
        let mut rng = SplitMix64::new(1);
        let lp = init_layer(&cfg, 0, &mut rng);
        assert_eq!(lp.tensors[0].shape(), soup_tensor::Shape::new(12, 3));
        assert_eq!(lp.tensors[1].shape(), soup_tensor::Shape::new(1, 3));
    }

    #[test]
    fn forward_shape_and_grads() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let cfg = ModelConfig::sage(4, 3).with_layers(1);
        let mut rng = SplitMix64::new(2);
        let params = ParamSet {
            layers: vec![init_layer(&cfg, 0, &mut rng)],
        };
        let tape = Tape::new();
        let vars = ParamVars::register(&tape, &params, true);
        let x = tape.constant(Tensor::randn(5, 4, 1.0, &mut rng));
        let y = forward_layer(&tape, &g.mean_agg(), x, &vars.layers[0]);
        assert_eq!(tape.value(y).rows(), 5);
        assert_eq!(tape.value(y).cols(), 3);
        let loss = tape.sum(tape.mul(y, y));
        let grads = tape.backward(loss);
        assert!(grads.get(vars.layers[0][0]).is_some());
    }

    #[test]
    fn isolated_node_uses_self_features_only() {
        // Node 2 is isolated: its aggregated half is zero, so its output
        // depends only on the self block of W.
        let g = CsrGraph::from_edges(3, &[(0, 1)]);
        let tape = Tape::new();
        // W = [I ; I] so output = self + mean(neighbors).
        let mut wdata = vec![0.0f32; 4 * 2];
        wdata[0] = 1.0; // self block
        wdata[3] = 1.0;
        wdata[4] = 1.0; // agg block
        wdata[7] = 1.0;
        let w = tape.param(Tensor::from_vec(4, 2, wdata));
        let b = tape.param(Tensor::zeros(1, 2));
        let x = tape.constant(Tensor::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
        let y = tape.value(forward_layer(&tape, &g.mean_agg(), x, &[w, b]));
        // Node 0: self (1,2) + neighbor 1 (3,4) -> (4,6).
        assert_eq!(y.row(0), &[4.0, 6.0]);
        // Node 2: self only.
        assert_eq!(y.row(2), &[5.0, 6.0]);
    }
}
