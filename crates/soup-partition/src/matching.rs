//! Heavy-edge matching (HEM) for coarsening.
//!
//! Visit vertices in random order; each unmatched vertex matches with its
//! unmatched neighbor of maximum edge weight (ties: smaller vertex weight,
//! to keep coarse vertices balanced). Unmatchable vertices survive as
//! singletons. HEM is the standard METIS coarsening heuristic: contracting
//! heavy edges removes as much edge weight as possible from future cuts.

use crate::coarsen::WGraph;
use soup_tensor::SplitMix64;

/// Result of one matching pass: fine→coarse map and coarse vertex count.
#[derive(Debug)]
pub struct Matching {
    pub coarse_of: Vec<u32>,
    pub n_coarse: usize,
}

/// Compute a heavy-edge matching.
pub fn heavy_edge_matching(g: &WGraph, rng: &mut SplitMix64) -> Matching {
    let n = g.num_nodes();
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);
    let mut mate: Vec<Option<usize>> = vec![None; n];
    for &v in &order {
        if mate[v].is_some() {
            continue;
        }
        let mut best: Option<(usize, f32)> = None;
        for (u, w) in g.neighbors(v) {
            let u = u as usize;
            if u == v || mate[u].is_some() {
                continue;
            }
            let better = match best {
                None => true,
                Some((bu, bw)) => w > bw || (w == bw && g.vweights[u] < g.vweights[bu]),
            };
            if better {
                best = Some((u, w));
            }
        }
        if let Some((u, _)) = best {
            mate[v] = Some(u);
            mate[u] = Some(v);
        }
    }
    // Assign dense coarse ids: matched pairs share one id.
    let mut coarse_of = vec![u32::MAX; n];
    let mut next = 0u32;
    for v in 0..n {
        if coarse_of[v] != u32::MAX {
            continue;
        }
        coarse_of[v] = next;
        if let Some(u) = mate[v] {
            coarse_of[u] = next;
        }
        next += 1;
    }
    Matching {
        coarse_of,
        n_coarse: next as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soup_graph::CsrGraph;

    fn wgraph(n: usize, edges: &[(u32, u32)]) -> WGraph {
        WGraph::from_csr(&CsrGraph::from_edges(n, edges), vec![1.0; n])
    }

    #[test]
    fn matching_is_valid() {
        let g = wgraph(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let m = heavy_edge_matching(&g, &mut SplitMix64::new(1));
        // Every coarse id appears at most twice.
        let mut counts = vec![0usize; m.n_coarse];
        for &c in &m.coarse_of {
            counts[c as usize] += 1;
        }
        assert!(counts.iter().all(|&c| (1..=2).contains(&c)));
        // Matched pairs must be adjacent.
        for v in 0..6 {
            for u in 0..6 {
                if v != u && m.coarse_of[v] == m.coarse_of[u] {
                    let g2 =
                        CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
                    assert!(g2.has_edge(v, u), "non-adjacent pair {v},{u} matched");
                }
            }
        }
    }

    #[test]
    fn cycle_matches_nearly_all() {
        let edges: Vec<(u32, u32)> = (0..20u32).map(|v| (v, (v + 1) % 20)).collect();
        let g = wgraph(20, &edges);
        let m = heavy_edge_matching(&g, &mut SplitMix64::new(2));
        // A 20-cycle admits a perfect matching; HEM should get close.
        assert!(m.n_coarse <= 12, "n_coarse={}", m.n_coarse);
        assert!(m.n_coarse >= 10);
    }

    #[test]
    fn prefers_heavy_edges() {
        // 4-cycle with two heavy opposite edges: 0-1 and 2-3 weigh 5, the
        // light edges 1-2 and 3-0 weigh 1. Every vertex's max-weight
        // neighbor is its heavy mate, so HEM must find both heavy pairs
        // regardless of visit order.
        let csr = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let mut g = WGraph::from_csr(&csr, vec![1.0; 4]);
        let heavy = [(0u32, 1u32), (1, 0), (2, 3), (3, 2)];
        for v in 0..4 {
            for e in g.indptr[v]..g.indptr[v + 1] {
                if heavy.contains(&(v as u32, g.indices[e])) {
                    g.eweights[e] = 5.0;
                }
            }
        }
        for seed in 0..10 {
            let m = heavy_edge_matching(&g, &mut SplitMix64::new(seed));
            assert_eq!(
                m.coarse_of[0], m.coarse_of[1],
                "seed {seed} ignored heavy edge 0-1"
            );
            assert_eq!(
                m.coarse_of[2], m.coarse_of[3],
                "seed {seed} ignored heavy edge 2-3"
            );
        }
    }

    #[test]
    fn isolated_vertices_are_singletons() {
        let g = wgraph(4, &[(0, 1)]);
        let m = heavy_edge_matching(&g, &mut SplitMix64::new(3));
        assert_eq!(m.n_coarse, 3); // pair {0,1} + two singletons
        assert_ne!(m.coarse_of[2], m.coarse_of[3]);
    }

    #[test]
    fn deterministic_by_seed() {
        let g = wgraph(10, &[(0, 1), (2, 3), (4, 5), (6, 7), (8, 9), (1, 2)]);
        let a = heavy_edge_matching(&g, &mut SplitMix64::new(7));
        let b = heavy_edge_matching(&g, &mut SplitMix64::new(7));
        assert_eq!(a.coarse_of, b.coarse_of);
    }
}
