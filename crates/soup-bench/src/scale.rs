//! Paper-scale synthetic dataset generation, streamed straight to disk.
//!
//! The in-memory generator ([`soup_graph::SbmConfig`]) materialises the
//! feature matrix, which at the paper's ogbn-products size (2.4M nodes)
//! is multiple GiB — exactly what the sharded pipeline exists to avoid.
//! This module writes a `soup-graphmmap/1` file without ever holding a
//! feature row beyond the one being written:
//!
//! - **labels** are a balanced, shuffled class assignment (small: `u32 × n`);
//! - **edges** are defined by a *pure function* of `(seed, edge ordinal)` —
//!   an SBM-style draw where endpoint `a` is uniform and endpoint `b` is
//!   intra-class with probability `homophily` — so the edge stream can be
//!   replayed as often as needed instead of being stored. CSR construction
//!   runs in source-range chunks: each chunk replays the stream, keeps the
//!   directed entries whose source falls in the chunk, sorts and dedups
//!   them locally (duplicates can only collide within one source row, so
//!   chunk-local dedup equals global dedup);
//! - **features** are `centroid[label] + σ·N(0,1)` with a per-node derived
//!   RNG, generated row by row during the write;
//! - **splits** are a per-node Bernoulli draw, replayed per section so the
//!   sorted id lists stream out in ascending order.
//!
//! Peak generator memory is `O(n)` for labels/degrees plus one chunk of
//! edge pairs — ~tens of MB at 2.4M nodes, independent of feature_dim.

use std::path::Path;

use soup_error::SoupError;
use soup_graph::mmap::{write_mmap_dataset, MmapMeta};
use soup_tensor::SplitMix64;

type Result<T> = std::result::Result<T, SoupError>;

/// Chunk-replay consumer: `(source node, its deduped sorted (src, dst)
/// run)` — shared by the counting pass and every section pass.
type RowSink<'a> = dyn FnMut(u32, &[(u32, u32)]) + 'a;

/// Shape of a streamed synthetic dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleConfig {
    pub nodes: usize,
    /// Target undirected edges per node (CSR nnz ≈ `nodes × avg_degree`).
    pub avg_degree: f64,
    pub num_classes: usize,
    pub feature_dim: usize,
    /// Probability that an edge endpoint stays inside its source's class.
    pub homophily: f64,
    /// Distance of class centroids from the origin.
    pub centroid_scale: f32,
    /// Per-feature Gaussian noise around the centroid.
    pub sigma: f32,
    pub train_ratio: f64,
    pub val_ratio: f64,
    pub test_ratio: f64,
    /// Source-range chunk size for the two-pass CSR build; smaller chunks
    /// trade replay time for memory.
    pub chunk_nodes: usize,
}

impl ScaleConfig {
    /// The synthetic ogbn-products counterpart used by `bench_shard`:
    /// paper-scale node/edge counts with a class structure separable
    /// enough that full-graph and sharded training agree near ceiling —
    /// the bench compares *memory*, not learnability.
    pub fn products(nodes: usize) -> Self {
        Self {
            nodes,
            avg_degree: 10.0,
            num_classes: 16,
            feature_dim: 64,
            homophily: 0.85,
            centroid_scale: 3.0,
            sigma: 1.0,
            train_ratio: 0.10,
            val_ratio: 0.05,
            test_ratio: 0.20,
            chunk_nodes: 300_000,
        }
    }

    fn num_edges(&self) -> u64 {
        (self.nodes as f64 * self.avg_degree / 2.0) as u64
    }
}

/// Split membership of one node: replayed identically by the count pass
/// and each section pass.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Split {
    Train,
    Val,
    Test,
    None,
}

struct Streams {
    labels: SplitMix64,
    edges: SplitMix64,
    feats: SplitMix64,
    splits: SplitMix64,
    centroids: SplitMix64,
}

impl Streams {
    fn new(seed: u64) -> Self {
        let root = SplitMix64::new(seed);
        Self {
            labels: root.derive(0x1a8e),
            edges: root.derive(0xed6e),
            feats: root.derive(0xfea7),
            splits: root.derive(0x5917),
            centroids: root.derive(0xce17),
        }
    }
}

fn split_of(streams: &Streams, cfg: &ScaleConfig, v: usize) -> Split {
    let u = streams.splits.derive(v as u64).next_f64();
    if u < cfg.train_ratio {
        Split::Train
    } else if u < cfg.train_ratio + cfg.val_ratio {
        Split::Val
    } else if u < cfg.train_ratio + cfg.val_ratio + cfg.test_ratio {
        Split::Test
    } else {
        Split::None
    }
}

/// Endpoints of edge `t`, or `None` for the (discarded) self-loop draws.
/// A fresh derived RNG per ordinal makes replay trivially consistent.
fn edge_endpoints(
    streams: &Streams,
    cfg: &ScaleConfig,
    labels: &[u32],
    class_members: &[Vec<u32>],
    t: u64,
) -> Option<(u32, u32)> {
    let mut r = streams.edges.derive(t);
    let a = r.next_below(cfg.nodes) as u32;
    let b = if (r.next_f64()) < cfg.homophily {
        let members = &class_members[labels[a as usize] as usize];
        members[r.next_below(members.len())]
    } else {
        r.next_below(cfg.nodes) as u32
    };
    if a == b {
        None
    } else {
        Some((a, b))
    }
}

/// Stream a seeded synthetic dataset to `path` in `soup-graphmmap/1`
/// format. Deterministic: same `(cfg, seed)` → bitwise-identical file.
/// Returns the written shape.
pub fn generate_streamed(cfg: &ScaleConfig, seed: u64, path: impl AsRef<Path>) -> Result<MmapMeta> {
    assert!(
        cfg.nodes >= cfg.num_classes,
        "need at least one node per class"
    );
    assert!(cfg.num_classes >= 2, "need at least two classes");
    assert!(
        cfg.train_ratio + cfg.val_ratio + cfg.test_ratio <= 1.0 + 1e-9,
        "split ratios sum over 1"
    );
    let streams = Streams::new(seed);
    let n = cfg.nodes;
    let m = cfg.num_edges();

    // Balanced shuffled labels + per-class member lists (O(n) u32 memory).
    let mut labels: Vec<u32> = (0..n).map(|v| (v % cfg.num_classes) as u32).collect();
    streams.labels.derive(0).shuffle(&mut labels);
    let mut class_members: Vec<Vec<u32>> = vec![Vec::new(); cfg.num_classes];
    for (v, &c) in labels.iter().enumerate() {
        class_members[c as usize].push(v as u32);
    }

    // Pass 1 (chunked replay): per-node degree after dedup, and nnz.
    let chunk = cfg.chunk_nodes.max(1);
    let mut degrees: Vec<u32> = vec![0; n];
    let mut scratch: Vec<(u32, u32)> = Vec::new();
    let mut for_each_chunk = |row_sink: &mut RowSink| {
        let mut lo = 0usize;
        while lo < n {
            let hi = (lo + chunk).min(n);
            scratch.clear();
            for t in 0..m {
                if let Some((a, b)) = edge_endpoints(&streams, cfg, &labels, &class_members, t) {
                    if (lo..hi).contains(&(a as usize)) {
                        scratch.push((a, b));
                    }
                    if (lo..hi).contains(&(b as usize)) {
                        scratch.push((b, a));
                    }
                }
            }
            scratch.sort_unstable();
            scratch.dedup();
            let mut i = 0usize;
            while i < scratch.len() {
                let src = scratch[i].0;
                let mut j = i;
                while j < scratch.len() && scratch[j].0 == src {
                    j += 1;
                }
                row_sink(src, &scratch[i..j]);
                i = j;
            }
            lo = hi;
        }
    };
    for_each_chunk(&mut |src, row| {
        degrees[src as usize] = row.len() as u32;
    });
    let nnz: u64 = degrees.iter().map(|&d| d as u64).sum();

    // Split counts (cheap replay).
    let (mut train_len, mut val_len, mut test_len) = (0usize, 0usize, 0usize);
    for v in 0..n {
        match split_of(&streams, cfg, v) {
            Split::Train => train_len += 1,
            Split::Val => val_len += 1,
            Split::Test => test_len += 1,
            Split::None => {}
        }
    }

    // Class centroids (tiny).
    let mut crng = streams.centroids.derive(0);
    let centroids: Vec<Vec<f32>> = (0..cfg.num_classes)
        .map(|_| {
            (0..cfg.feature_dim)
                .map(|_| crng.normal() * cfg.centroid_scale)
                .collect()
        })
        .collect();

    let meta = MmapMeta {
        n,
        nnz: nnz as usize,
        feature_dim: cfg.feature_dim,
        num_classes: cfg.num_classes,
        train_len,
        val_len,
        test_len,
    };
    write_mmap_dataset(&path, &meta, |w| {
        // indptr from the degree array.
        let mut acc = 0u64;
        w.put_indptr(0)?;
        for &d in &degrees {
            acc += d as u64;
            w.put_indptr(acc)?;
        }
        // indices: pass 2, identical chunked replay. Rows arrive in
        // ascending source order because chunks are source ranges and the
        // chunk-local sort orders sources within each.
        let mut io_err: Option<std::io::Error> = None;
        for_each_chunk(&mut |_src, row| {
            if io_err.is_some() {
                return;
            }
            for &(_, dst) in row {
                if let Err(e) = w.put_index(dst) {
                    io_err = Some(e);
                    return;
                }
            }
        });
        if let Some(e) = io_err {
            return Err(e);
        }
        // features: one row at a time, per-node derived RNG.
        let mut row = vec![0f32; cfg.feature_dim];
        for (v, &label) in labels.iter().enumerate() {
            let mut r = streams.feats.derive(v as u64);
            let centroid = &centroids[label as usize];
            for (x, &c) in row.iter_mut().zip(centroid) {
                *x = c + r.normal() * cfg.sigma;
            }
            w.put_feature_row(&row)?;
        }
        for &l in &labels {
            w.put_label(l)?;
        }
        // splits: replay once per section; ids stream out sorted.
        for v in 0..n {
            if split_of(&streams, cfg, v) == Split::Train {
                w.put_train_id(v as u32)?;
            }
        }
        for v in 0..n {
            if split_of(&streams, cfg, v) == Split::Val {
                w.put_val_id(v as u32)?;
            }
        }
        for v in 0..n {
            if split_of(&streams, cfg, v) == Split::Test {
                w.put_test_id(v as u32)?;
            }
        }
        Ok(())
    })?;
    Ok(meta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use soup_graph::mmap::MmapDataset;

    fn tmp(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("soup-bench-scale-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d.join(name)
    }

    fn small_cfg() -> ScaleConfig {
        ScaleConfig {
            nodes: 2000,
            chunk_nodes: 700, // force several chunks
            ..ScaleConfig::products(2000)
        }
    }

    #[test]
    fn streamed_generation_is_valid_and_deterministic() {
        let cfg = small_cfg();
        let p1 = tmp("det1.gmm");
        let p2 = tmp("det2.gmm");
        let meta1 = generate_streamed(&cfg, 99, &p1).unwrap();
        let meta2 = generate_streamed(&cfg, 99, &p2).unwrap();
        assert_eq!(meta1, meta2);
        assert_eq!(std::fs::read(&p1).unwrap(), std::fs::read(&p2).unwrap());
        let m = MmapDataset::open(&p1).unwrap();
        m.validate().unwrap();
        assert_eq!(m.num_nodes(), 2000);
        // Average degree lands near the target (dedup + self-loop losses
        // only shave a little).
        let avg = m.num_directed_edges() as f64 / m.num_nodes() as f64;
        assert!(
            avg > 0.7 * cfg.avg_degree && avg < 1.1 * cfg.avg_degree,
            "avg degree {avg}"
        );
    }

    #[test]
    fn chunk_size_does_not_change_the_file() {
        let mut a = small_cfg();
        a.chunk_nodes = 123;
        let mut b = small_cfg();
        b.chunk_nodes = 2000;
        let pa = tmp("chunk_a.gmm");
        let pb = tmp("chunk_b.gmm");
        generate_streamed(&a, 7, &pa).unwrap();
        generate_streamed(&b, 7, &pb).unwrap();
        assert_eq!(std::fs::read(&pa).unwrap(), std::fs::read(&pb).unwrap());
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = small_cfg();
        let pa = tmp("seed_a.gmm");
        let pb = tmp("seed_b.gmm");
        generate_streamed(&cfg, 1, &pa).unwrap();
        generate_streamed(&cfg, 2, &pb).unwrap();
        assert_ne!(std::fs::read(&pa).unwrap(), std::fs::read(&pb).unwrap());
    }

    #[test]
    fn loaded_dataset_is_learnable_shape() {
        let cfg = small_cfg();
        let p = tmp("shape.gmm");
        generate_streamed(&cfg, 3, &p).unwrap();
        let d = MmapDataset::open(&p).unwrap().load().unwrap();
        assert_eq!(d.num_classes, 16);
        assert_eq!(d.features.cols(), 64);
        assert!(!d.splits.train.is_empty());
        assert!(!d.splits.val.is_empty());
        assert!(!d.splits.test.is_empty());
        // Homophily: most edges connect same-class endpoints.
        let mut same = 0usize;
        let mut total = 0usize;
        for v in 0..d.num_nodes() {
            for &u in d.graph.neighbors(v) {
                total += 1;
                if d.labels[v] == d.labels[u as usize] {
                    same += 1;
                }
            }
        }
        let frac = same as f64 / total as f64;
        assert!(frac > 0.7, "intra-class edge fraction {frac}");
    }
}
