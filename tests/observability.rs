//! Golden-file test of the observability layer: drive the full pipeline
//! (Phase-1 distributed training, then PLS souping) with a trace sink open
//! and a `soup-metrics/1` sampler running, then check the emitted JSONL
//! against the documented schemas — record types, required fields, span
//! paths, event names, per-span resource attribution, the time series, the
//! folded-stack flamegraph export and the span diff.

use enhanced_soups::obs;
use enhanced_soups::prelude::*;
use soup_core::LearnedHyper;

#[test]
fn end_to_end_trace_matches_documented_schema() {
    let dir = std::env::temp_dir().join(format!("soup_obs_golden_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("run.trace.jsonl");
    let series_path = dir.join("run.metrics.jsonl");

    obs::trace::init(&trace_path).unwrap();
    enhanced_soups::tensor::memory::install_obs_probe();
    let sampler = obs::series::start(&series_path, std::time::Duration::from_millis(5)).unwrap();
    let dataset = DatasetKind::Flickr.generate_scaled(11, 0.15);
    let cfg = ModelConfig::gcn(dataset.num_features(), dataset.num_classes()).with_hidden(8);
    let tc = TrainConfig {
        epochs: 4,
        early_stop_patience: None,
        ..TrainConfig::quick()
    };
    let ingredients = train_ingredients(&dataset, &cfg, &tc, 3, 2, 7);
    let pls = PartitionLearnedSouping::new(
        LearnedHyper {
            epochs: 5,
            ..Default::default()
        },
        4,
        2,
    );
    let outcome = pls.soup(&ingredients, &dataset, &cfg, 3);
    assert!((0.0..=1.0).contains(&outcome.val_accuracy));
    obs::info!("golden run complete");
    let sampled = sampler.stop().expect("sampler was running");
    assert_eq!(sampled, series_path);
    let written = obs::trace::finish().expect("sink was active");
    assert_eq!(written, trace_path);

    let stats = obs::trace::validate_file(&trace_path).expect("trace must be schema-valid");

    // Phase 1 span tree: per-worker roots with per-task training spans.
    for path in [
        "distrib.phase1",
        "worker",
        "worker/ingredient",
        "worker/ingredient/train",
        "worker/ingredient/train/epoch",
    ] {
        assert!(
            stats.span_paths.iter().any(|p| p == path),
            "missing span path {path}"
        );
    }
    // Phase 2 span tree: measured mixing with partitioner phases inside.
    for path in [
        "soup.mix",
        "soup.mix/soup.pls",
        "soup.mix/partition.coarsen",
        "soup.mix/partition.initial",
        "soup.mix/partition.refine",
    ] {
        assert!(
            stats.span_paths.iter().any(|p| p == path),
            "missing span path {path}"
        );
    }
    // Structured events from both phases.
    for name in [
        "distrib.start",
        "train.start",
        "train.epoch",
        "train.done",
        "distrib.worker.done",
        "distrib.done",
        "partition.done",
        "soup.pls.epoch",
        "soup.measured",
    ] {
        assert!(
            stats.event_names.iter().any(|e| e == name),
            "missing event {name}"
        );
    }
    // 3 ingredients × 4 epochs of per-epoch telemetry, 5 PLS epochs.
    assert!(stats.events >= 12 + 5, "too few events: {}", stats.events);
    assert!(stats.logs >= 1, "log line was not mirrored into the trace");
    assert!(stats.has_metrics, "final metrics record missing");

    // The final metrics record carries the kernel counters and the
    // per-worker queue metrics accumulated during the run.
    let metrics = obs::registry::snapshot();
    let counter = |n: &str| {
        metrics
            .counters
            .iter()
            .find(|(name, _)| name == n)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    };
    assert!(counter("tensor.matmul.calls") > 0);
    assert!(counter("tensor.spmm.calls") > 0);
    assert_eq!(counter("distrib.tasks_completed"), 3);
    assert_eq!(counter("soup.pls.epochs"), 5);
    assert!(
        metrics
            .counters
            .iter()
            .any(|(n, _)| n.starts_with("distrib.worker.") && n.ends_with(".tasks")),
        "per-worker task counters missing"
    );
    assert!(
        metrics
            .histograms
            .iter()
            .any(|(n, _)| n == "distrib.queue.claim_wait_ns"),
        "queue wait histogram missing"
    );

    // The summary report renders the span tree with the latency and
    // resource-attribution columns.
    let report = obs::report::render();
    assert!(report.contains("soup.mix"));
    assert!(report.contains("P95"));
    assert!(report.contains("CPU"));
    assert!(report.contains("ALLOC"));

    // Per-span resource attribution made it into the trace: training spans
    // carry thread-CPU and tensor-allocation deltas alongside wall time.
    let spans = obs::trace::read_spans(&trace_path).expect("span records parse");
    let train_spans: Vec<_> = spans
        .iter()
        .filter(|s| s.path == "worker/ingredient/train")
        .collect();
    assert_eq!(train_spans.len(), 3, "one train span per ingredient");
    assert!(
        train_spans.iter().all(|s| s.cpu_us.is_some()),
        "train spans missing CPU attribution"
    );
    assert!(
        train_spans.iter().all(|s| s.alloc_b.is_some_and(|b| b > 0)),
        "train spans allocated tensors, attribution must be non-zero"
    );

    // The live time series is schema-valid, complete, and saw the kernels:
    // summed matmul counter deltas equal the final counter total.
    let series = obs::series::validate_file(&series_path).expect("metrics series valid");
    assert!(series.complete, "sampler stop must write the footer");
    assert!(!series.samples.is_empty());
    let delta_sum: u64 = series
        .samples
        .iter()
        .flat_map(|s| &s.counters)
        .filter(|(n, _, _)| n == "tensor.matmul.calls")
        .map(|(_, _, delta)| delta)
        .sum();
    assert_eq!(delta_sum, counter("tensor.matmul.calls"));
    let last = series.samples.last().unwrap();
    assert!(last.rss_bytes > 0, "RSS gauge missing");
    assert!(
        last.gauge("tensor.mem.peak_bytes").is_some_and(|v| v > 0.0),
        "pool probe gauges missing from the series"
    );

    // The trace folds into a validator-clean flamegraph whose stacks cover
    // both phases.
    let folded_path = dir.join("run.folded");
    let stacks = obs::flame::write_folded(&trace_path, &folded_path).expect("flame export");
    assert!(stacks > 0);
    let folded = std::fs::read_to_string(&folded_path).unwrap();
    let flame_stats = obs::flame::validate_folded(&folded).expect("folded output round-trips");
    assert_eq!(flame_stats.stacks, stacks);
    assert!(folded.contains("worker;ingredient;train;epoch"));
    assert!(folded.contains("soup.mix;soup.pls"));

    // A self-diff of the trace is all-noise: nothing regresses against
    // itself.
    let diff = obs::diff::diff_traces(&trace_path, &trace_path, obs::diff::DEFAULT_NOISE)
        .expect("diff parses both traces");
    assert!(!diff.has_regressions());
    assert!(diff.entries.iter().all(|e| e.ratio == 1.0));

    std::fs::remove_dir_all(&dir).ok();
}
