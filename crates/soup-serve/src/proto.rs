//! Wire protocol: length-prefixed binary frames over TCP.
//!
//! Every message — request or response — is one *frame*: a little-endian
//! `u32` payload length followed by that many bytes. Frames above
//! [`MAX_FRAME`] are rejected before allocation, so a hostile or corrupt
//! length prefix cannot OOM the server. A request payload starts with an
//! opcode byte, a response payload with a status byte; everything after is
//! opcode-specific and fixed-layout (no self-describing encoding on the
//! hot path).
//!
//! | opcode | body | OK body |
//! |---|---|---|
//! | `PING` | — | `u64` model version |
//! | `PREDICT` | `u32` count, count × `u32` node id | `u64` version, `u32` count, count × `u32` class |
//! | `STATS` | — | UTF-8 JSON |
//! | `SWAP` | UTF-8 checkpoint path | `u64` new version |
//! | `RESOUP` | `u64` seed, `u8` strategy len, strategy, UTF-8 dir | `u64` new version |
//! | `SHUTDOWN` | — | — |
//!
//! Response status [`Status::Overloaded`] (empty body) is the explicit
//! backpressure signal: the admission queue was full and the request was
//! *not* processed; the client may retry. Malformed input of any kind
//! decodes to a clean [`SoupError`] — never a panic — and the server
//! answers [`Status::Error`] with a message body.

use soup_error::SoupError;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Hard cap on frame payload size (1 MiB ≈ 260k node ids per request).
pub const MAX_FRAME: usize = 1 << 20;

/// Request opcodes (first payload byte of a request frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Liveness probe; returns the live model version.
    Ping = 0,
    /// Classify a batch of node ids.
    Predict = 1,
    /// Serving metrics snapshot as JSON.
    Stats = 2,
    /// Promote the checkpoint at a path to the live model.
    Swap = 3,
    /// Re-soup a checkpoint directory and promote the result.
    Resoup = 4,
    /// Stop accepting connections and exit the serve loop.
    Shutdown = 5,
}

/// Response status (first payload byte of a response frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// Request processed; body is opcode-specific.
    Ok = 0,
    /// Request failed; body is a UTF-8 error message.
    Error = 1,
    /// Admission queue full — request was rejected, retry later.
    Overloaded = 2,
}

/// A decoded request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    Ping,
    Predict(Vec<u32>),
    Stats,
    Swap(String),
    Resoup {
        strategy: String,
        dir: String,
        seed: u64,
    },
    Shutdown,
}

/// A decoded response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    Ok(Vec<u8>),
    Error(String),
    Overloaded,
}

/// Write one frame: `u32` little-endian length, then the payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame's payload. Truncated streams surface as an I/O error
/// (`UnexpectedEof`), oversized length prefixes as a parse error — both
/// before any payload allocation happens.
pub fn read_frame(r: &mut impl Read) -> soup_error::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len).map_err(io_err)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(SoupError::parse(format!(
            "frame length {len} exceeds cap {MAX_FRAME}"
        )));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(io_err)?;
    Ok(payload)
}

fn io_err(source: std::io::Error) -> SoupError {
    SoupError::Io { path: None, source }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Read one frame with an idle/stall budget, distinguishing the two ways
/// a client can go quiet:
///
/// - **idle** — nothing arrives before the first byte of the length
///   prefix within `idle`: the connection is just parked between
///   requests. Returns `Ok(None)` so the server can reap it cleanly.
/// - **stalled** — a frame *started* but did not complete within one
///   further `idle` budget: a crashed or malicious (slow-loris) client.
///   Returns a typed `TimedOut` I/O error; total time a drip-feeding
///   client can hold a handler is bounded at ~2× `idle`.
///
/// EOF surfaces exactly like [`read_frame`]'s (`UnexpectedEof`), so the
/// caller's hangup handling is unchanged.
pub fn read_frame_deadline(
    stream: &mut TcpStream,
    idle: Duration,
) -> soup_error::Result<Option<Vec<u8>>> {
    stream.set_read_timeout(Some(idle)).map_err(io_err)?;
    let mut len = [0u8; 4];
    let first = loop {
        match stream.read(&mut len) {
            Ok(0) => {
                return Err(io_err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed",
                )))
            }
            Ok(n) => break n,
            Err(e) if is_timeout(&e) => return Ok(None),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(io_err(e)),
        }
    };
    // A frame has begun: everything else must land before one overall
    // deadline, however many partial reads it takes.
    let deadline = Instant::now() + idle;
    read_exact_deadline(stream, &mut len[first..], deadline, "length prefix")?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(SoupError::parse(format!(
            "frame length {len} exceeds cap {MAX_FRAME}"
        )));
    }
    let mut payload = vec![0u8; len];
    read_exact_deadline(stream, &mut payload, deadline, "payload")?;
    Ok(Some(payload))
}

fn read_exact_deadline(
    stream: &mut TcpStream,
    mut buf: &mut [u8],
    deadline: Instant,
    what: &str,
) -> soup_error::Result<()> {
    while !buf.is_empty() {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(stall(what));
        }
        stream.set_read_timeout(Some(remaining)).map_err(io_err)?;
        match stream.read(buf) {
            Ok(0) => {
                return Err(io_err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                )))
            }
            Ok(n) => buf = &mut std::mem::take(&mut buf)[n..],
            Err(e) if is_timeout(&e) => return Err(stall(what)),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(io_err(e)),
        }
    }
    Ok(())
}

fn stall(what: &str) -> SoupError {
    io_err(std::io::Error::new(
        std::io::ErrorKind::TimedOut,
        format!("client stalled mid-frame ({what})"),
    ))
}

/// Encode a request into a frame payload.
pub fn encode_request(req: &Request) -> Vec<u8> {
    match req {
        Request::Ping => vec![Opcode::Ping as u8],
        Request::Predict(nodes) => {
            let mut buf = Vec::with_capacity(5 + 4 * nodes.len());
            buf.push(Opcode::Predict as u8);
            buf.extend_from_slice(&(nodes.len() as u32).to_le_bytes());
            for &n in nodes {
                buf.extend_from_slice(&n.to_le_bytes());
            }
            buf
        }
        Request::Stats => vec![Opcode::Stats as u8],
        Request::Swap(path) => {
            let mut buf = vec![Opcode::Swap as u8];
            buf.extend_from_slice(path.as_bytes());
            buf
        }
        Request::Resoup {
            strategy,
            dir,
            seed,
        } => {
            let mut buf = vec![Opcode::Resoup as u8];
            buf.extend_from_slice(&seed.to_le_bytes());
            buf.push(strategy.len() as u8);
            buf.extend_from_slice(strategy.as_bytes());
            buf.extend_from_slice(dir.as_bytes());
            buf
        }
        Request::Shutdown => vec![Opcode::Shutdown as u8],
    }
}

/// Decode a request frame payload. Any malformed input — empty payload,
/// unknown opcode, short body, non-UTF-8 text — is a typed error.
pub fn decode_request(payload: &[u8]) -> soup_error::Result<Request> {
    let (&op, body) = payload
        .split_first()
        .ok_or_else(|| SoupError::parse("empty request frame"))?;
    match op {
        x if x == Opcode::Ping as u8 => Ok(Request::Ping),
        x if x == Opcode::Predict as u8 => {
            if body.len() < 4 {
                return Err(SoupError::parse("predict body shorter than its count"));
            }
            let count = u32::from_le_bytes(body[..4].try_into().unwrap()) as usize;
            let ids = &body[4..];
            if ids.len() != 4 * count {
                return Err(SoupError::parse(format!(
                    "predict declares {count} ids but carries {} bytes",
                    ids.len()
                )));
            }
            Ok(Request::Predict(
                ids.chunks_exact(4)
                    .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                    .collect(),
            ))
        }
        x if x == Opcode::Stats as u8 => Ok(Request::Stats),
        x if x == Opcode::Swap as u8 => Ok(Request::Swap(utf8(body, "swap path")?)),
        x if x == Opcode::Resoup as u8 => {
            if body.len() < 9 {
                return Err(SoupError::parse("resoup body shorter than its header"));
            }
            let seed = u64::from_le_bytes(body[..8].try_into().unwrap());
            let strat_len = body[8] as usize;
            let rest = &body[9..];
            if rest.len() < strat_len {
                return Err(SoupError::parse("resoup strategy name truncated"));
            }
            Ok(Request::Resoup {
                strategy: utf8(&rest[..strat_len], "resoup strategy")?,
                dir: utf8(&rest[strat_len..], "resoup dir")?,
                seed,
            })
        }
        x if x == Opcode::Shutdown as u8 => Ok(Request::Shutdown),
        other => Err(SoupError::parse(format!("unknown opcode {other}"))),
    }
}

/// Encode a response into a frame payload.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    match resp {
        Response::Ok(body) => {
            let mut buf = Vec::with_capacity(1 + body.len());
            buf.push(Status::Ok as u8);
            buf.extend_from_slice(body);
            buf
        }
        Response::Error(msg) => {
            let mut buf = vec![Status::Error as u8];
            buf.extend_from_slice(msg.as_bytes());
            buf
        }
        Response::Overloaded => vec![Status::Overloaded as u8],
    }
}

/// Decode a response frame payload.
pub fn decode_response(payload: &[u8]) -> soup_error::Result<Response> {
    let (&status, body) = payload
        .split_first()
        .ok_or_else(|| SoupError::parse("empty response frame"))?;
    match status {
        x if x == Status::Ok as u8 => Ok(Response::Ok(body.to_vec())),
        x if x == Status::Error as u8 => Ok(Response::Error(utf8(body, "error message")?)),
        x if x == Status::Overloaded as u8 => Ok(Response::Overloaded),
        other => Err(SoupError::parse(format!("unknown status {other}"))),
    }
}

/// Encode the PREDICT success body.
pub fn encode_predictions(version: u64, classes: &[u32]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(12 + 4 * classes.len());
    buf.extend_from_slice(&version.to_le_bytes());
    buf.extend_from_slice(&(classes.len() as u32).to_le_bytes());
    for &c in classes {
        buf.extend_from_slice(&c.to_le_bytes());
    }
    buf
}

/// Decode the PREDICT success body back into `(version, classes)`.
pub fn decode_predictions(body: &[u8]) -> soup_error::Result<(u64, Vec<u32>)> {
    if body.len() < 12 {
        return Err(SoupError::parse("predict reply shorter than its header"));
    }
    let version = u64::from_le_bytes(body[..8].try_into().unwrap());
    let count = u32::from_le_bytes(body[8..12].try_into().unwrap()) as usize;
    let rest = &body[12..];
    if rest.len() != 4 * count {
        return Err(SoupError::parse(format!(
            "predict reply declares {count} classes but carries {} bytes",
            rest.len()
        )));
    }
    Ok((
        version,
        rest.chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect(),
    ))
}

fn utf8(bytes: &[u8], what: &str) -> soup_error::Result<String> {
    String::from_utf8(bytes.to_vec()).map_err(|_| SoupError::parse(format!("{what} is not UTF-8")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let cases = vec![
            Request::Ping,
            Request::Predict(vec![0, 7, 42, u32::MAX]),
            Request::Predict(vec![]),
            Request::Stats,
            Request::Swap("/tmp/ck.bin".into()),
            Request::Resoup {
                strategy: "ls".into(),
                dir: "/tmp/pool".into(),
                seed: 42,
            },
            Request::Shutdown,
        ];
        for req in cases {
            assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let cases = vec![
            Response::Ok(encode_predictions(3, &[1, 2, 9])),
            Response::Error("boom".into()),
            Response::Overloaded,
        ];
        for resp in cases {
            assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
        }
    }

    #[test]
    fn predictions_round_trip() {
        let body = encode_predictions(17, &[0, 5, 5, 2]);
        assert_eq!(decode_predictions(&body).unwrap(), (17, vec![0, 5, 5, 2]));
    }

    #[test]
    fn oversized_frame_is_rejected_before_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
        let err = read_frame(&mut bytes.as_slice()).unwrap_err();
        assert_eq!(err.kind(), "parse");
    }

    #[test]
    fn truncated_frame_is_a_clean_io_error() {
        // Declares 100 bytes, carries 3.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&100u32.to_le_bytes());
        bytes.extend_from_slice(b"abc");
        let err = read_frame(&mut bytes.as_slice()).unwrap_err();
        assert_eq!(err.kind(), "io");
    }

    #[test]
    fn garbage_never_panics() {
        // Every short prefix and a few mutations of a valid frame must
        // decode to Err, not panic.
        let valid = encode_request(&Request::Predict(vec![1, 2, 3]));
        for cut in 0..valid.len() {
            let _ = decode_request(&valid[..cut]);
        }
        for i in 0..valid.len() {
            let mut mutated = valid.clone();
            mutated[i] ^= 0xFF;
            let _ = decode_request(&mutated);
        }
        assert!(decode_request(&[]).is_err());
        assert!(decode_request(&[99]).is_err());
        assert!(decode_response(&[]).is_err());
    }

    #[test]
    fn predict_count_mismatch_is_an_error() {
        let mut bad = vec![Opcode::Predict as u8];
        bad.extend_from_slice(&10u32.to_le_bytes()); // claims 10 ids
        bad.extend_from_slice(&7u32.to_le_bytes()); // carries 1
        assert!(decode_request(&bad).is_err());
    }
}
