//! `regress` — the CI bench-regression gate.
//!
//! ```text
//! regress <baseline.json> <fresh.json> [--tolerance F] [--warn-only]
//! ```
//!
//! Compares a freshly generated `BENCH_*.json` sidecar against the
//! committed baseline with [`soup_bench::regress`]'s noise-aware,
//! direction-classified diff. Exits non-zero when any metric moved beyond
//! the tolerance band in its bad direction; `--warn-only` prints the same
//! report but always exits 0 (the first-landing mode while CI baselines
//! settle).

use soup_bench::regress::{diff_files, DEFAULT_TOLERANCE};
use std::path::Path;
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files = Vec::new();
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut warn_only = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tolerance" => {
                tolerance = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("error: --tolerance needs a fractional value (e.g. 0.25)");
                    exit(2);
                });
            }
            "--warn-only" => warn_only = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: regress <baseline.json> <fresh.json> \
                     [--tolerance F] [--warn-only]"
                );
                exit(0);
            }
            other if !other.starts_with("--") => files.push(other.to_string()),
            other => {
                eprintln!("error: unknown flag '{other}'");
                exit(2);
            }
        }
    }
    let [base, fresh] = files.as_slice() else {
        eprintln!("usage: regress <baseline.json> <fresh.json> [--tolerance F] [--warn-only]");
        exit(2);
    };
    let report = match diff_files(Path::new(base), Path::new(fresh), tolerance) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            exit(1);
        }
    };
    print!("{}", report.render());
    if report.has_regressions() {
        if warn_only {
            println!("warn-only: regressions reported but not gating");
        } else {
            eprintln!("error: bench regression detected ({base} -> {fresh})");
            exit(1);
        }
    }
}
