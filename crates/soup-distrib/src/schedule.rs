//! The scheduling model of §III-A.
//!
//! Eq. (1): `T_total ≈ (N/W) · T_single` under dynamic allocation;
//! Eq. (2): `T_min = max_i T_single_i` when `N ≤ W`. The simulator runs
//! greedy list scheduling — exactly what the dynamic task queue implements
//! — so measured makespans can be validated against the analytic model
//! (the `ablation_workers` experiment).

/// Predicted Phase-1 makespan for `n` equal-cost ingredients on `w`
/// workers (Eq. 1, with the exact ceil instead of the paper's continuous
/// approximation).
pub fn predicted_total_time(n: usize, w: usize, t_single: f64) -> f64 {
    assert!(w > 0, "need at least one worker");
    (n as f64 / w as f64).ceil() * t_single
}

/// Predicted makespan when every ingredient gets its own worker (Eq. 2).
pub fn predicted_min_time(task_times: &[f64]) -> f64 {
    task_times.iter().cloned().fold(0.0, f64::max)
}

/// Outcome of simulating the dynamic queue.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleResult {
    /// Total wall-clock until the last worker finishes.
    pub makespan: f64,
    /// Busy time per worker.
    pub per_worker_busy: Vec<f64>,
    /// Which tasks each worker executed, in claim order.
    pub per_worker_tasks: Vec<Vec<usize>>,
}

impl ScheduleResult {
    /// Load imbalance: max busy / mean busy (1.0 = perfect).
    pub fn imbalance(&self) -> f64 {
        let max = self.per_worker_busy.iter().cloned().fold(0.0, f64::max);
        let mean: f64 =
            self.per_worker_busy.iter().sum::<f64>() / self.per_worker_busy.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// Greedy list scheduling: tasks are claimed in order by whichever worker
/// is free first — the behaviour of the shared dynamic task queue.
pub fn simulate_schedule(task_times: &[f64], workers: usize) -> ScheduleResult {
    assert!(workers > 0, "need at least one worker");
    assert!(task_times.iter().all(|&t| t >= 0.0), "negative task time");
    let mut free_at = vec![0.0f64; workers];
    let mut tasks = vec![Vec::new(); workers];
    for (task, &t) in task_times.iter().enumerate() {
        // Earliest-free worker claims the next task (ties: lowest id, which
        // matches an atomic claim race won deterministically in the model).
        let w = (0..workers)
            .min_by(|&a, &b| free_at[a].partial_cmp(&free_at[b]).unwrap())
            .unwrap();
        free_at[w] += t;
        tasks[w].push(task);
    }
    ScheduleResult {
        makespan: free_at.iter().cloned().fold(0.0, f64::max),
        per_worker_busy: free_at,
        per_worker_tasks: tasks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_uniform_tasks() {
        assert_eq!(predicted_total_time(8, 4, 10.0), 20.0);
        assert_eq!(predicted_total_time(9, 4, 10.0), 30.0); // ceil
        assert_eq!(predicted_total_time(4, 8, 10.0), 10.0);
    }

    #[test]
    fn eq2_is_max() {
        assert_eq!(predicted_min_time(&[3.0, 7.0, 5.0]), 7.0);
        assert_eq!(predicted_min_time(&[]), 0.0);
    }

    #[test]
    fn simulation_matches_eq1_for_uniform_tasks() {
        let times = vec![10.0; 8];
        let r = simulate_schedule(&times, 4);
        assert_eq!(r.makespan, predicted_total_time(8, 4, 10.0));
        assert!((r.imbalance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn simulation_matches_eq2_when_n_leq_w() {
        let times = vec![4.0, 9.0, 2.0];
        let r = simulate_schedule(&times, 8);
        assert_eq!(r.makespan, 9.0);
    }

    #[test]
    fn dynamic_allocation_beats_static_blocks_on_skew() {
        // One long task plus many short: dynamic queue fills around it.
        let mut times = vec![1.0; 7];
        times.insert(0, 8.0);
        let r = simulate_schedule(&times, 2);
        // Dynamic: worker A takes the 8.0 task, worker B the seven 1.0s.
        assert_eq!(r.makespan, 8.0);
        // Static half-half split would give 8 + 3 = 11.
        assert!(r.makespan < 11.0);
    }

    #[test]
    fn all_tasks_scheduled_exactly_once() {
        let times: Vec<f64> = (0..20).map(|i| (i % 5) as f64 + 1.0).collect();
        let r = simulate_schedule(&times, 3);
        let mut all: Vec<usize> = r.per_worker_tasks.concat();
        all.sort_unstable();
        assert_eq!(all, (0..20).collect::<Vec<_>>());
        let busy_sum: f64 = r.per_worker_busy.iter().sum();
        assert!((busy_sum - times.iter().sum::<f64>()).abs() < 1e-9);
    }

    #[test]
    fn imbalance_detects_skew() {
        let r = simulate_schedule(&[10.0, 1.0], 2);
        assert!(r.imbalance() > 1.5);
    }

    #[test]
    #[should_panic(expected = "negative task time")]
    fn negative_time_panics() {
        simulate_schedule(&[-1.0], 1);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn makespan_bounds(times in proptest::collection::vec(0.1f64..10.0, 1..40),
                               workers in 1usize..8) {
                let r = simulate_schedule(&times, workers);
                let total: f64 = times.iter().sum();
                let max = times.iter().cloned().fold(0.0, f64::max);
                // Classic list-scheduling bounds.
                prop_assert!(r.makespan >= max - 1e-9);
                prop_assert!(r.makespan >= total / workers as f64 - 1e-9);
                prop_assert!(r.makespan <= total / workers as f64 + max + 1e-9);
            }

            #[test]
            fn more_workers_never_hurt(times in proptest::collection::vec(0.1f64..10.0, 1..30)) {
                let a = simulate_schedule(&times, 2).makespan;
                let b = simulate_schedule(&times, 4).makespan;
                prop_assert!(b <= a + 1e-9);
            }
        }
    }
}
