//! Ingredient-diversity diagnostics.
//!
//! §VIII (future work): *"There is also a possibility that the notion of
//! diversity which is known so well in the field of model ensembles could
//! be useful for the preparation of soups."* This module provides the two
//! standard diversity views for a trained ingredient pool:
//!
//! - **weight-space diversity**: pairwise L2 distances between parameter
//!   sets (the loss-landscape spread souping interpolates over);
//! - **functional diversity**: pairwise prediction disagreement on a node
//!   subset (the ensemble-style notion).
//!
//! The paper's §V-A observation — GAT/Reddit ingredients were
//! "uncharacteristically similar" (std 0.06%), making the *uninformed* US
//! strategy win — is exactly the regime these diagnostics detect.

use crate::ingredient::{validate_ingredients, Ingredient};
use soup_gnn::model::PropOps;
use soup_gnn::{predict, ModelConfig};
use soup_graph::Dataset;

/// Symmetric matrix of pairwise L2 distances between ingredient weights.
#[allow(clippy::needless_range_loop)] // symmetric-matrix fill reads clearest indexed
pub fn pairwise_param_distance(ingredients: &[Ingredient]) -> Vec<Vec<f32>> {
    validate_ingredients(ingredients);
    let n = ingredients.len();
    let mut d = vec![vec![0.0f32; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let dist = ingredients[i].params.l2_distance(&ingredients[j].params);
            d[i][j] = dist;
            d[j][i] = dist;
        }
    }
    d
}

/// Mean off-diagonal value of a symmetric matrix.
#[allow(clippy::needless_range_loop)] // symmetric-matrix walk reads clearest indexed
pub fn mean_offdiagonal(matrix: &[Vec<f32>]) -> f64 {
    let n = matrix.len();
    if n < 2 {
        return 0.0;
    }
    let mut total = 0.0f64;
    let mut count = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            total += matrix[i][j] as f64;
            count += 1;
        }
    }
    total / count as f64
}

/// Pairwise prediction-disagreement matrix over the nodes in `mask`:
/// entry `(i, j)` is the fraction of masked nodes where ingredients `i`
/// and `j` predict different classes.
#[allow(clippy::needless_range_loop)] // symmetric-matrix fill reads clearest indexed
pub fn prediction_disagreement(
    ingredients: &[Ingredient],
    dataset: &Dataset,
    cfg: &ModelConfig,
    mask: &[usize],
) -> Vec<Vec<f64>> {
    validate_ingredients(ingredients);
    assert!(!mask.is_empty(), "disagreement over empty mask");
    let ops = PropOps::prepare(cfg.arch, &dataset.graph);
    let preds: Vec<Vec<usize>> = ingredients
        .iter()
        .map(|ing| predict(cfg, &ops, &ing.params, &dataset.features))
        .collect();
    let n = ingredients.len();
    let mut d = vec![vec![0.0f64; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let diff = mask.iter().filter(|&&v| preds[i][v] != preds[j][v]).count();
            let frac = diff as f64 / mask.len() as f64;
            d[i][j] = frac;
            d[j][i] = frac;
        }
    }
    d
}

/// Summary statistics of an ingredient pool.
#[derive(Debug, Clone, PartialEq)]
pub struct DiversityReport {
    /// Mean pairwise L2 weight distance.
    pub mean_weight_distance: f64,
    /// Mean pairwise prediction disagreement on the validation split.
    pub mean_disagreement: f64,
    /// Standard deviation of ingredient validation accuracies — the §V-A
    /// statistic (0.06% for the GAT/Reddit pool where US won).
    pub val_acc_std: f64,
}

/// Compute a full diversity report for a pool.
pub fn diversity_report(
    ingredients: &[Ingredient],
    dataset: &Dataset,
    cfg: &ModelConfig,
) -> DiversityReport {
    let weight = pairwise_param_distance(ingredients);
    let disagreement = prediction_disagreement(ingredients, dataset, cfg, &dataset.splits.val);
    let accs: Vec<f64> = ingredients.iter().map(|i| i.val_accuracy).collect();
    let (_, std) = soup_graph::metrics::mean_std(&accs);
    DiversityReport {
        mean_weight_distance: mean_offdiagonal(&weight),
        mean_disagreement: mean_offdiagonal(
            &disagreement
                .iter()
                .map(|r| r.iter().map(|&x| x as f32).collect())
                .collect::<Vec<_>>(),
        ),
        val_acc_std: std,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soup_gnn::model::init_params;
    use soup_gnn::{train_single, TrainConfig};
    use soup_graph::DatasetKind;
    use soup_tensor::SplitMix64;

    fn pool(n: usize, epochs_each: &[usize]) -> (Dataset, ModelConfig, Vec<Ingredient>) {
        let d = DatasetKind::Flickr.generate_scaled(31, 0.15);
        let cfg = ModelConfig::gcn(d.num_features(), d.num_classes()).with_hidden(12);
        let mut rng = SplitMix64::new(31);
        let init = init_params(&cfg, &mut rng);
        let ingredients = (0..n)
            .map(|i| {
                let tc = TrainConfig {
                    epochs: epochs_each[i % epochs_each.len()],
                    ..TrainConfig::quick()
                };
                let tm = train_single(&d, &cfg, &tc, &init, 300 + i as u64);
                Ingredient::new(i, tm.params, tm.val_accuracy, 300 + i as u64)
            })
            .collect();
        (d, cfg, ingredients)
    }

    #[test]
    fn distance_matrix_is_symmetric_with_zero_diagonal() {
        let (_, _, ingredients) = pool(3, &[10]);
        let d = pairwise_param_distance(&ingredients);
        #[allow(clippy::needless_range_loop)]
        for i in 0..3 {
            assert_eq!(d[i][i], 0.0);
            for j in 0..3 {
                assert_eq!(d[i][j], d[j][i]);
            }
        }
        assert!(d[0][1] > 0.0);
    }

    #[test]
    fn identical_ingredients_have_zero_diversity() {
        let (d, cfg, ingredients) = pool(1, &[8]);
        let clones: Vec<Ingredient> = (0..3)
            .map(|i| Ingredient::new(i, ingredients[0].params.clone(), 0.5, 0))
            .collect();
        let report = diversity_report(&clones, &d, &cfg);
        assert_eq!(report.mean_weight_distance, 0.0);
        assert_eq!(report.mean_disagreement, 0.0);
        assert_eq!(report.val_acc_std, 0.0);
    }

    #[test]
    fn disagreement_in_unit_range_and_consistent() {
        let (d, cfg, ingredients) = pool(3, &[5, 15]);
        let m = prediction_disagreement(&ingredients, &d, &cfg, &d.splits.val);
        for row in &m {
            for &v in row {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn mixed_training_lengths_increase_diversity() {
        // Pools trained for very different lengths should be more diverse
        // than pools trained identically (up to seed noise).
        let (d, cfg, uniform) = pool(4, &[12]);
        let (_, _, mixed) = pool(4, &[2, 25]);
        let ru = diversity_report(&uniform, &d, &cfg);
        let rm = diversity_report(&mixed, &d, &cfg);
        assert!(
            rm.mean_weight_distance > ru.mean_weight_distance,
            "mixed {} <= uniform {}",
            rm.mean_weight_distance,
            ru.mean_weight_distance
        );
    }

    #[test]
    fn mean_offdiagonal_basics() {
        let m = vec![
            vec![0.0, 2.0, 4.0],
            vec![2.0, 0.0, 6.0],
            vec![4.0, 6.0, 0.0],
        ];
        assert!((mean_offdiagonal(&m) - 4.0).abs() < 1e-9);
        assert_eq!(mean_offdiagonal(&[vec![0.0]]), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty mask")]
    fn empty_mask_panics() {
        let (d, cfg, ingredients) = pool(2, &[5]);
        prediction_disagreement(&ingredients, &d, &cfg, &[]);
    }
}
