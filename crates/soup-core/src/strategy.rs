//! The common souping interface and its measurement harness.
//!
//! Every algorithm runs inside [`measure_soup`], which wraps the mixing
//! phase in a wall-clock timer and a [`soup_tensor::MemoryScope`] — the
//! *measured* quantities behind Table III (time) and Fig. 4b (memory).
//! Validation/test accuracy of the finished soup is evaluated *outside*
//! the measured region so that all strategies are compared on the cost of
//! mixing alone (the paper does the same: US's memory is excluded from
//! Fig. 4b because it needs no forward passes at all, §V-C).

use crate::ingredient::Ingredient;
use crate::resume::Phase2Persist;
use soup_gnn::model::PropOps;
use soup_gnn::{evaluate_accuracy, ModelConfig, ParamSet};
use soup_graph::Dataset;
use soup_partition::Partitioning;
use soup_tensor::memory::MemoryScope;
use std::time::{Duration, Instant};

/// Resource measurements of one souping run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoupStats {
    /// Wall-clock time of the mixing phase.
    pub wall_time: Duration,
    /// Peak device memory added during mixing (bytes above baseline).
    pub peak_mem_bytes: usize,
    /// Full-graph-equivalent forward passes performed (complexity model).
    /// Forwards that consumed a cached aggregation still count — the
    /// paper's `F_v` is a unit of work requested, not of SpMMs executed.
    pub forward_passes: usize,
    /// Optimisation epochs run (0 for search-based strategies).
    pub epochs: usize,
    /// SpMMs avoided by the Phase-2 evaluation engine (aggregation /
    /// subgraph caching), net of cache-build cost.
    pub spmm_saved: usize,
}

/// What a strategy's mixing closure reports back to [`measure_soup`].
#[derive(Debug, Clone)]
pub struct MixReport {
    /// The mixed parameters.
    pub params: ParamSet,
    /// Forward passes performed (cached ones included).
    pub forward_passes: usize,
    /// Optimisation epochs run.
    pub epochs: usize,
    /// Net SpMMs avoided via caching.
    pub spmm_saved: usize,
}

/// The result of souping a set of ingredients.
#[derive(Debug, Clone)]
pub struct SoupOutcome {
    /// The mixed model.
    pub params: ParamSet,
    /// Accuracy of the soup on the full validation split.
    pub val_accuracy: f64,
    /// Resource usage of the mixing phase.
    pub stats: SoupStats,
    /// Ordinals absent from the ingredient pool (gaps in `0..=max_id`) —
    /// non-empty when a fault-degraded Phase 1 delivered only `R' < R`
    /// ingredients and the soup was mixed from the survivors.
    pub missing: Vec<usize>,
}

impl SoupOutcome {
    /// Whether this soup was mixed from a partial ingredient set.
    pub fn is_degraded(&self) -> bool {
        !self.missing.is_empty()
    }
}

/// Ordinals missing from an ingredient pool: the gaps in `0..=max_id`.
/// A contiguous pool (the fault-free case) has none.
pub fn missing_ordinals(ingredients: &[Ingredient]) -> Vec<usize> {
    let Some(max_id) = ingredients.iter().map(|i| i.id).max() else {
        return Vec::new();
    };
    let mut present = vec![false; max_id + 1];
    for ing in ingredients {
        present[ing.id] = true;
    }
    (0..=max_id).filter(|&id| !present[id]).collect()
}

/// Everything a souping run consumes, bundled so every strategy exposes
/// one uniform entry point ([`SoupStrategy::try_soup`]) instead of the
/// divergent inherent signatures LS and PLS historically grew.
///
/// The required fields come from [`SoupCtx::new`]; the optional extras —
/// Phase-2 durability and a precomputed partitioning — are layered on with
/// the builder methods. Strategies that cannot honour an extra reject it
/// with [`soup_error::SoupError::Usage`] rather than silently dropping it
/// (except `partitioning`, which is documented as PLS-only preprocessing
/// and ignored by the full-graph strategies).
pub struct SoupCtx<'a> {
    /// The ingredient pool to mix.
    pub ingredients: &'a [Ingredient],
    /// Dataset supplying the validation signal (and test split later).
    pub dataset: &'a Dataset,
    /// Architecture the ingredients were trained with.
    pub cfg: &'a ModelConfig,
    /// Seed driving all of the strategy's internal randomness.
    pub seed: u64,
    /// Phase-2 durability: checkpoint the optimizer state through the
    /// crash-safe store and/or resume from it (LS/PLS only).
    pub persist: Option<&'a Phase2Persist>,
    /// A partitioning computed ahead of time, so repeated PLS soups on one
    /// dataset can amortise the preprocessing (PLS only; other strategies
    /// never consume it).
    pub partitioning: Option<&'a Partitioning>,
}

impl<'a> SoupCtx<'a> {
    /// A context with no optional extras — what [`SoupStrategy::soup`]
    /// builds internally.
    pub fn new(
        ingredients: &'a [Ingredient],
        dataset: &'a Dataset,
        cfg: &'a ModelConfig,
        seed: u64,
    ) -> Self {
        Self {
            ingredients,
            dataset,
            cfg,
            seed,
            persist: None,
            partitioning: None,
        }
    }

    /// Attach Phase-2 durability (LS/PLS).
    pub fn with_persist(mut self, persist: &'a Phase2Persist) -> Self {
        self.persist = Some(persist);
        self
    }

    /// Attach an optional persistence handle (convenience for callers that
    /// already hold an `Option`).
    pub fn with_persist_opt(mut self, persist: Option<&'a Phase2Persist>) -> Self {
        self.persist = persist;
        self
    }

    /// Attach a precomputed partitioning (PLS).
    pub fn with_partitioning(mut self, partitioning: &'a Partitioning) -> Self {
        self.partitioning = Some(partitioning);
        self
    }
}

/// A souping algorithm.
///
/// [`Self::try_soup`] is the single fallible entry point every strategy
/// implements; [`Self::soup`] is the infallible convenience wrapper for
/// plain, non-persistent runs and keeps the historical 4-argument shape.
pub trait SoupStrategy {
    /// Short display name ("US", "GIS", "LS", "PLS", ...).
    fn name(&self) -> &'static str;

    /// Mix `ctx.ingredients` into a single model. Returns `Ok(None)` only
    /// for a deliberate mid-run stop requested through
    /// [`Phase2Persist::stop_after`] (the simulated-kill path); a completed
    /// mix is `Ok(Some(outcome))` and real failures (storage, numeric
    /// watchdog, unsupported context extras) surface as `Err`.
    fn try_soup(&self, ctx: &SoupCtx<'_>) -> crate::Result<Option<SoupOutcome>>;

    /// Infallible non-persistent wrapper around [`Self::try_soup`]. `seed`
    /// drives all of the strategy's internal randomness.
    fn soup(
        &self,
        ingredients: &[Ingredient],
        dataset: &Dataset,
        cfg: &ModelConfig,
        seed: u64,
    ) -> SoupOutcome {
        self.try_soup(&SoupCtx::new(ingredients, dataset, cfg, seed))
            .expect("souping without persistence cannot hit storage errors")
            .expect("souping without persistence never stops early")
    }
}

/// Reject context extras a strategy does not support — the shared guard
/// for the full-graph strategies (US/Greedy/GIS), which have no optimizer
/// state to persist. Accepting-and-ignoring `--resume` would silently
/// recompute from scratch, so it is an error instead.
pub(crate) fn reject_persist(ctx: &SoupCtx<'_>, name: &str) -> crate::Result<()> {
    if ctx.persist.is_some() {
        return Err(soup_error::SoupError::usage(format!(
            "{name} has no phase-2 optimizer state to persist — \
             durability options apply to LS/PLS only"
        )));
    }
    Ok(())
}

/// Declarative strategy selection shared by `soupctl soup` and the serving
/// layer's re-soup path: name + the hyperparameters the CLI exposes,
/// buildable into a boxed [`SoupStrategy`].
#[derive(Debug, Clone)]
pub struct StrategySpec {
    /// Lowercase CLI name: `us`, `greedy`, `gis`, `ls`, `pls`.
    pub name: String,
    /// LS/PLS optimisation epochs.
    pub epochs: usize,
    /// GIS interpolation-grid granularity.
    pub granularity: usize,
    /// PLS partition count `K`.
    pub pls_k: usize,
    /// PLS per-epoch partition budget `R`.
    pub pls_r: usize,
}

impl StrategySpec {
    /// A spec with the CLI's default hyperparameters.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            epochs: 50,
            granularity: 20,
            pls_k: 16,
            pls_r: 4,
        }
    }

    /// Instantiate the named strategy, or a usage error for unknown names.
    pub fn build(&self) -> crate::Result<Box<dyn SoupStrategy>> {
        if matches!(self.name.as_str(), "ls" | "pls") && self.epochs == 0 {
            return Err(soup_error::SoupError::usage(
                "--epochs must be >= 1 for ls|pls",
            ));
        }
        let hyper = crate::learned::LearnedHyper {
            epochs: self.epochs,
            ..Default::default()
        };
        Ok(match self.name.as_str() {
            "us" => Box::new(crate::uniform::UniformSouping),
            "greedy" => Box::new(crate::greedy::GreedySouping),
            "gis" => {
                if self.granularity < 2 {
                    return Err(soup_error::SoupError::usage(
                        "--granularity must be >= 2 (both interpolation endpoints)",
                    ));
                }
                Box::new(crate::gis::GisSouping::new(self.granularity))
            }
            "ls" => Box::new(crate::learned::LearnedSouping::new(hyper)),
            "pls" => {
                if self.pls_k < 1 || self.pls_r < 1 || self.pls_r > self.pls_k {
                    return Err(soup_error::SoupError::usage(format!(
                        "PLS needs 1 <= R <= K (got R={}, K={})",
                        self.pls_r, self.pls_k
                    )));
                }
                Box::new(crate::pls::PartitionLearnedSouping::new(
                    hyper, self.pls_k, self.pls_r,
                ))
            }
            other => {
                return Err(soup_error::SoupError::usage(format!(
                    "unknown strategy '{other}' (expected us|greedy|gis|ls|pls)"
                )))
            }
        })
    }
}

/// Run `mix` under time/memory measurement, then evaluate the resulting
/// parameters on the full validation split.
///
/// `ingredients` is the pool being mixed; the outcome records which
/// ordinals (if any) are missing from it, so degraded soups — mixed from
/// the survivors of a faulty Phase 1 — carry that provenance.
pub fn measure_soup(
    ingredients: &[Ingredient],
    dataset: &Dataset,
    cfg: &ModelConfig,
    mix: impl FnOnce() -> MixReport,
) -> SoupOutcome {
    measure_soup_try(ingredients, dataset, cfg, || Ok(Some(mix())))
        .expect("infallible mixing closure")
        .expect("non-stopping mixing closure")
}

/// Fallible, stoppable variant of [`measure_soup`] for resumable mixing
/// loops: the closure may fail (numeric watchdog exhausted, storage error)
/// or report a deliberate mid-run stop (`Ok(None)`, the simulated-kill
/// path of [`crate::resume::Phase2Persist::stop_after`]). Accuracy is only
/// evaluated for completed mixes.
pub fn measure_soup_try(
    ingredients: &[Ingredient],
    dataset: &Dataset,
    cfg: &ModelConfig,
    mix: impl FnOnce() -> crate::Result<Option<MixReport>>,
) -> crate::Result<Option<SoupOutcome>> {
    let missing = missing_ordinals(ingredients);
    if !missing.is_empty() {
        soup_obs::counter!("soup.degraded_runs").inc();
        soup_obs::warn!(
            "souping a degraded ingredient set: {} of {} ordinals missing {missing:?}",
            missing.len(),
            ingredients.len() + missing.len()
        );
    }
    let scope = MemoryScope::start();
    let start = Instant::now();
    let report = {
        let _mix_span = soup_obs::span!("soup.mix");
        mix()
    };
    let MixReport {
        params,
        forward_passes,
        epochs,
        spmm_saved,
    } = match report {
        Ok(Some(r)) => r,
        Ok(None) => {
            scope.finish();
            soup_obs::counter!("soup.phase2.stopped_runs").inc();
            return Ok(None);
        }
        Err(e) => {
            scope.finish();
            return Err(e);
        }
    };
    let wall_time = start.elapsed();
    let mem = scope.finish();
    soup_obs::counter!("soup.forward_passes").add(forward_passes as u64);
    soup_obs::counter!("soup.spmm_saved").add(spmm_saved as u64);
    soup_obs::gauge!("soup.last_peak_mem_bytes").set(mem.peak_delta_bytes as f64);
    soup_obs::trace_event!("soup.measured",
        "wall_s" => wall_time.as_secs_f64(),
        "peak_mem_bytes" => mem.peak_delta_bytes as u64,
        "forward_passes" => forward_passes as u64,
        "epochs" => epochs as u64,
        "spmm_saved" => spmm_saved as u64,
        "missing" => missing.len() as u64);

    let ops = PropOps::prepare(cfg.arch, &dataset.graph);
    let val_accuracy = evaluate_accuracy(
        cfg,
        &ops,
        &params,
        &dataset.features,
        &dataset.labels,
        &dataset.splits.val,
    );
    Ok(Some(SoupOutcome {
        params,
        val_accuracy,
        stats: SoupStats {
            wall_time,
            peak_mem_bytes: mem.peak_delta_bytes,
            forward_passes,
            epochs,
            spmm_saved,
        },
        missing,
    }))
}

/// Evaluate a finished soup on the test split (the number Table II
/// reports).
pub fn test_accuracy(outcome: &SoupOutcome, dataset: &Dataset, cfg: &ModelConfig) -> f64 {
    let ops = PropOps::prepare(cfg.arch, &dataset.graph);
    evaluate_accuracy(
        cfg,
        &ops,
        &outcome.params,
        &dataset.features,
        &dataset.labels,
        &dataset.splits.test,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use soup_gnn::model::init_params;
    use soup_graph::DatasetKind;
    use soup_tensor::SplitMix64;

    #[test]
    fn measure_soup_reports_resources() {
        let d = DatasetKind::Flickr.generate_scaled(1, 0.15);
        let cfg = ModelConfig::gcn(d.num_features(), d.num_classes()).with_hidden(8);
        let mut rng = SplitMix64::new(1);
        let params = init_params(&cfg, &mut rng);
        let outcome = measure_soup(&[], &d, &cfg, || {
            // Simulate a mixing phase that allocates something measurable.
            let tmp = soup_tensor::Tensor::zeros(256, 256);
            drop(tmp);
            MixReport {
                params: params.clone(),
                forward_passes: 3,
                epochs: 2,
                spmm_saved: 1,
            }
        });
        assert!(outcome.stats.peak_mem_bytes >= 256 * 256 * 4);
        assert_eq!(outcome.stats.forward_passes, 3);
        assert_eq!(outcome.stats.epochs, 2);
        assert_eq!(outcome.stats.spmm_saved, 1);
        assert!((0.0..=1.0).contains(&outcome.val_accuracy));
        assert!(!outcome.is_degraded());
    }

    #[test]
    fn missing_ordinals_finds_gaps() {
        let d = DatasetKind::Flickr.generate_scaled(3, 0.15);
        let cfg = ModelConfig::gcn(d.num_features(), d.num_classes()).with_hidden(8);
        let mut rng = SplitMix64::new(3);
        let p = init_params(&cfg, &mut rng);
        let pool: Vec<Ingredient> = [0usize, 1, 4]
            .iter()
            .map(|&id| Ingredient::new(id, p.clone(), 0.5, id as u64))
            .collect();
        assert_eq!(missing_ordinals(&pool), vec![2, 3]);
        assert_eq!(missing_ordinals(&[]), Vec::<usize>::new());
        let outcome = measure_soup(&pool, &d, &cfg, || MixReport {
            params: p.clone(),
            forward_passes: 0,
            epochs: 0,
            spmm_saved: 0,
        });
        assert_eq!(outcome.missing, vec![2, 3]);
        assert!(outcome.is_degraded());
    }

    #[test]
    fn test_accuracy_differs_from_val_split() {
        let d = DatasetKind::Flickr.generate_scaled(2, 0.15);
        let cfg = ModelConfig::gcn(d.num_features(), d.num_classes()).with_hidden(8);
        let mut rng = SplitMix64::new(2);
        let params = init_params(&cfg, &mut rng);
        let outcome = measure_soup(&[], &d, &cfg, || MixReport {
            params,
            forward_passes: 0,
            epochs: 0,
            spmm_saved: 0,
        });
        let t = test_accuracy(&outcome, &d, &cfg);
        assert!((0.0..=1.0).contains(&t));
    }
}
