//! §VI-A ablation: LS base-learning-rate sensitivity.
//!
//! The paper observes that "relatively large base learning rates often
//! yielded the best results" and that performance varies significantly
//! when hyperparameters deviate. This sweep reproduces the shape.
//!
//! Usage: `cargo run -p soup-bench --release --bin ablation_lr [preset]`

use soup_bench::harness::{model_config, write_csv, ExperimentPreset};
use soup_core::strategy::test_accuracy;
use soup_core::{Ingredient, LearnedHyper, LearnedSouping, SoupStrategy};
use soup_gnn::model::init_params;
use soup_gnn::{train_single, Arch, TrainConfig};
use soup_graph::DatasetKind;
use soup_tensor::SplitMix64;

fn main() {
    let preset = ExperimentPreset::from_args();
    let dataset = DatasetKind::OgbnArxiv.generate_scaled(42, preset.dataset_scale);
    let cfg = model_config(Arch::Gcn, &dataset);
    // Mixed-quality pool: LR sensitivity only shows when the α's have real
    // work to do (separating strong from weak ingredients).
    let mut rng = SplitMix64::new(42);
    let init = init_params(&cfg, &mut rng);
    let ingredients: Vec<Ingredient> = (0..preset.ingredients.max(6))
        .map(|i| {
            let epochs = if i % 3 == 0 { 3 } else { preset.train_epochs };
            let tc = TrainConfig {
                epochs,
                early_stop_patience: None,
                ..TrainConfig::quick()
            };
            let tm = train_single(&dataset, &cfg, &tc, &init, 600 + i as u64);
            Ingredient::new(i, tm.params, tm.val_accuracy, 600 + i as u64)
        })
        .collect();
    println!(
        "ABLATION LS base LR (ogbn-arxiv/GCN, mixed-quality pool, preset '{}', {} ingredients)",
        preset.name,
        ingredients.len()
    );
    println!("{:>8} {:>10} {:>10}", "base_lr", "test acc", "val acc");
    let mut rows = Vec::new();
    for lr in [0.01f32, 0.05, 0.1, 0.5, 1.0, 2.0, 5.0] {
        let hyper = LearnedHyper {
            epochs: preset.learned_epochs,
            base_lr: lr,
            ..Default::default()
        };
        let outcome = LearnedSouping::new(hyper).soup(&ingredients, &dataset, &cfg, 11);
        let acc = test_accuracy(&outcome, &dataset, &cfg);
        println!(
            "{lr:>8} {:>9.2}% {:>9.2}%",
            acc * 100.0,
            outcome.val_accuracy * 100.0
        );
        rows.push(format!("{lr},{acc:.4},{:.4}", outcome.val_accuracy));
    }
    let _ = write_csv("ablation_lr", "base_lr,test_acc,val_acc", &rows)
        .map(|p| soup_obs::info!("wrote {}", p.display()));
    soup_bench::harness::finish_observability();
}
