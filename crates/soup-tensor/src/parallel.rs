//! Shared kernel-dispatch tunables: the parallelism cutoff and the runtime
//! SIMD capability probe.
//!
//! Every rayon-parallel kernel in this crate asks the same question:
//! "is there enough work to amortise task spawning?" Historically the
//! dense kernels used `16 * 1024` output elements while SpMM hardcoded
//! `8192`; this module hoists one tunable used by both paths.
//!
//! The cutoff can be overridden per-process with the `SOUP_PAR_THRESHOLD`
//! environment variable (a number of output elements; `0` means "always
//! parallel"). The variable is read once, on first use — set it before the
//! first kernel call.

use std::sync::OnceLock;

/// Whether this x86-64 CPU supports AVX2 and FMA, probed once. The hot
/// kernels (GEMM microkernel, SpMM edge loop) carry `#[target_feature]`
/// variants selected through this check, so portable baseline builds still
/// use wide vectors on machines that have them. Override with
/// `SOUP_NO_SIMD=1` to force the baseline-ISA kernels (useful for A/B
/// measurements).
#[cfg(target_arch = "x86_64")]
#[inline]
pub fn cpu_has_avx2_fma() -> bool {
    static CACHED: OnceLock<bool> = OnceLock::new();
    *CACHED.get_or_init(|| {
        if std::env::var("SOUP_NO_SIMD").is_ok_and(|v| v == "1") {
            return false;
        }
        is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
    })
}

/// Non-x86-64 targets have no runtime-dispatched kernel variants.
#[cfg(not(target_arch = "x86_64"))]
#[inline]
pub fn cpu_has_avx2_fma() -> bool {
    false
}

/// Default minimum work (output elements) before a kernel goes parallel.
pub const DEFAULT_PAR_THRESHOLD: usize = 16 * 1024;

/// Minimum work (output elements) before a kernel bothers going parallel;
/// below this, rayon's task overhead outweighs the win. Honors the
/// `SOUP_PAR_THRESHOLD` environment variable on first call.
#[inline]
pub fn par_threshold() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| {
        std::env::var("SOUP_PAR_THRESHOLD")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(DEFAULT_PAR_THRESHOLD)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_historic_dense_cutoff() {
        // The env var is deliberately not set in the test environment, so
        // the cached value must be the documented default.
        assert_eq!(par_threshold(), DEFAULT_PAR_THRESHOLD);
        assert_eq!(par_threshold(), 16 * 1024);
    }
}
