//! Criterion counterpart of Table III / Fig. 4a: wall-clock of the four
//! souping strategies on one prepared ingredient pool (flickr / GCN at
//! bench scale). The ingredient pool is trained once outside the measured
//! region; each iteration measures the souping phase alone — exactly what
//! Table III reports.

use criterion::{criterion_group, criterion_main, Criterion};
use soup_bench::harness::{model_config, train_pool, ExperimentPreset};
use soup_core::{
    GisSouping, LearnedHyper, LearnedSouping, PartitionLearnedSouping, SoupStrategy, UniformSouping,
};
use soup_gnn::Arch;
use soup_graph::DatasetKind;

fn bench_strategies(c: &mut Criterion) {
    let mut preset = ExperimentPreset::quick();
    preset.train_epochs = 10;
    let dataset = DatasetKind::Flickr.generate_scaled(42, preset.dataset_scale);
    let cfg = model_config(Arch::Gcn, &dataset);
    let ingredients = train_pool(&dataset, &cfg, &preset, 42);

    let hyper = LearnedHyper {
        epochs: preset.learned_epochs,
        ..Default::default()
    };
    let mut group = c.benchmark_group("souping_flickr_gcn");
    group.sample_size(10);

    group.bench_function("US", |b| {
        b.iter(|| std::hint::black_box(UniformSouping.soup(&ingredients, &dataset, &cfg, 1)))
    });
    group.bench_function("GIS", |b| {
        b.iter(|| {
            std::hint::black_box(GisSouping::new(preset.gis_granularity).soup(
                &ingredients,
                &dataset,
                &cfg,
                1,
            ))
        })
    });
    group.bench_function("LS", |b| {
        b.iter(|| {
            std::hint::black_box(LearnedSouping::new(hyper).soup(&ingredients, &dataset, &cfg, 1))
        })
    });
    group.bench_function("PLS", |b| {
        b.iter(|| {
            std::hint::black_box(
                PartitionLearnedSouping::new(hyper, preset.pls_k, preset.pls_r).soup(
                    &ingredients,
                    &dataset,
                    &cfg,
                    1,
                ),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
