//! Uniform Souping (US): parameter-average of all ingredients.
//!
//! The "uninformed" baseline (§II-B): it never looks at the validation set,
//! so mixing is one pass of axpy over the parameter tensors — nearly always
//! the fastest strategy in Table III but usually the least accurate in
//! Table II.

use crate::ingredient::validate_ingredients;
use crate::strategy::{
    measure_soup_try, reject_persist, MixReport, SoupCtx, SoupOutcome, SoupStrategy,
};
use soup_gnn::ParamSet;

/// Uniform Souping configuration (none needed).
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformSouping;

impl SoupStrategy for UniformSouping {
    fn name(&self) -> &'static str {
        "US"
    }

    fn try_soup(&self, ctx: &SoupCtx<'_>) -> crate::Result<Option<SoupOutcome>> {
        reject_persist(ctx, self.name())?;
        let ingredients = ctx.ingredients;
        validate_ingredients(ingredients);
        // Partial pools degrade gracefully: the average renormalises over
        // however many ingredients survived (1/R' each).
        measure_soup_try(ingredients, ctx.dataset, ctx.cfg, || {
            let sets: Vec<&ParamSet> = ingredients.iter().map(|i| &i.params).collect();
            Ok(Some(MixReport {
                params: ParamSet::average(&sets),
                forward_passes: 0,
                epochs: 0,
                spmm_saved: 0,
            }))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingredient::Ingredient;
    use soup_gnn::model::init_params;
    use soup_gnn::ModelConfig;
    use soup_graph::{Dataset, DatasetKind};
    use soup_tensor::SplitMix64;

    fn make_ingredients(n: usize, _d: &Dataset, cfg: &ModelConfig) -> Vec<Ingredient> {
        let mut init_rng = SplitMix64::new(7);
        let shared = init_params(cfg, &mut init_rng);
        (0..n)
            .map(|i| {
                // Perturb the shared init a little per ingredient.
                let mut p = shared.clone();
                let mut rng = SplitMix64::new(100 + i as u64);
                for layer in &mut p.layers {
                    for t in &mut layer.tensors {
                        let noise = soup_tensor::Tensor::randn(t.rows(), t.cols(), 0.01, &mut rng);
                        t.axpy(1.0, &noise);
                    }
                }
                Ingredient::new(i, p, 0.5, i as u64)
            })
            .collect()
    }

    #[test]
    fn average_of_identical_ingredients_is_identity() {
        let d = DatasetKind::Flickr.generate_scaled(1, 0.15);
        let cfg = ModelConfig::gcn(d.num_features(), d.num_classes()).with_hidden(8);
        let mut rng = SplitMix64::new(1);
        let p = init_params(&cfg, &mut rng);
        let ingredients: Vec<Ingredient> = (0..3)
            .map(|i| Ingredient::new(i, p.clone(), 0.5, 0))
            .collect();
        let outcome = UniformSouping.soup(&ingredients, &d, &cfg, 0);
        for (a, b) in outcome.params.flat().zip(p.flat()) {
            assert!(a.allclose(b, 1e-6));
        }
    }

    #[test]
    fn no_forward_passes_counted() {
        let d = DatasetKind::Flickr.generate_scaled(2, 0.15);
        let cfg = ModelConfig::gcn(d.num_features(), d.num_classes()).with_hidden(8);
        let ingredients = make_ingredients(4, &d, &cfg);
        let outcome = UniformSouping.soup(&ingredients, &d, &cfg, 0);
        assert_eq!(outcome.stats.forward_passes, 0);
        assert_eq!(outcome.stats.epochs, 0);
    }

    #[test]
    fn soup_shape_matches_ingredients() {
        let d = DatasetKind::Flickr.generate_scaled(3, 0.15);
        let cfg = ModelConfig::sage(d.num_features(), d.num_classes()).with_hidden(8);
        let ingredients = make_ingredients(3, &d, &cfg);
        let outcome = UniformSouping.soup(&ingredients, &d, &cfg, 0);
        assert!(outcome.params.same_shape(&ingredients[0].params));
    }
}
