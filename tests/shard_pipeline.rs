//! Multi-process sharded pipeline, end to end through the `soupctl`
//! binary: generate an out-of-core dataset, partition it, run K worker
//! processes through Phase-1 + souping, and audit the artifacts — plus
//! the two determinism guarantees the shard layer makes: runs are
//! bit-identical across repetitions at a fixed seed, and the shared-map
//! halo fast path produces exactly what the socket path produces.

use enhanced_soups::distrib::ShardResult;
use enhanced_soups::gnn::load_checkpoint;
use enhanced_soups::graph::mmap::{save_mmap_dataset, MmapDataset};
use enhanced_soups::graph::DatasetKind;
use std::path::{Path, PathBuf};
use std::process::Command;

fn soupctl() -> Command {
    Command::new(env!("CARGO_BIN_EXE_soupctl"))
}

fn run_ok(cmd: &mut Command) -> String {
    let out = cmd.output().expect("spawn soupctl");
    assert!(
        out.status.success(),
        "soupctl failed ({}):\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("soup-shardpipe-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn generate_mmap(dir: &Path) -> PathBuf {
    let ds = dir.join("ds.gmm");
    run_ok(soupctl().args([
        "generate",
        "--dataset",
        "flickr",
        "--scale",
        "0.08",
        "--seed",
        "33",
        "--mmap",
        "--out",
        ds.to_str().unwrap(),
    ]));
    ds
}

/// One small K=2 sharded run; returns its out-dir.
fn shard_run(ds: &Path, out_dir: &Path, extra_env: &[(&str, &str)]) -> String {
    let mut cmd = soupctl();
    cmd.args([
        "shard",
        "--data",
        ds.to_str().unwrap(),
        "--k",
        "2",
        "--out-dir",
        out_dir.to_str().unwrap(),
        "--ingredients",
        "2",
        "--epochs",
        "4",
        "--hidden",
        "8",
        "--strategy",
        "pls",
        "--soup-epochs",
        "3",
        "--pls-k",
        "4",
        "--pls-r",
        "2",
        "--seed",
        "7",
    ]);
    for (k, v) in extra_env {
        cmd.env(k, v);
    }
    run_ok(&mut cmd)
}

fn shard_result(out_dir: &Path, shard: usize) -> ShardResult {
    let path = out_dir.join(format!("shard-{shard}/result.json"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path:?}: {e}"));
    serde_json::from_str(&text).expect("result.json decodes as ShardResult")
}

/// Every ingredient checkpoint's parameters, as raw f32 bit patterns, in
/// filename order. Envelope bytes are not compared (they carry metadata);
/// the parameters are what determinism is about.
fn checkpoint_bits(shard_dir: &Path) -> Vec<(String, Vec<u32>)> {
    let mut names: Vec<String> = std::fs::read_dir(shard_dir)
        .unwrap()
        .flatten()
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("ingredient_") && n.ends_with(".ck"))
        .collect();
    names.sort();
    assert!(!names.is_empty(), "no checkpoints in {shard_dir:?}");
    names
        .into_iter()
        .map(|name| {
            let ck = load_checkpoint(shard_dir.join(&name)).expect("checkpoint loads");
            let bits: Vec<u32> = ck
                .params
                .flat()
                .flat_map(|t| t.data().iter().map(|v| v.to_bits()))
                .collect();
            (name, bits)
        })
        .collect()
}

#[test]
fn mmap_dataset_round_trips_bitwise_against_in_memory() {
    let dir = tmpdir("roundtrip");
    let d = DatasetKind::Flickr.generate_scaled(5, 0.05);
    let path = dir.join("rt.gmm");
    save_mmap_dataset(&d, &path).unwrap();
    let m = MmapDataset::open(&path).unwrap();
    m.validate().unwrap();
    // Structure and features must survive the disk trip bit-for-bit.
    for v in 0..d.num_nodes() {
        assert_eq!(m.neighbors(v), d.graph.neighbors(v), "row {v}");
        let mem: Vec<u32> = d.features.row(v).iter().map(|x| x.to_bits()).collect();
        let mapped: Vec<u32> = m.feature_row(v).iter().map(|x| x.to_bits()).collect();
        assert_eq!(mem, mapped, "features {v}");
    }
    let back = m.load().unwrap();
    assert_eq!(back.labels, d.labels);
    assert_eq!(back.splits.test.len(), d.splits.test.len());
    // Truncation is caught by the exact-length check.
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 8]).unwrap();
    assert!(MmapDataset::open(&path).is_err());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_pipeline_round_trips_through_soupctl() {
    let dir = tmpdir("e2e");
    let ds = generate_mmap(&dir);

    // Partition quality report prints the metric triplet.
    let report = run_ok(soupctl().args(["partition", "--data", ds.to_str().unwrap(), "--k", "2"]));
    assert!(report.contains("edge-cut:"), "{report}");
    assert!(report.contains("halo fraction:"), "{report}");
    assert!(report.contains("balance:"), "{report}");

    // Train → soup across two worker processes.
    let run_dir = dir.join("run");
    let stdout = shard_run(&ds, &run_dir, &[]);
    assert!(stdout.contains("sharded pls (k=2)"), "{stdout}");

    // Both shards reported, with coherent test-count bookkeeping.
    let ds_nodes = MmapDataset::open(&ds).unwrap();
    let total_test = ds_nodes.test_ids().len() as u64;
    let results = [shard_result(&run_dir, 0), shard_result(&run_dir, 1)];
    assert_eq!(results[0].test_total + results[1].test_total, total_test);
    for r in &results {
        assert!(
            r.ingredients == 2,
            "shard {}: {} ingredients",
            r.shard,
            r.ingredients
        );
        assert!(r.correct <= r.test_total);
    }

    // The per-shard artifact directories pass the offline integrity audit.
    for shard in 0..2 {
        let shard_dir = run_dir.join(format!("shard-{shard}"));
        let audit = run_ok(soupctl().args(["verify", shard_dir.to_str().unwrap()]));
        assert!(audit.contains("all clean"), "{audit}");
    }

    // Resume satisfies every ingredient from checkpoints and agrees on
    // the souped accuracy.
    let mut cmd = soupctl();
    cmd.args([
        "shard",
        "--data",
        ds.to_str().unwrap(),
        "--out-dir",
        run_dir.to_str().unwrap(),
        "--resume",
    ]);
    run_ok(&mut cmd);
    let resumed = shard_result(&run_dir, 0);
    assert_eq!(resumed.resumed, 2, "resume retrained instead of reusing");
    assert_eq!(resumed.test_accuracy, results[0].test_accuracy);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_runs_are_bit_identical_at_fixed_seed() {
    let dir = tmpdir("determinism");
    let ds = generate_mmap(&dir);
    let (run_a, run_b) = (dir.join("a"), dir.join("b"));
    shard_run(&ds, &run_a, &[]);
    shard_run(&ds, &run_b, &[]);
    for shard in 0..2 {
        let a = checkpoint_bits(&run_a.join(format!("shard-{shard}")));
        let b = checkpoint_bits(&run_b.join(format!("shard-{shard}")));
        assert_eq!(a, b, "shard {shard} ingredients differ across runs");
        let (ra, rb) = (shard_result(&run_a, shard), shard_result(&run_b, shard));
        assert_eq!(ra.correct, rb.correct);
        assert_eq!(ra.val_accuracy.to_bits(), rb.val_accuracy.to_bits());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shared_map_and_socket_halo_paths_agree_bitwise() {
    let dir = tmpdir("transport");
    let ds = generate_mmap(&dir);
    let (run_shm, run_uds) = (dir.join("shm"), dir.join("uds"));
    shard_run(&ds, &run_shm, &[]);
    shard_run(&ds, &run_uds, &[("SOUP_SHARD_NO_SHM", "1")]);
    for shard in 0..2 {
        let (rs, ru) = (shard_result(&run_shm, shard), shard_result(&run_uds, shard));
        assert!(
            rs.used_shm,
            "shard {shard} should default to the shared map"
        );
        assert!(!ru.used_shm, "SOUP_SHARD_NO_SHM ignored on shard {shard}");
        assert_eq!(rs.halo_nodes, ru.halo_nodes);
        // Same halo bytes in, same training out — transport is invisible.
        let a = checkpoint_bits(&run_shm.join(format!("shard-{shard}")));
        let b = checkpoint_bits(&run_uds.join(format!("shard-{shard}")));
        assert_eq!(a, b, "halo transport changed shard {shard}'s training");
        assert_eq!(rs.correct, ru.correct);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
