//! # soup-distrib
//!
//! Phase 1 of the paper's workflow (Fig. 1): *distributed zero-communication
//! ingredient training*. A shared model initialisation is created once and
//! handed to `W` workers; each worker repeatedly claims the next untrained
//! ingredient from a shared dynamic task queue (§III-A) and trains it
//! independently — no gradient synchronisation, no message passing, which
//! is what makes the process embarrassingly parallel.
//!
//! The paper's workers are 8 A100 GPUs; here they are OS threads whose
//! kernels are internally rayon-parallel. Determinism is preserved because
//! each ingredient's training randomness is keyed by its ordinal, not by
//! the worker that happens to claim it.
//!
//! [`schedule`] provides the analytic makespan model of Eq. (1)/(2) plus a
//! greedy list-scheduling simulator for the load-imbalance discussion, and
//! [`gather`] models the reduce-style collection of trained ingredients
//! onto the souping device.

pub mod chaos;
pub mod gather;
pub mod halo;
pub mod queue;
pub mod schedule;
pub mod shard;
pub mod shard_worker;
pub mod supervisor;
pub mod trainer;

pub use chaos::{parse_kill_list, parse_shard_list, ChaosPhase, ChaosPlan, FrameFault};
pub use gather::{gather_ingredients, GatherReport};
pub use queue::{Claim, FailAction, TaskQueue};
pub use schedule::{predicted_min_time, predicted_total_time, simulate_schedule, ScheduleResult};
pub use shard::{
    analyze_sharding, prepare_sharded_dataset, run_sharded, PrepareReport, ShardPlan, ShardQuality,
    ShardResult, ShardRunReport, WorkerLaunch,
};
pub use shard_worker::{run_shard_worker, shard_seed};
pub use trainer::{
    train_ingredients, train_ingredients_detailed, train_ingredients_opts, FailedTask, FaultKind,
    FaultPlan, TrainOpts, TrainRun, WorkerReport,
};
