//! Partition Learned Souping (PLS) — Algorithm 4, the paper's second
//! contribution.
//!
//! PLS is Learned Souping with partition sampling: the graph is first
//! partitioned into `K` parts (METIS-like, balancing validation nodes —
//! §III-C), and every epoch draws `R` random partitions, joins them into a
//! subgraph *with their mutual cut edges preserved* (Eq. 5), and runs the
//! α-optimisation step on that subgraph only. Activations therefore scale
//! with `R/K` of the graph — the source of the paper's 76-80% memory
//! reductions — while the random partition mix acts like minibatching and
//! regularises the soup (§V-A).
//!
//! §VI-B analyses the `R/K` ratio: with `binom(K, R)` possible subgraphs,
//! `R=8, K=32` gives >10M combinations, while `R=1` never exercises cut
//! edges and costs 2-3% accuracy.

use crate::ingredient::{validate_ingredients, Ingredient};
use crate::learned::{
    learned_step, materialize_soup, prune_weak_ingredients, AlphaState, LearnedHyper,
};
use crate::resume::{Phase2Persist, Phase2Session, RunShape};
use crate::strategy::{measure_soup_try, MixReport, SoupCtx, SoupOutcome, SoupStrategy};
use crate::subcache::{SubgraphCache, SubgraphEntry};
use soup_error::SoupError;
use soup_gnn::cache::PropCache;
use soup_gnn::model::PropOps;
use soup_gnn::{Arch, ModelConfig};
use soup_graph::subgraph::InducedSubgraph;
use soup_graph::Dataset;
use soup_partition::{
    bfs_partition, partition_graph, partition_val_balanced, random_partition, PartitionConfig,
    Partitioning,
};
use soup_tensor::optim::{CosineAnnealing, Sgd};
use soup_tensor::SplitMix64;

/// Which partitioner prepares PLS's partition pool. The paper prescribes
/// METIS with validation balancing (§III-C); the alternatives exist for
/// the partition-quality ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionerKind {
    /// Multilevel k-way with validation-node-boosted vertex weights
    /// (the paper's setting).
    #[default]
    MultilevelValBalanced,
    /// Multilevel k-way with uniform vertex weights.
    Multilevel,
    /// Cheap BFS block growing (locality, no refinement).
    Bfs,
    /// Structure-blind random assignment (ablation lower bound).
    Random,
}

/// PLS configuration.
#[derive(Debug, Clone, Copy)]
pub struct PartitionLearnedSouping {
    pub hyper: LearnedHyper,
    /// Total number of partitions `K`.
    pub num_partitions: usize,
    /// Partitions selected per epoch `R` (the partition budget).
    pub budget: usize,
    /// Partitioner preparing the pool.
    pub partitioner: PartitionerKind,
    /// Capacity of the LRU subgraph cache memoising prepared epochs by
    /// partition subset (0 disables). Memoisation only engages when every
    /// distinct subset fits — `binom(K, R) <= capacity` — because with a
    /// larger subset space the hit rate is ~`capacity / binom(K, R)` ~ 0
    /// and retained entries would inflate the peak memory PLS exists to
    /// reduce (sizing analysis in DESIGN.md §9).
    pub subgraph_cache: usize,
}

impl Default for PartitionLearnedSouping {
    fn default() -> Self {
        // The paper's practical choice: R=8, K=32 (§VI-B).
        Self {
            hyper: LearnedHyper::default(),
            num_partitions: 32,
            budget: 8,
            partitioner: PartitionerKind::MultilevelValBalanced,
            subgraph_cache: 32,
        }
    }
}

impl PartitionLearnedSouping {
    pub fn new(hyper: LearnedHyper, num_partitions: usize, budget: usize) -> Self {
        assert!(num_partitions >= 1, "K must be >= 1");
        assert!(
            (1..=num_partitions).contains(&budget),
            "R must be in 1..=K (got R={budget}, K={num_partitions})"
        );
        Self {
            hyper,
            num_partitions,
            budget,
            ..Self::default()
        }
    }

    pub fn with_partitioner(mut self, partitioner: PartitionerKind) -> Self {
        self.partitioner = partitioner;
        self
    }

    /// Set the LRU subgraph-cache capacity (0 disables memoisation).
    pub fn with_subgraph_cache(mut self, capacity: usize) -> Self {
        self.subgraph_cache = capacity;
        self
    }

    /// The capacity the mixing loop actually hands the LRU: the
    /// configured one when the whole subset space fits (guaranteed recurring
    /// draws), 0 otherwise — see the [`Self::subgraph_cache`] field docs.
    pub fn effective_subgraph_cache(&self) -> usize {
        if self.num_possible_subgraphs() <= self.subgraph_cache as f64 {
            self.subgraph_cache
        } else {
            0
        }
    }

    fn run_partitioner(&self, dataset: &Dataset, seed: u64) -> Partitioning {
        let pcfg = PartitionConfig::new(self.num_partitions).with_seed(seed);
        match self.partitioner {
            PartitionerKind::MultilevelValBalanced => {
                partition_val_balanced(&dataset.graph, &dataset.splits, &pcfg)
            }
            PartitionerKind::Multilevel => {
                partition_graph(&dataset.graph, &vec![1.0; dataset.num_nodes()], &pcfg)
            }
            PartitionerKind::Bfs => bfs_partition(&dataset.graph, self.num_partitions, seed),
            PartitionerKind::Random => {
                random_partition(dataset.num_nodes(), self.num_partitions, seed)
            }
        }
    }

    /// The partition ratio `R/K` (§III-D) — the expected fraction of graph
    /// nodes (and hence activation memory) touched per epoch.
    pub fn partition_ratio(&self) -> f64 {
        self.budget as f64 / self.num_partitions as f64
    }

    /// Number of distinct epoch subgraphs: `binom(K, R)` (§VI-B).
    pub fn num_possible_subgraphs(&self) -> f64 {
        let k = self.num_partitions;
        // Multiplicative formula on the smaller side of the symmetry.
        let r = self.budget.min(k - self.budget);
        let mut acc = 1.0f64;
        for i in 0..r {
            acc *= (k - i) as f64 / (i + 1) as f64;
        }
        acc
    }
}

impl SoupStrategy for PartitionLearnedSouping {
    fn name(&self) -> &'static str {
        "PLS"
    }

    /// Fallible, resumable PLS entry point. With `ctx.persist` set, the
    /// loop checkpoints through the crash-safe store and `Ok(None)` reports
    /// a deliberate [`Phase2Persist::stop_after`] kill. When
    /// `ctx.partitioning` is provided the K-way preprocessing (Fig. 2
    /// step 1) is taken as given — partitioning is "a preprocessing step",
    /// so repeated soups from one dataset amortise it — and the measured
    /// souping time covers only the α-optimisation epochs; otherwise the
    /// configured partitioner runs inside the measured region.
    fn try_soup(&self, ctx: &SoupCtx<'_>) -> crate::Result<Option<SoupOutcome>> {
        let (ingredients, dataset, cfg) = (ctx.ingredients, ctx.dataset, ctx.cfg);
        validate_ingredients(ingredients);
        assert!(self.hyper.epochs > 0, "PLS needs at least one epoch");
        if let Some(partitioning) = ctx.partitioning {
            assert_eq!(
                partitioning.assignment.len(),
                dataset.num_nodes(),
                "partitioning does not match dataset"
            );
            assert_eq!(
                partitioning.k, self.num_partitions,
                "partitioning k != configured K"
            );
            measure_soup_try(ingredients, dataset, cfg, || {
                self.mix_loop(
                    ingredients,
                    dataset,
                    cfg,
                    ctx.seed,
                    partitioning,
                    ctx.persist,
                )
            })
        } else {
            measure_soup_try(ingredients, dataset, cfg, || {
                let partitioning = self.run_partitioner(dataset, ctx.seed);
                self.mix_loop(
                    ingredients,
                    dataset,
                    cfg,
                    ctx.seed,
                    &partitioning,
                    ctx.persist,
                )
            })
        }
    }
}

impl PartitionLearnedSouping {
    /// Positional shim for the pre-[`SoupCtx`] entry point; equivalent to
    /// `SoupStrategy::try_soup` with `with_persist_opt(persist)`.
    #[deprecated(
        since = "0.1.0",
        note = "use SoupStrategy::try_soup with a SoupCtx (with_persist for durability)"
    )]
    pub fn try_soup(
        &self,
        ingredients: &[Ingredient],
        dataset: &Dataset,
        cfg: &ModelConfig,
        seed: u64,
        persist: Option<&Phase2Persist>,
    ) -> crate::Result<Option<SoupOutcome>> {
        SoupStrategy::try_soup(
            self,
            &SoupCtx::new(ingredients, dataset, cfg, seed).with_persist_opt(persist),
        )
    }

    /// Positional shim for souping against a precomputed partitioning;
    /// equivalent to `SoupStrategy::try_soup` with `with_partitioning`.
    #[deprecated(
        since = "0.1.0",
        note = "use SoupStrategy::try_soup with SoupCtx::with_partitioning"
    )]
    pub fn soup_prepartitioned(
        &self,
        ingredients: &[Ingredient],
        dataset: &Dataset,
        cfg: &ModelConfig,
        seed: u64,
        partitioning: &Partitioning,
    ) -> SoupOutcome {
        SoupStrategy::try_soup(
            self,
            &SoupCtx::new(ingredients, dataset, cfg, seed).with_partitioning(partitioning),
        )
        .expect("PLS without persistence cannot hit storage errors")
        .expect("PLS without persistence never stops early")
    }

    /// Positional shim for the fallible prepartitioned entry point;
    /// equivalent to `SoupStrategy::try_soup` with `with_partitioning` +
    /// `with_persist_opt`.
    #[deprecated(
        since = "0.1.0",
        note = "use SoupStrategy::try_soup with SoupCtx::with_partitioning"
    )]
    pub fn try_soup_prepartitioned(
        &self,
        ingredients: &[Ingredient],
        dataset: &Dataset,
        cfg: &ModelConfig,
        seed: u64,
        partitioning: &Partitioning,
        persist: Option<&Phase2Persist>,
    ) -> crate::Result<Option<SoupOutcome>> {
        SoupStrategy::try_soup(
            self,
            &SoupCtx::new(ingredients, dataset, cfg, seed)
                .with_partitioning(partitioning)
                .with_persist_opt(persist),
        )
    }

    /// The Alg. 4 epoch loop over a fixed partition pool.
    fn mix_loop(
        &self,
        ingredients: &[Ingredient],
        dataset: &Dataset,
        cfg: &ModelConfig,
        seed: u64,
        partitioning: &Partitioning,
        persist: Option<&Phase2Persist>,
    ) -> crate::Result<Option<MixReport>> {
        let h = self.hyper;
        let _pls_span = soup_obs::span!("soup.pls");
        let shape = RunShape {
            strategy: "pls",
            seed,
            total_epochs: h.epochs,
            num_ingredients: ingredients.len(),
            partitions: self.num_partitions,
            budget: self.budget,
        };
        let mut session = Phase2Session::begin(persist, shape)?;
        let mut rng = SplitMix64::new(seed).derive(0x915);
        let mut alphas = AlphaState::init(
            ingredients.len(),
            ingredients[0].params.num_layers(),
            &mut rng,
        );
        let fit_mask: Vec<usize> = if h.holdout_ratio > 0.0 {
            dataset.splits.split_val(h.holdout_ratio, seed).0
        } else {
            dataset.splits.val.clone()
        };
        let fit_is_val: Vec<bool> = {
            let mut v = vec![false; dataset.num_nodes()];
            for &i in &fit_mask {
                v[i] = true;
            }
            v
        };
        let sched = CosineAnnealing::new(h.base_lr, h.eta_min, h.epochs);
        let mut opt = Sgd::new(sched.lr(0).max(h.eta_min), h.momentum, h.weight_decay);
        let mut subcache = SubgraphCache::new(self.effective_subgraph_cache());
        let mut epochs_run = 0usize;
        let mut lr_scale = 1.0f32;
        let mut nan_retries = 0u64;
        let mut epoch = 0usize;
        if let Some(state) = session.take_resumed() {
            epoch = state.next_epoch as usize;
            epochs_run = state.epochs_run as usize;
            rng = SplitMix64::from_snapshot(state.rng_state, state.rng_gauss_spare);
            alphas = AlphaState { raw: state.alphas };
            opt.set_velocity(state.velocity);
            lr_scale = state.lr_scale;
            nan_retries = state.nan_retries;
        }
        let mut attempts = 0u32;
        while epoch < h.epochs {
            // Watchdog snapshot: taken before the partition draw consumes
            // randomness, so a retry replays the epoch deterministically.
            let snap_alphas = alphas.clone();
            let snap_velocity = opt.velocity().to_vec();
            let (snap_rng, snap_spare) = rng.snapshot();
            // Select R random partitions (Alg. 4: partitionSelection).
            // The draw happens before any cache lookup, so the rng
            // stream — and hence the α trajectory — is byte-for-byte
            // the same with and without memoisation.
            let selected: Vec<u32> = rng
                .sample_indices(self.num_partitions, self.budget)
                .into_iter()
                .map(|p| p as u32)
                .collect();
            let build = || {
                build_epoch(
                    dataset,
                    cfg,
                    &partitioning.assignment,
                    &selected,
                    &fit_is_val,
                    h.prop_cache,
                )
            };
            let owned;
            let entry: &SubgraphEntry =
                match subcache.get_or_insert_with(soup_graph::subset_key(&selected), build) {
                    Some(e) => e,
                    None => {
                        owned = build_epoch(
                            dataset,
                            cfg,
                            &partitioning.assignment,
                            &selected,
                            &fit_is_val,
                            h.prop_cache,
                        );
                        &owned
                    }
                };
            if entry.local_mask.is_empty() {
                // Degenerate draw: the selected partitions hold no fit
                // nodes (possible at tiny scales or under aggressive
                // holdout). Drop the empty epoch rather than stepping
                // on a lossless subgraph. The epoch index still advances
                // (and checkpoints) so a resumed run replays the same draw
                // sequence.
                soup_obs::counter!("soup.pls.empty_partition_draws").inc();
                attempts = 0;
                epoch += 1;
                if session.after_epoch(epoch, || {
                    shape.capture(
                        epoch,
                        epochs_run,
                        epochs_run,
                        &rng,
                        &alphas.raw,
                        opt.velocity(),
                        None,
                        0,
                        lr_scale,
                        nan_retries,
                    )
                })? {
                    return Ok(None);
                }
                continue;
            }
            opt.lr = (sched.lr(epoch) * lr_scale).max(1e-6);
            let mut loss = learned_step(
                ingredients,
                &mut alphas,
                cfg,
                &entry.ops,
                entry.prop.as_ref(),
                &entry.features,
                &entry.labels,
                &entry.local_mask,
                &mut opt,
            );
            if let Some((e, times)) = h.nan_inject {
                if epoch == e && attempts < times {
                    // Poison both the loss and the α state, as a genuinely
                    // diverged step would.
                    loss = f32::NAN;
                    alphas.raw[0].make_mut()[0] = f32::NAN;
                }
            }
            if !loss.is_finite() {
                if attempts >= h.nan_retry_budget {
                    return Err(SoupError::numeric(format!(
                        "PLS epoch {epoch}: non-finite loss persisted after {attempts} \
                         watchdog retries (lr_scale {lr_scale})"
                    )));
                }
                attempts += 1;
                nan_retries += 1;
                alphas = snap_alphas;
                opt.set_velocity(snap_velocity);
                rng = SplitMix64::from_snapshot(snap_rng, snap_spare);
                lr_scale *= 0.5;
                soup_obs::counter!("soup.watchdog.retries").inc();
                soup_obs::warn!(
                    "PLS epoch {epoch}: non-finite loss; restored last good α, \
                     retrying with lr_scale {lr_scale} (attempt {attempts}/{})",
                    h.nan_retry_budget
                );
                continue;
            }
            attempts = 0;
            epochs_run += 1;
            soup_obs::counter!("soup.pls.epochs").inc();
            soup_obs::gauge!("soup.pls.epoch").set(epochs_run as f64);
            soup_obs::trace_event!("soup.pls.epoch",
                "epoch" => epoch as u64,
                "loss" => loss,
                "lr" => opt.lr,
                "sub_nodes" => entry.sub.local_to_global.len() as u64,
                "selected" => selected,
                "mean_ratios" => crate::learned::mean_ratios(&alphas));
            // §VIII ingredient drop-out at the half-way point.
            if let Some(threshold) = h.prune_threshold {
                if epoch + 1 == h.epochs / 2 {
                    prune_weak_ingredients(&mut alphas, threshold);
                }
            }
            epoch += 1;
            if session.after_epoch(epoch, || {
                shape.capture(
                    epoch,
                    epochs_run,
                    epochs_run,
                    &rng,
                    &alphas.raw,
                    opt.velocity(),
                    None,
                    0,
                    lr_scale,
                    nan_retries,
                )
            })? {
                return Ok(None);
            }
        }
        // Each subgraph-cache hit skipped rebuilding the entry's
        // PropCache — one SpMM — when the propagation cache is on (GAT
        // entries hold no aggregation, so hits save build work only).
        let spmm_saved = if cfg.arch != Arch::Gat && h.prop_cache {
            subcache.hits()
        } else {
            0
        };
        Ok(Some(MixReport {
            params: materialize_soup(ingredients, &alphas),
            forward_passes: epochs_run,
            epochs: epochs_run,
            spmm_saved,
        }))
    }
}

/// Prepare everything one PLS epoch needs from a partition draw.
fn build_epoch(
    dataset: &Dataset,
    cfg: &ModelConfig,
    assignment: &[u32],
    selected: &[u32],
    fit_is_val: &[bool],
    prop_cache: bool,
) -> SubgraphEntry {
    let sub = InducedSubgraph::from_partitions(&dataset.graph, assignment, selected);
    // Validation nodes of the subgraph (local ids).
    let local_mask: Vec<usize> = sub
        .local_to_global
        .iter()
        .enumerate()
        .filter(|&(_, &g)| fit_is_val[g])
        .map(|(l, _)| l)
        .collect();
    let ops = PropOps::prepare(cfg.arch, &sub.graph);
    let features = sub.gather_features(&dataset.features);
    let labels = sub.gather_labels(&dataset.labels);
    let prop = prop_cache.then(|| PropCache::new(&ops, &features));
    SubgraphEntry {
        sub,
        ops,
        features,
        labels,
        local_mask,
        prop,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learned::LearnedSouping;
    use soup_gnn::model::init_params;
    use soup_gnn::{train_single, TrainConfig};
    use soup_graph::DatasetKind;

    fn trained_ingredients(
        n: usize,
        seed: u64,
        scale: f64,
    ) -> (Dataset, ModelConfig, Vec<Ingredient>) {
        let d = DatasetKind::Flickr.generate_scaled(seed, scale);
        let cfg = ModelConfig::gcn(d.num_features(), d.num_classes()).with_hidden(12);
        let mut rng = SplitMix64::new(seed);
        let init = init_params(&cfg, &mut rng);
        let tc = TrainConfig {
            epochs: 15,
            ..TrainConfig::quick()
        };
        let ingredients = (0..n)
            .map(|i| {
                let tm = train_single(&d, &cfg, &tc, &init, 200 + i as u64);
                Ingredient::new(i, tm.params, tm.val_accuracy, 200 + i as u64)
            })
            .collect();
        (d, cfg, ingredients)
    }

    #[test]
    fn partition_ratio_and_combinations() {
        let pls = PartitionLearnedSouping::default();
        assert_eq!(pls.partition_ratio(), 0.25);
        // binom(32, 8) = 10_518_300 — the ">10 million subgraphs" of §VI-B.
        assert!((pls.num_possible_subgraphs() - 10_518_300.0).abs() < 1.0);
    }

    #[test]
    fn binom_edge_cases() {
        let r1 = PartitionLearnedSouping::new(LearnedHyper::default(), 16, 1);
        assert!((r1.num_possible_subgraphs() - 16.0).abs() < 1e-9);
        let all = PartitionLearnedSouping::new(LearnedHyper::default(), 8, 8);
        assert!((all.num_possible_subgraphs() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "R must be")]
    fn budget_above_k_panics() {
        PartitionLearnedSouping::new(LearnedHyper::default(), 4, 5);
    }

    #[test]
    fn pls_produces_reasonable_soup() {
        let (d, cfg, ingredients) = trained_ingredients(4, 20, 0.25);
        let pls = PartitionLearnedSouping::new(
            LearnedHyper {
                epochs: 30,
                ..Default::default()
            },
            8,
            4,
        );
        let outcome = pls.soup(&ingredients, &d, &cfg, 3);
        let best = ingredients
            .iter()
            .map(|i| i.val_accuracy)
            .fold(0.0, f64::max);
        assert!(
            outcome.val_accuracy >= best - 0.08,
            "PLS {} far below best ingredient {best}",
            outcome.val_accuracy
        );
        assert!(outcome.stats.epochs > 0, "every epoch was skipped");
    }

    #[test]
    fn pls_uses_less_memory_than_ls() {
        let (d, cfg, ingredients) = trained_ingredients(4, 21, 0.5);
        let h = LearnedHyper {
            epochs: 15,
            ..Default::default()
        };
        let ls = LearnedSouping::new(h).soup(&ingredients, &d, &cfg, 4);
        let pls = PartitionLearnedSouping::new(h, 16, 2).soup(&ingredients, &d, &cfg, 4);
        assert!(
            pls.stats.peak_mem_bytes < ls.stats.peak_mem_bytes,
            "PLS {} >= LS {}",
            pls.stats.peak_mem_bytes,
            ls.stats.peak_mem_bytes
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (d, cfg, ingredients) = trained_ingredients(3, 22, 0.2);
        let pls = PartitionLearnedSouping::new(
            LearnedHyper {
                epochs: 8,
                ..Default::default()
            },
            8,
            3,
        );
        let a = pls.soup(&ingredients, &d, &cfg, 9);
        let b = pls.soup(&ingredients, &d, &cfg, 9);
        assert_eq!(a.val_accuracy, b.val_accuracy);
    }

    #[test]
    fn prepartitioned_soup_matches_and_is_faster() {
        let (d, cfg, ingredients) = trained_ingredients(3, 24, 0.25);
        let hyper = LearnedHyper {
            epochs: 10,
            ..Default::default()
        };
        let pls = PartitionLearnedSouping::new(hyper, 8, 3);
        let partitioning = pls.run_partitioner(&d, 6);
        let pre = SoupStrategy::try_soup(
            &pls,
            &SoupCtx::new(&ingredients, &d, &cfg, 6).with_partitioning(&partitioning),
        )
        .unwrap()
        .unwrap();
        let full = pls.soup(&ingredients, &d, &cfg, 6);
        // Same seed + same partitioning path => identical soup.
        assert_eq!(pre.val_accuracy, full.val_accuracy);
        for (a, b) in pre.params.flat().zip(full.params.flat()) {
            assert_eq!(a, b);
        }
        // The prepartitioned variant excludes partitioning from its time.
        // Slack absorbs scheduler noise when the suite runs under load.
        assert!(
            pre.stats.wall_time <= full.stats.wall_time * 2 + std::time::Duration::from_millis(50)
        );
    }

    #[test]
    #[should_panic(expected = "partitioning k")]
    fn prepartitioned_k_mismatch_panics() {
        let (d, cfg, ingredients) = trained_ingredients(2, 25, 0.15);
        let hyper = LearnedHyper {
            epochs: 4,
            ..Default::default()
        };
        let pls8 = PartitionLearnedSouping::new(hyper, 8, 2);
        let pls4 = PartitionLearnedSouping::new(hyper, 4, 2);
        let partitioning = pls4.run_partitioner(&d, 1);
        let _ = SoupStrategy::try_soup(
            &pls8,
            &SoupCtx::new(&ingredients, &d, &cfg, 1).with_partitioning(&partitioning),
        );
    }

    #[test]
    fn cache_engages_only_when_subset_space_fits() {
        // binom(5, 2) = 10 <= 32: memoisation on.
        let small = PartitionLearnedSouping::new(LearnedHyper::default(), 5, 2);
        assert_eq!(small.effective_subgraph_cache(), 32);
        // binom(32, 8) > 10M: memoisation would never hit — off.
        assert_eq!(
            PartitionLearnedSouping::default().effective_subgraph_cache(),
            0
        );
        assert_eq!(small.with_subgraph_cache(0).effective_subgraph_cache(), 0);
    }

    #[test]
    fn subgraph_cache_reproduces_uncached_run() {
        // K=5, R=2 -> binom(5,2)=10 distinct subsets; 40 epochs guarantee
        // the LRU (default capacity 32 > 10) serves most draws from cache.
        let (d, cfg, ingredients) = trained_ingredients(3, 26, 0.2);
        let hyper = LearnedHyper {
            epochs: 40,
            ..Default::default()
        };
        let cached = PartitionLearnedSouping::new(hyper, 5, 2).soup(&ingredients, &d, &cfg, 11);
        let uncached = PartitionLearnedSouping::new(
            LearnedHyper {
                prop_cache: false,
                ..hyper
            },
            5,
            2,
        )
        .with_subgraph_cache(0)
        .soup(&ingredients, &d, &cfg, 11);
        // The rng draw precedes the cache lookup, so memoisation leaves the
        // epoch sequence — and hence the soup — byte-for-byte unchanged.
        assert_eq!(cached.val_accuracy, uncached.val_accuracy);
        for (a, b) in cached.params.flat().zip(uncached.params.flat()) {
            assert_eq!(a, b);
        }
        assert!(
            cached.stats.spmm_saved > 0,
            "40 epochs over 10 subsets must hit the subgraph cache"
        );
        assert_eq!(uncached.stats.spmm_saved, 0);
    }

    #[test]
    fn all_partitioner_kinds_run() {
        let (d, cfg, ingredients) = trained_ingredients(3, 23, 0.2);
        for kind in [
            PartitionerKind::MultilevelValBalanced,
            PartitionerKind::Multilevel,
            PartitionerKind::Bfs,
            PartitionerKind::Random,
        ] {
            let pls = PartitionLearnedSouping::new(
                LearnedHyper {
                    epochs: 6,
                    ..Default::default()
                },
                8,
                3,
            )
            .with_partitioner(kind);
            let outcome = pls.soup(&ingredients, &d, &cfg, 2);
            assert!(
                (0.0..=1.0).contains(&outcome.val_accuracy),
                "{kind:?}: {}",
                outcome.val_accuracy
            );
            assert!(outcome.stats.epochs > 0, "{kind:?} ran no epochs");
        }
    }
}
