//! Fig. 4 counterpart: (a) relative speedup over GIS and (b) relative
//! memory usage vs GIS, per architecture × dataset. US is excluded from the
//! memory panel, exactly as in the paper (§V-C: uniform souping needs no
//! forward passes, so its memory is not comparable).
//!
//! Usage: `cargo run -p soup-bench --release --bin fig4 [quick|standard|full]`

use soup_bench::harness::{full_grid, run_cell, write_csv, ExperimentPreset};
use soup_tensor::memory::format_bytes;

fn main() {
    let preset = ExperimentPreset::from_args();
    println!(
        "FIG 4a: Relative speedup over GIS (higher is better, preset '{}')",
        preset.name
    );
    println!(
        "{:<10} {:<14} {:>9} {:>9} {:>9}",
        "Model", "Dataset", "US", "LS", "PLS"
    );
    let mut results = Vec::new();
    for cell in full_grid(42) {
        results.push(run_cell(&cell, &preset));
    }
    let mut rows_a = Vec::new();
    for r in &results {
        let by = |n: &str| {
            r.strategies
                .iter()
                .find(|s| s.strategy.name() == n)
                .unwrap()
        };
        let gis_t = by("GIS").time_mean_s.max(1e-9);
        let speed = |n: &str| gis_t / by(n).time_mean_s.max(1e-9);
        println!(
            "{:<10} {:<14} {:>8.2}x {:>8.2}x {:>8.2}x",
            r.arch.name(),
            r.dataset.name(),
            speed("US"),
            speed("LS"),
            speed("PLS"),
        );
        rows_a.push(format!(
            "{},{},{:.3},{:.3},{:.3}",
            r.arch.name(),
            r.dataset.name(),
            speed("US"),
            speed("LS"),
            speed("PLS")
        ));
    }

    println!("\nFIG 4b: Peak souping memory relative to GIS (lower is better; US excluded)");
    println!(
        "{:<10} {:<14} {:>10} {:>10} {:>14} {:>14}",
        "Model", "Dataset", "LS/GIS", "PLS/GIS", "LS abs", "PLS abs"
    );
    let mut rows_b = Vec::new();
    for r in &results {
        let by = |n: &str| {
            r.strategies
                .iter()
                .find(|s| s.strategy.name() == n)
                .unwrap()
        };
        let gis_m = by("GIS").peak_mem_mean.max(1.0);
        println!(
            "{:<10} {:<14} {:>10.2} {:>10.2} {:>14} {:>14}",
            r.arch.name(),
            r.dataset.name(),
            by("LS").peak_mem_mean / gis_m,
            by("PLS").peak_mem_mean / gis_m,
            format_bytes(by("LS").peak_mem_mean as usize),
            format_bytes(by("PLS").peak_mem_mean as usize),
        );
        rows_b.push(format!(
            "{},{},{:.4},{:.4},{:.0},{:.0},{:.0}",
            r.arch.name(),
            r.dataset.name(),
            by("LS").peak_mem_mean / gis_m,
            by("PLS").peak_mem_mean / gis_m,
            by("GIS").peak_mem_mean,
            by("LS").peak_mem_mean,
            by("PLS").peak_mem_mean
        ));
    }
    let _ = write_csv(
        "fig4a",
        "model,dataset,us_speedup,ls_speedup,pls_speedup",
        &rows_a,
    )
    .map(|p| soup_obs::info!("wrote {}", p.display()));
    let _ = write_csv(
        "fig4b",
        "model,dataset,ls_rel_mem,pls_rel_mem,gis_bytes,ls_bytes,pls_bytes",
        &rows_b,
    )
    .map(|p| soup_obs::info!("wrote {}", p.display()));
    soup_bench::harness::finish_observability();
}
