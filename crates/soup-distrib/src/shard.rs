//! Multi-process sharded Phase-1: plan, dataset preparation, coordinator.
//!
//! Threads share an address space, so the thread-pool trainer
//! ([`crate::train_ingredients_opts`]) can never demonstrate the paper's
//! memory claim — every worker sees the whole graph. This module promotes
//! workers to OS processes that each *own* one contiguous node range of a
//! shard-ordered mmap dataset:
//!
//! 1. [`prepare_sharded_dataset`] partitions the graph (streaming LDG),
//!    relabels nodes so every shard is a contiguous id range, and rewrites
//!    the dataset in shard order — after which "shard `i`'s data" and
//!    "shard `i`'s pages" are the same thing (the DGL playbook);
//! 2. [`run_sharded`] forks one worker process per shard (any executable
//!    that calls [`crate::shard_worker::run_shard_worker`] — `soupctl
//!    shard-worker` or `bench_shard` re-executing itself), sequences them
//!    through the READY → GO → FETCHED → PROCEED → RESULT control protocol
//!    over a Unix socket ([`crate::halo`]), and aggregates their
//!    shard-local test counts into one global accuracy.
//!
//! Each worker trains its ingredients and soups them entirely inside its
//! shard (Phase-1 + PLS), checkpointing through the usual `soup-store`
//! journal in `out_dir/shard-<i>/` — so `--resume` works per shard, and a
//! killed run restarts only the unfinished shards' missing ingredients.

use std::io::{BufReader, BufWriter};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use serde::{Deserialize, Serialize};
use soup_error::SoupError;
use soup_graph::mmap::{write_mmap_dataset, MmapDataset, MmapMeta};
use soup_partition::quality::{edge_cut_on, halo_counts};
use soup_partition::streaming::{ldg_partition_restream, DEFAULT_PASSES, DEFAULT_SLACK};

use crate::halo::{
    control_socket_path, expect_frame, shard_epoch_payload, write_frame, OP_ACK, OP_FETCHED, OP_GO,
    OP_HEARTBEAT, OP_PROCEED, OP_READY, OP_RESULT,
};

type Result<T> = std::result::Result<T, SoupError>;

/// Everything a shard worker needs to run, serialised as
/// `out_dir/plan.json`. Paths are strings because the plan crosses a
/// process boundary as JSON.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardPlan {
    pub version: u32,
    /// Shard-ordered `soup-graphmmap/1` dataset path.
    pub dataset: String,
    /// Shard count (= worker process count).
    pub k: usize,
    /// Owned node range `[start, end)` per shard, in the relabeled ids.
    pub ranges: Vec<(u64, u64)>,
    /// Root seed; shard `i` derives its own stream from it.
    pub seed: u64,
    /// Ingredients each shard trains (the per-shard Phase-1 `R`).
    pub rounds: usize,
    /// Model: architecture name (`gcn`|`sage`|`gat`|`gin`) + shape.
    pub arch: String,
    pub hidden: usize,
    pub layers: usize,
    pub dropout: f32,
    /// Ingredient training epochs + learning rate.
    pub epochs: usize,
    pub lr: f32,
    /// Souping strategy (`us`|`greedy`|`gis`|`ls`|`pls`) and its knobs.
    pub strategy: String,
    pub soup_epochs: usize,
    pub pls_k: usize,
    pub pls_r: usize,
    /// Run directory: control/halo sockets, `plan.json`, `shard-<i>/` state.
    pub out_dir: String,
    /// Force the UDS halo path even where the shared map is available.
    pub no_shm: bool,
    /// Reuse valid per-shard checkpoints instead of retraining.
    pub resume: bool,
    /// Heartbeat deadline in milliseconds: a worker silent for longer is
    /// declared lost. Workers heartbeat at a quarter of this interval.
    pub worker_timeout_ms: u64,
    /// Respawns each shard may consume before the run degrades without it.
    pub restart_budget: u32,
    /// Deterministic fault injection, if any ([`crate::ChaosPlan`]).
    pub chaos: Option<crate::ChaosPlan>,
}

pub(crate) fn default_worker_timeout_ms() -> u64 {
    30_000
}

pub(crate) fn default_restart_budget() -> u32 {
    2
}

impl ShardPlan {
    pub fn out_dir_path(&self) -> PathBuf {
        PathBuf::from(&self.out_dir)
    }

    pub fn dataset_path(&self) -> PathBuf {
        PathBuf::from(&self.dataset)
    }

    pub fn shard_dir(&self, shard: usize) -> PathBuf {
        self.out_dir_path().join(format!("shard-{shard}"))
    }

    pub fn plan_path(&self) -> PathBuf {
        self.out_dir_path().join("plan.json")
    }

    /// Owned range of `shard` as usizes.
    pub fn range(&self, shard: usize) -> std::ops::Range<usize> {
        let (s, e) = self.ranges[shard];
        s as usize..e as usize
    }

    /// The shard that owns (relabeled) node `v`.
    pub fn owner_of(&self, v: usize) -> usize {
        self.ranges.partition_point(|&(_, end)| (end as usize) <= v)
    }

    /// Heartbeat deadline for crash/hang detection.
    pub fn worker_timeout(&self) -> Duration {
        Duration::from_millis(self.worker_timeout_ms.max(100))
    }

    /// How long a *worker* waits on a control read before giving up: long
    /// enough to ride out every peer's full respawn chain, so one shard's
    /// recovery never cascades into its neighbours timing out.
    pub fn worker_patience(&self) -> Duration {
        self.worker_timeout() * (self.restart_budget + 2)
    }

    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| SoupError::io_at(path, e))?;
        let mut value: serde_json::JsonValue = serde_json::from_str(&text)
            .map_err(|e| SoupError::corrupt(format!("shard plan {}: {e}", path.display())))?;
        // Plans written before the supervision fields existed deserialize
        // with the defaults patched in, so `--resume` over an old run dir
        // keeps working.
        if let serde_json::JsonValue::Object(fields) = &mut value {
            let mut fill = |key: &str, default: serde_json::JsonValue| {
                if !fields.iter().any(|(k, _)| k == key) {
                    fields.push((key.to_string(), default));
                }
            };
            fill(
                "worker_timeout_ms",
                serde_json::to_value(&default_worker_timeout_ms()),
            );
            fill(
                "restart_budget",
                serde_json::to_value(&default_restart_budget()),
            );
            fill("chaos", serde_json::JsonValue::Null);
        }
        let plan: ShardPlan = serde_json::from_value(value)
            .map_err(|e| SoupError::corrupt(format!("shard plan {}: {e}", path.display())))?;
        if plan.version != 1 {
            return Err(SoupError::corrupt(format!(
                "shard plan version {} unsupported",
                plan.version
            )));
        }
        if plan.ranges.len() != plan.k {
            return Err(SoupError::corrupt(format!(
                "shard plan: {} ranges for k={}",
                plan.ranges.len(),
                plan.k
            )));
        }
        Ok(plan)
    }

    pub fn save(&self) -> Result<PathBuf> {
        let path = self.plan_path();
        let text = serde_json::to_string(self)
            .map_err(|e| SoupError::usage(format!("shard plan serialise: {e}")))?;
        soup_store::write_durable(&path, text.as_bytes())?;
        Ok(path)
    }
}

/// Partition quality of a prepared sharding, printed by `soupctl
/// partition` and exported as soup-obs gauges.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardQuality {
    /// Undirected edges crossing shard boundaries.
    pub edge_cut: usize,
    /// `Σ_p |halo(p)| / n` — remote feature rows per owned node.
    pub halo_fraction: f64,
    /// Largest shard over ideal `n/k` size.
    pub balance: f64,
    /// Distinct out-of-shard neighbors per shard.
    pub halo_counts: Vec<usize>,
}

impl ShardQuality {
    /// Publish as gauges (`partition.edge_cut`, `partition.halo_fraction`,
    /// `partition.balance`) so metric series and `soupctl obs` see them.
    pub fn export_gauges(&self) {
        soup_obs::gauge!("partition.edge_cut").set(self.edge_cut as f64);
        soup_obs::gauge!("partition.halo_fraction").set(self.halo_fraction);
        soup_obs::gauge!("partition.balance").set(self.balance);
    }
}

/// Output of [`prepare_sharded_dataset`].
#[derive(Debug, Clone)]
pub struct PrepareReport {
    pub ranges: Vec<(u64, u64)>,
    pub quality: ShardQuality,
    pub nodes: usize,
    pub nnz: usize,
}

/// Compute the shard assignment and quality for `src` without rewriting
/// anything (the analysis half of [`prepare_sharded_dataset`]).
pub fn analyze_sharding(src: &MmapDataset, k: usize) -> (Vec<u32>, ShardQuality) {
    let assignment = ldg_partition_restream(src, k, DEFAULT_SLACK, DEFAULT_PASSES);
    let counts = halo_counts(src, &assignment, k);
    let n = src.num_nodes();
    let mut sizes = vec![0usize; k];
    for &p in &assignment {
        sizes[p as usize] += 1;
    }
    let ideal = n as f64 / k as f64;
    let balance = sizes.iter().copied().max().unwrap_or(0) as f64 / ideal;
    let quality = ShardQuality {
        edge_cut: edge_cut_on(src, &assignment),
        halo_fraction: counts.iter().sum::<usize>() as f64 / n.max(1) as f64,
        balance,
        halo_counts: counts,
    };
    (assignment, quality)
}

/// Partition `src_path` into `k` shards and rewrite it shard-ordered at
/// `out_path`: nodes are relabeled so shard `p` owns the contiguous range
/// `[offset_p, offset_{p+1})`, adjacency rows are remapped and re-sorted,
/// features/labels/splits follow the same permutation. The rewrite streams
/// row by row — peak memory is the id maps (`O(n)` u32s), never the
/// feature matrix.
pub fn prepare_sharded_dataset(
    src_path: impl AsRef<Path>,
    k: usize,
    out_path: impl AsRef<Path>,
) -> Result<PrepareReport> {
    let src = MmapDataset::open(&src_path)?;
    src.validate()?;
    let n = src.num_nodes();
    assert!(k >= 1 && k <= n.max(1), "k={k} outside 1..={n}");
    let (assignment, quality) = analyze_sharding(&src, k);

    // Stable relabeling: new id = shard offset + arrival order within the
    // shard. Two O(n) u32 maps; u32 is enough because the mmap format
    // already caps node ids at u32.
    let mut sizes = vec![0usize; k];
    for &p in &assignment {
        sizes[p as usize] += 1;
    }
    let mut offsets = vec![0usize; k + 1];
    for p in 0..k {
        offsets[p + 1] = offsets[p] + sizes[p];
    }
    let ranges: Vec<(u64, u64)> = (0..k)
        .map(|p| (offsets[p] as u64, offsets[p + 1] as u64))
        .collect();
    let mut next = offsets[..k].to_vec();
    let mut old_to_new: Vec<u32> = vec![0; n];
    let mut new_to_old: Vec<u32> = vec![0; n];
    for old in 0..n {
        let p = assignment[old] as usize;
        let new = next[p];
        next[p] += 1;
        old_to_new[old] = new as u32;
        new_to_old[new] = old as u32;
    }

    let meta = MmapMeta {
        n,
        nnz: src.num_directed_edges(),
        feature_dim: src.feature_dim(),
        num_classes: src.num_classes(),
        train_len: src.train_ids().len(),
        val_len: src.val_ids().len(),
        test_len: src.test_ids().len(),
    };
    write_mmap_dataset(&out_path, &meta, |w| {
        let mut acc = 0u64;
        w.put_indptr(0)?;
        for &old in &new_to_old {
            acc += src.neighbors(old as usize).len() as u64;
            w.put_indptr(acc)?;
        }
        let mut row: Vec<u32> = Vec::new();
        for &old in &new_to_old {
            row.clear();
            row.extend(
                src.neighbors(old as usize)
                    .iter()
                    .map(|&u| old_to_new[u as usize]),
            );
            row.sort_unstable();
            for &c in &row {
                w.put_index(c)?;
            }
        }
        for &old in &new_to_old {
            w.put_feature_row(src.feature_row(old as usize))?;
        }
        let labels = src.labels();
        for &old in &new_to_old {
            w.put_label(labels[old as usize])?;
        }
        let remap_sorted = |ids: &[u32]| {
            let mut v: Vec<u32> = ids.iter().map(|&i| old_to_new[i as usize]).collect();
            v.sort_unstable();
            v
        };
        for v in remap_sorted(src.train_ids()) {
            w.put_train_id(v)?;
        }
        for v in remap_sorted(src.val_ids()) {
            w.put_val_id(v)?;
        }
        for v in remap_sorted(src.test_ids()) {
            w.put_test_id(v)?;
        }
        Ok(())
    })?;

    Ok(PrepareReport {
        ranges,
        quality,
        nodes: n,
        nnz: meta.nnz,
    })
}

/// What one shard worker reports back over the control socket (and writes
/// durably to `shard-<i>/result.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardResult {
    pub shard: usize,
    /// Correct predictions on the shard's owned test nodes.
    pub correct: u64,
    pub test_total: u64,
    /// Soup validation accuracy on the shard's owned val nodes.
    pub val_accuracy: f64,
    pub test_accuracy: f64,
    pub wall_ms: u64,
    /// `VmHWM` of the worker process at reporting time.
    pub peak_rss_bytes: u64,
    pub ingredients: usize,
    /// Ingredients satisfied from checkpoints (`--resume`).
    pub resumed: usize,
    /// Distinct remote feature rows this shard fetched.
    pub halo_nodes: usize,
    /// Whether the shared-map fast path served the halo (vs UDS frames).
    pub used_shm: bool,
}

/// Aggregated outcome of a sharded run.
#[derive(Debug, Clone)]
pub struct ShardRunReport {
    /// Surviving shards' results, ordered by shard ordinal.
    pub per_shard: Vec<ShardResult>,
    /// Global test accuracy: `Σ correct / Σ total` over *surviving*
    /// shards — exact over the owned test nodes that are still covered.
    pub test_accuracy: f64,
    pub wall_ms: u64,
    /// Largest worker `VmHWM` — the number the R/K claim is about.
    pub max_worker_peak_rss: u64,
    /// Shards whose restart budget ran out; their owned nodes are not in
    /// the accuracy above.
    pub missing: Vec<usize>,
    /// Total worker respawns across the run.
    pub restarts: u32,
}

impl ShardRunReport {
    /// Whether any shard was lost. A degraded run still completes with
    /// exact accuracy over the surviving shards' owned test nodes; the
    /// provenance lives in [`missing`](Self::missing) and `run.json`.
    pub fn is_degraded(&self) -> bool {
        !self.missing.is_empty()
    }
}

/// How to launch a worker process: an executable plus argument prefix; the
/// coordinator appends `--plan <path> --shard <i> --epoch <e>`. `soupctl`
/// passes `(current_exe, ["shard-worker"])`; `bench_shard` re-executes
/// itself.
#[derive(Debug, Clone)]
pub struct WorkerLaunch {
    pub exe: PathBuf,
    pub args: Vec<String>,
}

impl WorkerLaunch {
    pub fn new(exe: PathBuf, args: &[&str]) -> Self {
        Self {
            exe,
            args: args.iter().map(|s| s.to_string()).collect(),
        }
    }
}

/// Fork one worker per shard and drive the control protocol under
/// supervision: crash/hang detection via `try_wait` + heartbeat
/// deadlines, kill-and-reap, bounded respawn with session epochs, and
/// graceful degradation when a shard's budget runs out. The full fault
/// model lives in [`crate::supervisor`].
///
/// The coordinator itself never maps the dataset: its resident set stays
/// at process baseline, which keeps the bench's memory accounting honest.
pub fn run_sharded(plan: &ShardPlan, launch: &WorkerLaunch) -> Result<ShardRunReport> {
    crate::supervisor::run_supervised(plan, launch)
}

/// Worker-side control handle: connect, heartbeat, step the barriers.
///
/// Every read is bounded by the plan's *patience* (the heartbeat deadline
/// scaled by the restart budget, so a peer's full respawn chain fits) and
/// surfaces expiry as a typed [`SoupError::WorkerLost`] instead of the
/// PR-9 hour-long hang. A background thread heartbeats at a quarter of
/// the deadline through the shared writer for as long as the handle
/// lives, keeping the supervisor convinced through long training phases.
pub struct WorkerControl {
    reader: BufReader<UnixStream>,
    writer: Arc<Mutex<ChaosWriter>>,
    shard: usize,
    patience: Duration,
    hb_stop: Arc<AtomicBool>,
    hb_thread: Option<std::thread::JoinHandle<()>>,
}

/// The worker's outbound control half. All frames funnel through here so
/// the heartbeat thread and the protocol steps interleave whole frames,
/// and so the chaos plan can strike outbound frames deterministically.
struct ChaosWriter {
    writer: BufWriter<UnixStream>,
    raw: UnixStream,
    chaos: Option<crate::ChaosPlan>,
    shard: usize,
    epoch: u32,
    seq: u64,
}

impl ChaosWriter {
    fn send(&mut self, op: u8, payload: &[u8]) -> Result<()> {
        let seq = self.seq;
        self.seq += 1;
        let fault = self
            .chaos
            .as_ref()
            .and_then(|c| c.frame_fault(self.shard, op, seq, self.epoch));
        match fault {
            None => {}
            Some(crate::FrameFault::Drop) => {
                soup_obs::warn!(
                    "chaos: dropping control frame op={op} (shard {})",
                    self.shard
                );
                return Ok(());
            }
            Some(crate::FrameFault::Delay(ms)) => {
                soup_obs::warn!("chaos: delaying control frame op={op} by {ms}ms");
                std::thread::sleep(Duration::from_millis(ms));
            }
            Some(crate::FrameFault::Truncate) => {
                soup_obs::warn!(
                    "chaos: truncating control frame op={op} (shard {})",
                    self.shard
                );
                use std::io::Write;
                let mut frame = Vec::with_capacity(5 + payload.len());
                frame.extend_from_slice(&(payload.len() as u32 + 1).to_le_bytes());
                frame.push(op);
                frame.extend_from_slice(payload);
                let half = &frame[..frame.len() / 2];
                let _ = self.writer.write_all(half);
                let _ = self.writer.flush();
                // FIN mid-frame: the supervisor must reject the stream.
                let _ = self.raw.shutdown(std::net::Shutdown::Write);
                return Ok(());
            }
        }
        write_frame(&mut self.writer, op, payload)
    }
}

impl WorkerControl {
    /// Connect to the coordinator (retrying while it binds), announce
    /// this shard+epoch as READY, and start heartbeating.
    pub fn connect(plan: &ShardPlan, shard: usize, epoch: u32) -> Result<Self> {
        let out_dir = plan.out_dir_path();
        let path = control_socket_path(&out_dir);
        let stream = crate::halo::connect_retry(&path, Duration::from_secs(30))?;
        let patience = plan.worker_patience();
        stream
            .set_read_timeout(Some(patience))
            .map_err(SoupError::from)?;
        let reader = BufReader::new(stream.try_clone().map_err(SoupError::from)?);
        let raw = stream.try_clone().map_err(SoupError::from)?;
        let writer = Arc::new(Mutex::new(ChaosWriter {
            writer: BufWriter::new(stream),
            raw,
            chaos: plan.chaos.clone(),
            shard,
            epoch,
            seq: 0,
        }));
        let mut this = Self {
            reader,
            writer,
            shard,
            patience,
            hb_stop: Arc::new(AtomicBool::new(false)),
            hb_thread: None,
        };
        this.send(OP_READY, &shard_epoch_payload(shard as u32, epoch))?;
        this.start_heartbeats(plan.worker_timeout() / 4, shard as u32, epoch);
        Ok(this)
    }

    fn send(&self, op: u8, payload: &[u8]) -> Result<()> {
        self.writer
            .lock()
            .map_err(|_| SoupError::corrupt("control writer poisoned"))?
            .send(op, payload)
    }

    /// Heartbeat at `interval` until the handle drops. Sleeps in short
    /// slices so shutdown never waits a full interval.
    fn start_heartbeats(&mut self, interval: Duration, shard: u32, epoch: u32) {
        let interval = interval.clamp(Duration::from_millis(25), Duration::from_secs(5));
        let writer = Arc::clone(&self.writer);
        let stop = Arc::clone(&self.hb_stop);
        self.hb_thread = Some(std::thread::spawn(move || {
            let payload = shard_epoch_payload(shard, epoch);
            let slice = Duration::from_millis(10);
            'outer: loop {
                let mut slept = Duration::ZERO;
                while slept < interval {
                    if stop.load(Ordering::Relaxed) {
                        break 'outer;
                    }
                    std::thread::sleep(slice);
                    slept += slice;
                }
                let Ok(mut w) = writer.lock() else { break };
                if w.send(OP_HEARTBEAT, &payload).is_err() {
                    break; // coordinator gone; the main thread will notice
                }
            }
        }));
    }

    /// A bounded read of the next control frame, mapping timeout to a
    /// typed [`SoupError::WorkerLost`].
    fn wait(&mut self, want: u8) -> Result<Vec<u8>> {
        match expect_frame(&mut self.reader, want) {
            Ok(p) => Ok(p),
            Err(SoupError::Io { source, .. })
                if matches!(
                    source.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                Err(SoupError::worker_lost(
                    self.shard,
                    format!(
                        "coordinator silent for {:.1}s waiting for opcode {want}",
                        self.patience.as_secs_f64()
                    ),
                ))
            }
            Err(e) => Err(e),
        }
    }

    pub fn wait_go(&mut self) -> Result<()> {
        self.wait(OP_GO).map(|_| ())
    }

    pub fn send_fetched(&mut self, shard: usize, epoch: u32) -> Result<()> {
        self.send(OP_FETCHED, &shard_epoch_payload(shard as u32, epoch))
    }

    pub fn wait_proceed(&mut self) -> Result<()> {
        self.wait(OP_PROCEED).map(|_| ())
    }

    /// Send the final RESULT and wait for the coordinator's ACK.
    pub fn send_result(&mut self, result: &ShardResult, epoch: u32) -> Result<()> {
        let json = serde_json::to_string(result)
            .map_err(|e| SoupError::usage(format!("shard result serialise: {e}")))?;
        let mut payload = Vec::with_capacity(8 + json.len());
        payload.extend_from_slice(&shard_epoch_payload(result.shard as u32, epoch));
        payload.extend_from_slice(json.as_bytes());
        self.send(OP_RESULT, &payload)?;
        self.wait(OP_ACK).map(|_| ())
    }
}

impl Drop for WorkerControl {
    fn drop(&mut self) {
        self.hb_stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.hb_thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soup_graph::mmap::save_mmap_dataset;
    use soup_graph::DatasetKind;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("soup-shard-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn prepare_relabels_into_contiguous_ranges() {
        let dir = tmpdir("prepare");
        let d = DatasetKind::Flickr.generate_scaled(21, 0.03);
        let src = dir.join("src.gmm");
        let out = dir.join("sharded.gmm");
        save_mmap_dataset(&d, &src).unwrap();
        let report = prepare_sharded_dataset(&src, 3, &out).unwrap();
        assert_eq!(report.nodes, d.num_nodes());
        assert_eq!(report.nnz, d.graph.num_directed_edges());
        // Ranges tile [0, n).
        assert_eq!(report.ranges[0].0, 0);
        assert_eq!(report.ranges[2].1 as usize, d.num_nodes());
        assert!(report.ranges.windows(2).all(|w| w[0].1 == w[1].0));
        // The rewritten dataset is structurally valid and has the same
        // degree multiset and label histogram.
        let m = MmapDataset::open(&out).unwrap();
        m.validate().unwrap();
        let mut old_degrees: Vec<usize> = (0..d.num_nodes()).map(|v| d.graph.degree(v)).collect();
        let mut new_degrees: Vec<usize> =
            (0..m.num_nodes()).map(|v| m.neighbors(v).len()).collect();
        old_degrees.sort_unstable();
        new_degrees.sort_unstable();
        assert_eq!(old_degrees, new_degrees);
        let hist = |labels: &[u32]| {
            let mut h = vec![0usize; d.num_classes];
            for &l in labels {
                h[l as usize] += 1;
            }
            h
        };
        assert_eq!(hist(m.labels()), hist(&d.labels));
        // Quality numbers are well-formed.
        assert!(report.quality.balance >= 1.0 - 1e-9);
        assert!(report.quality.halo_fraction >= 0.0);
        assert_eq!(report.quality.halo_counts.len(), 3);
    }

    #[test]
    fn prepare_preserves_edges_under_relabeling() {
        let dir = tmpdir("edges");
        let d = DatasetKind::Flickr.generate_scaled(22, 0.02);
        let src = dir.join("src.gmm");
        let out = dir.join("sharded.gmm");
        save_mmap_dataset(&d, &src).unwrap();
        prepare_sharded_dataset(&src, 2, &out).unwrap();
        let m = MmapDataset::open(&out).unwrap();
        // Features follow their node: match each relabeled node back to its
        // original by feature row, then check neighborhoods correspond.
        use std::collections::HashMap;
        let mut by_row: HashMap<Vec<u32>, usize> = HashMap::new();
        for v in 0..d.num_nodes() {
            let key: Vec<u32> = d.features.row(v).iter().map(|x| x.to_bits()).collect();
            assert!(by_row.insert(key, v).is_none(), "feature rows not unique");
        }
        let mut new_to_old = vec![usize::MAX; d.num_nodes()];
        for (v, slot) in new_to_old.iter_mut().enumerate() {
            let key: Vec<u32> = m.feature_row(v).iter().map(|x| x.to_bits()).collect();
            *slot = by_row[&key];
        }
        for v in (0..m.num_nodes()).step_by(11) {
            let mut mapped: Vec<u32> = m
                .neighbors(v)
                .iter()
                .map(|&u| new_to_old[u as usize] as u32)
                .collect();
            mapped.sort_unstable();
            assert_eq!(mapped, d.graph.neighbors(new_to_old[v]));
        }
    }

    #[test]
    fn plan_roundtrips_and_owner_lookup_works() {
        let dir = tmpdir("plan");
        let plan = ShardPlan {
            version: 1,
            dataset: dir.join("ds.gmm").display().to_string(),
            k: 3,
            ranges: vec![(0, 10), (10, 25), (25, 30)],
            seed: 42,
            rounds: 2,
            arch: "gcn".into(),
            hidden: 16,
            layers: 2,
            dropout: 0.1,
            epochs: 5,
            lr: 0.01,
            strategy: "pls".into(),
            soup_epochs: 4,
            pls_k: 4,
            pls_r: 2,
            out_dir: dir.display().to_string(),
            no_shm: false,
            resume: false,
            worker_timeout_ms: 5_000,
            restart_budget: 1,
            chaos: None,
        };
        let path = plan.save().unwrap();
        let back = ShardPlan::load(&path).unwrap();
        assert_eq!(back.ranges, plan.ranges);
        assert_eq!(back.seed, 42);
        assert_eq!(back.owner_of(0), 0);
        assert_eq!(back.owner_of(9), 0);
        assert_eq!(back.owner_of(10), 1);
        assert_eq!(back.owner_of(29), 2);
        assert_eq!(back.range(1), 10..25);
        assert_eq!(back.worker_timeout(), Duration::from_secs(5));
        assert_eq!(back.worker_patience(), Duration::from_secs(15));
    }

    #[test]
    fn plans_without_supervision_fields_get_defaults() {
        // A PR-9 plan.json predates worker_timeout_ms/restart_budget/chaos;
        // loading one must not fail and must land on the documented
        // defaults (30 s deadline, 2 respawns, no chaos).
        let dir = tmpdir("compat");
        let plan = ShardPlan {
            version: 1,
            dataset: "ds.gmm".into(),
            k: 1,
            ranges: vec![(0, 10)],
            seed: 1,
            rounds: 1,
            arch: "gcn".into(),
            hidden: 8,
            layers: 2,
            dropout: 0.0,
            epochs: 1,
            lr: 0.01,
            strategy: "us".into(),
            soup_epochs: 1,
            pls_k: 2,
            pls_r: 1,
            out_dir: dir.display().to_string(),
            no_shm: false,
            resume: false,
            worker_timeout_ms: 1,
            restart_budget: 9,
            chaos: None,
        };
        let mut value = serde_json::to_value(&plan);
        let serde_json::JsonValue::Object(fields) = &mut value else {
            panic!("plan serialises to an object");
        };
        fields.retain(|(k, _)| {
            !matches!(k.as_str(), "worker_timeout_ms" | "restart_budget" | "chaos")
        });
        let path = dir.join("plan.json");
        std::fs::write(&path, serde_json::to_string(&value).unwrap()).unwrap();
        let plan = ShardPlan::load(&path).unwrap();
        assert_eq!(plan.worker_timeout_ms, 30_000);
        assert_eq!(plan.restart_budget, 2);
        assert!(plan.chaos.is_none());
    }
}
