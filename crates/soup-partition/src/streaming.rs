//! Streaming one-pass partitioning for graphs that do not fit in RAM.
//!
//! The multilevel partitioner ([`crate::partition_graph`]) materialises a
//! hierarchy of coarsened graphs — fine for PLS's in-memory partition pool,
//! hopeless for a 2.4M-node mmap dataset. This module implements Linear
//! Deterministic Greedy (LDG, Stanton & Kliot, KDD 2012): nodes arrive in a
//! fixed order and each is placed on the partition holding most of its
//! already-placed neighbors, damped by a fullness penalty so loads stay
//! balanced. One sequential pass over the adjacency, `O(k)` scratch per
//! node, and the only full-size allocation is the assignment array itself —
//! it runs directly against [`soup_graph::mmap::MmapDataset`] without
//! faulting in feature pages at all.
//!
//! LDG cuts more edges than METIS on small graphs but is the standard
//! quality/scale trade-off in streaming settings; `soupctl partition`
//! prints both partitioners' quality metrics so the gap stays visible.
//! [`ldg_partition_restream`] closes most of that gap for a few extra
//! sequential passes (Nishimura & Ugander, KDD 2013): pass 1 only sees
//! already-placed neighbors, so late nodes are placed nearly blind; later
//! passes re-stream the same order scoring every node against the
//! *complete* previous assignment, which lets community structure pull
//! strays home. Each pass is one adjacency scan — still streaming, still
//! deterministic.

use soup_graph::NeighborAccess;

/// Fullness slack: a partition may exceed the ideal `n/k` size by this
/// factor before the penalty forbids further growth.
pub const DEFAULT_SLACK: f64 = 0.05;

/// Restreaming passes the shard-prepare pipeline runs. On shuffled
/// SBM-style streams the cut keeps tightening for 15-20 sweeps before
/// plateauing, and a sweep costs only one adjacency scan (~10ms per
/// 100k nodes), so the default leans toward convergence.
pub const DEFAULT_PASSES: usize = 20;

/// One-pass LDG partition of `g` into `k` parts. Deterministic: node order
/// is `0..n` and ties break toward the currently lightest (then lowest-
/// indexed) partition. Returns the node→partition assignment.
pub fn ldg_partition<G: NeighborAccess>(g: &G, k: usize, slack: f64) -> Vec<u32> {
    ldg_pass(g, k, slack, None)
}

/// Restreaming LDG: `passes` sequential LDG sweeps, each after the first
/// scoring against the previous sweep's complete assignment. Loads reset
/// every pass, so balance is re-established rather than inherited.
pub fn ldg_partition_restream<G: NeighborAccess>(
    g: &G,
    k: usize,
    slack: f64,
    passes: usize,
) -> Vec<u32> {
    assert!(passes >= 1, "restreaming needs at least one pass");
    let mut assignment = ldg_pass(g, k, slack, None);
    for _ in 1..passes {
        assignment = ldg_pass(g, k, slack, Some(&assignment));
    }
    assignment
}

/// One LDG sweep. A neighbor counts toward a partition's tally if it was
/// placed earlier in this sweep, or — when restreaming — wherever the
/// previous sweep left it.
fn ldg_pass<G: NeighborAccess>(g: &G, k: usize, slack: f64, prev: Option<&[u32]>) -> Vec<u32> {
    assert!(k >= 1, "k must be >= 1");
    let n = g.num_nodes();
    let capacity = ((n as f64 / k as f64) * (1.0 + slack)).ceil().max(1.0);
    let mut assignment = vec![u32::MAX; n];
    let mut loads = vec![0u64; k];
    // Neighbor tallies, reset per node by walking the touched entries.
    let mut tally = vec![0u64; k];
    let mut touched: Vec<u32> = Vec::with_capacity(k);
    for v in 0..n {
        for &u in g.neighbors(v) {
            let mut p = assignment[u as usize];
            if p == u32::MAX {
                if let Some(prev) = prev {
                    p = prev[u as usize];
                }
            }
            if p != u32::MAX {
                if tally[p as usize] == 0 {
                    touched.push(p);
                }
                tally[p as usize] += 1;
            }
        }
        let mut best: usize = 0;
        let mut best_score = f64::NEG_INFINITY;
        for p in 0..k {
            let fullness = loads[p] as f64 / capacity;
            if fullness >= 1.0 {
                continue;
            }
            // LDG score: neighbors already in p, damped by fullness. The
            // +1 keeps empty-neighborhood nodes flowing to light parts.
            let score = (tally[p] as f64 + 1.0) * (1.0 - fullness);
            let better = score > best_score
                || (score == best_score
                    && (loads[p] < loads[best] || (loads[p] == loads[best] && p < best)));
            if better {
                best = p;
                best_score = score;
            }
        }
        if best_score == f64::NEG_INFINITY {
            // All parts at capacity (only possible via rounding at tiny n):
            // fall back to the lightest.
            best = (0..k).min_by_key(|&p| loads[p]).unwrap();
        }
        assignment[v] = best as u32;
        loads[best] += 1;
        for &p in &touched {
            tally[p as usize] = 0;
        }
        touched.clear();
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::{balance_ratio, edge_cut_on, halo_fraction};
    use soup_graph::CsrGraph;
    use soup_tensor::SplitMix64;

    fn two_cliques(sz: usize) -> CsrGraph {
        let mut edges = Vec::new();
        for a in 0..sz {
            for b in (a + 1)..sz {
                edges.push((a as u32, b as u32));
                edges.push(((sz + a) as u32, (sz + b) as u32));
            }
        }
        edges.push((0, sz as u32)); // one bridge
        CsrGraph::from_edges(2 * sz, &edges)
    }

    #[test]
    fn ldg_splits_cliques_cleanly() {
        let g = two_cliques(16);
        let a = ldg_partition(&g, 2, DEFAULT_SLACK);
        // Each clique should land (almost) entirely in one part.
        let cut = edge_cut_on(&g, &a);
        assert!(cut <= 3, "LDG cut {cut} edges on a 1-bridge clique pair");
        let w = vec![1.0f32; g.num_nodes()];
        assert!(balance_ratio(&w, &a, 2) <= 1.0 + DEFAULT_SLACK + 0.1);
    }

    #[test]
    fn ldg_is_deterministic_and_balanced() {
        let mut rng = SplitMix64::new(42);
        let mut edges = Vec::new();
        let n = 400;
        for _ in 0..1600 {
            let a = rng.next_below(n) as u32;
            let b = rng.next_below(n) as u32;
            if a != b {
                edges.push((a, b));
            }
        }
        let g = CsrGraph::from_edges(n, &edges);
        let a1 = ldg_partition(&g, 4, DEFAULT_SLACK);
        let a2 = ldg_partition(&g, 4, DEFAULT_SLACK);
        assert_eq!(a1, a2);
        let w = vec![1.0f32; n];
        assert!(balance_ratio(&w, &a1, 4) <= 1.0 + DEFAULT_SLACK + 0.05);
        assert!(a1.iter().all(|&p| p < 4));
        // Sanity: the halo metric is computable and bounded.
        let hf = halo_fraction(&g, &a1, 4);
        assert!((0.0..=3.0).contains(&hf), "halo fraction {hf}");
    }

    #[test]
    fn restreaming_repairs_a_shuffled_community_stream() {
        // Planted-partition graph streamed in label-shuffled order: the
        // one-pass placement is nearly blind, restreaming must recover
        // most of the community structure (and stay deterministic).
        let mut rng = SplitMix64::new(7);
        let n = 600;
        let communities = 4;
        let per = n / communities;
        let order: Vec<u32> = {
            let mut o: Vec<u32> = (0..n as u32).collect();
            // Fisher-Yates so community members are scattered in the stream.
            for i in (1..n).rev() {
                let j = rng.next_below(i + 1);
                o.swap(i, j);
            }
            o
        };
        let mut edges = Vec::new();
        for c in 0..communities {
            for _ in 0..per * 8 {
                let a = order[c * per + rng.next_below(per)];
                let b = order[c * per + rng.next_below(per)];
                if a != b {
                    edges.push((a, b));
                }
            }
        }
        for _ in 0..n / 2 {
            let a = rng.next_below(n) as u32;
            let b = rng.next_below(n) as u32;
            if a != b {
                edges.push((a, b));
            }
        }
        let g = CsrGraph::from_edges(n, &edges);
        let one_pass = ldg_partition(&g, 4, DEFAULT_SLACK);
        let restreamed = ldg_partition_restream(&g, 4, DEFAULT_SLACK, DEFAULT_PASSES);
        assert_eq!(
            restreamed,
            ldg_partition_restream(&g, 4, DEFAULT_SLACK, DEFAULT_PASSES)
        );
        let (cut1, cutr) = (edge_cut_on(&g, &one_pass), edge_cut_on(&g, &restreamed));
        assert!(
            cutr * 2 < cut1,
            "restreaming should at least halve the cut: {cut1} -> {cutr}"
        );
        let w = vec![1.0f32; n];
        assert!(balance_ratio(&w, &restreamed, 4) <= 1.0 + DEFAULT_SLACK + 0.05);
        // passes=1 degenerates to the plain one-pass algorithm.
        assert_eq!(ldg_partition_restream(&g, 4, DEFAULT_SLACK, 1), one_pass);
    }

    #[test]
    fn ldg_k1_assigns_everything_to_zero() {
        let g = two_cliques(4);
        let a = ldg_partition(&g, 1, DEFAULT_SLACK);
        assert!(a.iter().all(|&p| p == 0));
    }
}
