//! # soup-serve — request serving over a souped model
//!
//! Online node-classification over the Phase-2 soup: a multi-threaded TCP
//! server answering `PREDICT` queries through the same fused inference
//! paths the offline pipeline uses (`predict_cached` for f32,
//! `predict_quant` for int8/bf16), with the serving concerns layered on
//! top:
//!
//! - **Micro-batching** ([`batcher`]) — queued requests coalesce into one
//!   full-graph forward under a max-batch / max-delay policy; answers are
//!   bit-identical to one-at-a-time evaluation because the forward is the
//!   same full-graph pass either way.
//! - **Admission control** ([`server`]) — a bounded queue; overflow gets
//!   an explicit `OVERLOADED` response instead of unbounded queueing.
//! - **Hot model swap** — `SWAP` (promote a checkpoint file) and `RESOUP`
//!   (re-soup a pool through the [`soup_core::SoupStrategy`] registry and
//!   promote the winner) replace the live `Arc<ServeModel>` under a write
//!   lock without pausing traffic; requests sent after the promote ack are
//!   guaranteed the new model.
//! - **Observability** — `serve.*` counters, latency/batch-size
//!   histograms, and a queue-depth gauge in the soup-obs registry,
//!   surfaced by the `STATS` opcode.
//!
//! The wire format ([`proto`]) is deliberately tiny: length-prefixed
//! binary frames over TCP, no external protocol dependencies. [`client`]
//! is the matching blocking client and [`load`] a deterministic
//! Zipf-skewed closed-loop generator used by `bench_serve` and CI.

pub mod batcher;
pub mod client;
pub mod load;
pub mod proto;
pub mod server;

pub use batcher::PredictReply;
pub use client::{Client, PredictResult};
pub use load::{run_closed_loop, LoadConfig, LoadReport, ZipfSampler};
pub use proto::{Opcode, Request, Response, Status, MAX_FRAME};
pub use server::{ServeConfig, ServeModel, Server};
