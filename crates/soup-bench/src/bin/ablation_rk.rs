//! §VI-B ablation: the PLS partition ratio R/K.
//!
//! Sweeps (R, K) combinations on one dataset, reporting accuracy, souping
//! memory, time and the number of possible subgraphs binom(K, R). Expected
//! shapes: memory tracks R/K; R=1 loses the cut edges and costs accuracy;
//! large binom(K,R) keeps epoch subgraphs diverse.
//!
//! Usage: `cargo run -p soup-bench --release --bin ablation_rk [quick|standard|full]`

use soup_bench::harness::{model_config, train_pool, write_csv, ExperimentPreset};
use soup_core::strategy::test_accuracy;
use soup_core::{LearnedHyper, PartitionLearnedSouping, SoupStrategy};
use soup_gnn::Arch;
use soup_graph::DatasetKind;
use soup_tensor::memory::format_bytes;

fn main() {
    let preset = ExperimentPreset::from_args();
    let dataset = DatasetKind::Reddit.generate_scaled(42, preset.dataset_scale);
    let cfg = model_config(Arch::Gcn, &dataset);
    let ingredients = train_pool(&dataset, &cfg, &preset, 42);
    println!(
        "ABLATION R/K (PLS on reddit/GCN, preset '{}', {} ingredients)",
        preset.name,
        ingredients.len()
    );
    println!(
        "{:>4} {:>4} {:>7} {:>14} {:>10} {:>10} {:>12}",
        "R", "K", "R/K", "binom(K,R)", "test acc", "time (s)", "peak mem"
    );
    let sweeps: &[(usize, usize)] = &[
        (1, 8),
        (2, 8),
        (4, 8),
        (1, 16),
        (4, 16),
        (8, 16),
        (16, 16),
        (2, 32),
        (8, 32),
    ];
    let hyper = LearnedHyper {
        epochs: preset.learned_epochs,
        ..Default::default()
    };
    let mut rows = Vec::new();
    for &(r, k) in sweeps {
        if dataset.num_nodes() < k {
            continue;
        }
        let pls = PartitionLearnedSouping::new(hyper, k, r);
        let outcome = pls.soup(&ingredients, &dataset, &cfg, 7);
        let acc = test_accuracy(&outcome, &dataset, &cfg);
        println!(
            "{:>4} {:>4} {:>7.3} {:>14.0} {:>9.2}% {:>10.3} {:>12}",
            r,
            k,
            pls.partition_ratio(),
            pls.num_possible_subgraphs(),
            acc * 100.0,
            outcome.stats.wall_time.as_secs_f64(),
            format_bytes(outcome.stats.peak_mem_bytes),
        );
        rows.push(format!(
            "{r},{k},{:.4},{:.0},{:.4},{:.4},{}",
            pls.partition_ratio(),
            pls.num_possible_subgraphs(),
            acc,
            outcome.stats.wall_time.as_secs_f64(),
            outcome.stats.peak_mem_bytes
        ));
    }
    let _ = write_csv(
        "ablation_rk",
        "r,k,ratio,combinations,test_acc,time_s,peak_mem_bytes",
        &rows,
    )
    .map(|p| soup_obs::info!("wrote {}", p.display()));
    soup_bench::harness::finish_observability();
}
