//! Shape-level reproduction of the paper's headline claims, at test scale:
//!
//! - LS is faster than GIS (Table III / Fig. 4a) — gradient descent beats
//!   exhaustive ratio search;
//! - PLS peaks at less memory than LS (Fig. 4b) and roughly tracks R/K;
//! - US is the fastest strategy but generally the least accurate among
//!   informed alternatives on diverse ingredient pools (§V);
//! - GIS forward-pass count follows O(N·g) while LS follows O(e) (§III-E).

use enhanced_soups::prelude::*;
use enhanced_soups::soup::LearnedHyper;

fn pool(seed: u64, scale: f64, n: usize) -> (Dataset, ModelConfig, Vec<Ingredient>) {
    let dataset = DatasetKind::Reddit.generate_scaled(seed, scale);
    let cfg = ModelConfig::gcn(dataset.num_features(), dataset.num_classes()).with_hidden(32);
    let tc = TrainConfig {
        epochs: 12,
        ..TrainConfig::quick()
    };
    let ingredients = train_ingredients(&dataset, &cfg, &tc, n, 4, seed);
    (dataset, cfg, ingredients)
}

#[test]
fn ls_is_faster_than_gis_at_paper_like_settings() {
    // Matched settings: GIS at granularity 20 over 6 ingredients performs
    // ~100 full-graph forwards; LS at 25 epochs performs 25 fwd+bwd.
    let (dataset, cfg, ingredients) = pool(1, 0.2, 6);
    let gis = GisSouping::new(20).soup(&ingredients, &dataset, &cfg, 3);
    let ls = LearnedSouping::new(LearnedHyper {
        epochs: 25,
        ..Default::default()
    })
    .soup(&ingredients, &dataset, &cfg, 3);
    assert!(
        ls.stats.wall_time < gis.stats.wall_time,
        "LS {:?} not faster than GIS {:?}",
        ls.stats.wall_time,
        gis.stats.wall_time
    );
}

#[test]
fn pls_uses_less_memory_than_ls_roughly_tracking_ratio() {
    let (dataset, cfg, ingredients) = pool(2, 0.3, 4);
    let hyper = LearnedHyper {
        epochs: 12,
        ..Default::default()
    };
    let ls = LearnedSouping::new(hyper).soup(&ingredients, &dataset, &cfg, 5);
    let pls = PartitionLearnedSouping::new(hyper, 16, 4).soup(&ingredients, &dataset, &cfg, 5);
    assert!(
        pls.stats.peak_mem_bytes < ls.stats.peak_mem_bytes,
        "PLS {} >= LS {}",
        pls.stats.peak_mem_bytes,
        ls.stats.peak_mem_bytes
    );
    // The activation share should be well under half of LS's peak for
    // R/K = 0.25 (model parameters are a shared constant floor).
    assert!(
        (pls.stats.peak_mem_bytes as f64) < 0.8 * ls.stats.peak_mem_bytes as f64,
        "PLS memory {} not well below LS {}",
        pls.stats.peak_mem_bytes,
        ls.stats.peak_mem_bytes
    );
}

#[test]
fn us_is_fastest_strategy() {
    let (dataset, cfg, ingredients) = pool(3, 0.15, 4);
    let hyper = LearnedHyper {
        epochs: 15,
        ..Default::default()
    };
    let us = UniformSouping.soup(&ingredients, &dataset, &cfg, 1);
    let gis = GisSouping::new(10).soup(&ingredients, &dataset, &cfg, 1);
    let ls = LearnedSouping::new(hyper).soup(&ingredients, &dataset, &cfg, 1);
    assert!(us.stats.wall_time <= gis.stats.wall_time);
    assert!(us.stats.wall_time <= ls.stats.wall_time);
}

#[test]
fn forward_pass_counts_follow_complexity_model() {
    use enhanced_soups::soup::complexity::{gis_cost, ls_cost, PassCost};
    let (dataset, cfg, ingredients) = pool(4, 0.15, 5);
    let g = 8;
    let e = 12;
    let gis = GisSouping::new(g).soup(&ingredients, &dataset, &cfg, 1);
    let ls = LearnedSouping::new(LearnedHyper {
        epochs: e,
        ..Default::default()
    })
    .soup(&ingredients, &dataset, &cfg, 1);
    // GIS: 1 + (N-1)(g-1) forwards; LS: e forwards.
    assert_eq!(gis.stats.forward_passes, 1 + (5 - 1) * (g - 1));
    assert_eq!(ls.stats.forward_passes, e);
    // Analytic model ordering agrees with measured counts.
    let unit = PassCost::from_forward(1.0);
    assert!(gis_cost(5, g, unit) > ls_cost(e, unit));
}

#[test]
fn informed_strategies_beat_us_on_diverse_pools() {
    // Make ingredients intentionally diverse by training some much longer
    // than others — the regime where US suffers (§V-A).
    let dataset = DatasetKind::OgbnArxiv.generate_scaled(5, 0.25);
    let cfg = ModelConfig::gcn(dataset.num_features(), dataset.num_classes()).with_hidden(32);
    let mut rng = enhanced_soups::tensor::SplitMix64::new(5);
    let init = enhanced_soups::gnn::model::init_params(&cfg, &mut rng);
    let mut ingredients = Vec::new();
    for (i, epochs) in [2usize, 3, 25, 30].iter().enumerate() {
        let tc = TrainConfig {
            epochs: *epochs,
            ..TrainConfig::quick()
        };
        let tm = enhanced_soups::gnn::train_single(&dataset, &cfg, &tc, &init, 100 + i as u64);
        ingredients.push(Ingredient::new(
            i,
            tm.params,
            tm.val_accuracy,
            100 + i as u64,
        ));
    }
    let us = UniformSouping.soup(&ingredients, &dataset, &cfg, 1);
    let gis = GisSouping::new(10).soup(&ingredients, &dataset, &cfg, 1);
    assert!(
        gis.val_accuracy > us.val_accuracy,
        "GIS {} should beat US {} on a mixed-quality pool",
        gis.val_accuracy,
        us.val_accuracy
    );
}
