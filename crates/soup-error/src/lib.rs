//! # soup-error
//!
//! The workspace-wide typed error enum. Every crate in the Enhanced Soups
//! stack that can fail at a public API boundary returns [`SoupError`]
//! (usually through the [`Result`] alias) instead of `String` or a bare
//! `std::io::Error`, so callers — `soupctl`, the fault-tolerant Phase-1
//! trainer, the bench harness — can match on *what* failed and decide
//! whether to retry, skip, degrade, or abort.
//!
//! The variants mirror the failure domains of the pipeline:
//!
//! | variant | raised by |
//! |---|---|
//! | [`SoupError::Io`] | filesystem access (datasets, checkpoints, traces) |
//! | [`SoupError::Parse`] | JSON/flag/schema decoding |
//! | [`SoupError::Shape`] | tensor/architecture mismatches |
//! | [`SoupError::Checkpoint`] | checkpoint format/version problems |
//! | [`SoupError::Corrupt`] | NaN/Inf or garbage payloads that parsed but are unusable |
//! | [`SoupError::WorkerPanic`] | a Phase-1 worker died inside `train_single` |
//! | [`SoupError::Exhausted`] | a task failed more times than its retry budget |
//! | [`SoupError::Numeric`] | numeric validation (gradcheck disagreement, divergence) |
//! | [`SoupError::Usage`] | CLI / builder misuse (missing or unparsable options) |
//! | [`SoupError::WorkerLost`] | a shard-worker OS process crashed or missed its heartbeat deadline |
//! | [`SoupError::ShardDegraded`] | shard(s) exhausted their restart budget; run carries on without them |

use std::fmt;
use std::path::{Path, PathBuf};

/// Workspace-wide result alias. Re-exported as `soup_core::Result`.
pub type Result<T> = std::result::Result<T, SoupError>;

/// The unified error type of the Enhanced Soups workspace.
#[derive(Debug)]
pub enum SoupError {
    /// Filesystem-level failure, with the path that was being accessed
    /// when it happened (when known).
    Io {
        path: Option<PathBuf>,
        source: std::io::Error,
    },
    /// Decoding failure: invalid JSON, an unknown enum name, a malformed
    /// trace line, an unparsable CLI value.
    Parse(String),
    /// Structural mismatch: tensor shapes, layer counts, architecture
    /// disagreements between ingredients.
    Shape(String),
    /// A checkpoint exists but cannot be used: wrong format version,
    /// missing fields, metadata that contradicts the run.
    Checkpoint(String),
    /// A payload parsed but its contents are unusable — non-finite
    /// parameters, truncated tensors, corrupted bytes.
    Corrupt(String),
    /// A Phase-1 worker panicked while training an ingredient. Carries the
    /// ingredient ordinal and the captured panic message.
    WorkerPanic { ordinal: usize, message: String },
    /// A task failed more times than its retry budget allows. Carries the
    /// last underlying error.
    Exhausted {
        ordinal: usize,
        attempts: u32,
        last: Box<SoupError>,
    },
    /// Numeric validation failure: gradient-check disagreement, diverged
    /// optimisation, out-of-tolerance comparisons.
    Numeric(String),
    /// API or CLI misuse: missing required flag, invalid option combination.
    Usage(String),
    /// A shard-worker OS process was lost: it exited unexpectedly, hung past
    /// its heartbeat deadline, or its control socket died mid-protocol. The
    /// supervisor treats this as retryable — the worker can be respawned and
    /// resume from its shard journal.
    WorkerLost { shard: usize, message: String },
    /// One or more shards exhausted their restart budget. Carries the shard
    /// ordinals that are missing from the run. Not retryable: the supervisor
    /// only raises it once every respawn avenue is spent (a partially
    /// degraded run finishes `Ok` with provenance instead).
    ShardDegraded { shards: Vec<usize>, message: String },
}

impl SoupError {
    /// An [`SoupError::Io`] tagged with the path being accessed.
    pub fn io_at(path: impl AsRef<Path>, source: std::io::Error) -> Self {
        Self::Io {
            path: Some(path.as_ref().to_path_buf()),
            source,
        }
    }

    pub fn parse(msg: impl Into<String>) -> Self {
        Self::Parse(msg.into())
    }

    pub fn shape(msg: impl Into<String>) -> Self {
        Self::Shape(msg.into())
    }

    pub fn checkpoint(msg: impl Into<String>) -> Self {
        Self::Checkpoint(msg.into())
    }

    pub fn corrupt(msg: impl Into<String>) -> Self {
        Self::Corrupt(msg.into())
    }

    pub fn numeric(msg: impl Into<String>) -> Self {
        Self::Numeric(msg.into())
    }

    pub fn usage(msg: impl Into<String>) -> Self {
        Self::Usage(msg.into())
    }

    /// A [`SoupError::WorkerLost`] for shard `shard`.
    pub fn worker_lost(shard: usize, message: impl Into<String>) -> Self {
        Self::WorkerLost {
            shard,
            message: message.into(),
        }
    }

    /// A [`SoupError::ShardDegraded`] naming the missing shards.
    pub fn shard_degraded(shards: Vec<usize>, message: impl Into<String>) -> Self {
        Self::ShardDegraded {
            shards,
            message: message.into(),
        }
    }

    /// Whether retrying the failed operation could plausibly succeed —
    /// the predicate the Phase-1 requeue logic uses. Structural errors
    /// (shape, usage) are deterministic and not worth a retry slot.
    pub fn is_retryable(&self) -> bool {
        match self {
            SoupError::Io { .. }
            | SoupError::WorkerPanic { .. }
            | SoupError::WorkerLost { .. }
            | SoupError::Corrupt(_)
            | SoupError::Checkpoint(_) => true,
            SoupError::Parse(_)
            | SoupError::Shape(_)
            | SoupError::Numeric(_)
            | SoupError::Usage(_)
            | SoupError::Exhausted { .. }
            | SoupError::ShardDegraded { .. } => false,
        }
    }

    /// Short stable kind tag ("io", "parse", ...) for metrics/trace labels.
    pub fn kind(&self) -> &'static str {
        match self {
            SoupError::Io { .. } => "io",
            SoupError::Parse(_) => "parse",
            SoupError::Shape(_) => "shape",
            SoupError::Checkpoint(_) => "checkpoint",
            SoupError::Corrupt(_) => "corrupt",
            SoupError::WorkerPanic { .. } => "worker_panic",
            SoupError::Exhausted { .. } => "exhausted",
            SoupError::Numeric(_) => "numeric",
            SoupError::Usage(_) => "usage",
            SoupError::WorkerLost { .. } => "worker_lost",
            SoupError::ShardDegraded { .. } => "shard_degraded",
        }
    }
}

impl fmt::Display for SoupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SoupError::Io { path: Some(p), source } => {
                write!(f, "io error at {}: {source}", p.display())
            }
            SoupError::Io { path: None, source } => write!(f, "io error: {source}"),
            SoupError::Parse(m) => write!(f, "parse error: {m}"),
            SoupError::Shape(m) => write!(f, "shape mismatch: {m}"),
            SoupError::Checkpoint(m) => write!(f, "checkpoint error: {m}"),
            SoupError::Corrupt(m) => write!(f, "corrupt data: {m}"),
            SoupError::WorkerPanic { ordinal, message } => {
                write!(f, "worker panicked on ingredient {ordinal}: {message}")
            }
            SoupError::Exhausted {
                ordinal,
                attempts,
                last,
            } => write!(
                f,
                "ingredient {ordinal} failed {attempts} attempts (retry budget exhausted); last error: {last}"
            ),
            SoupError::Numeric(m) => write!(f, "numeric error: {m}"),
            SoupError::Usage(m) => write!(f, "{m}"),
            SoupError::WorkerLost { shard, message } => {
                write!(f, "shard {shard} worker lost: {message}")
            }
            SoupError::ShardDegraded { shards, message } => {
                write!(f, "shards {shards:?} degraded: {message}")
            }
        }
    }
}

impl std::error::Error for SoupError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SoupError::Io { source, .. } => Some(source),
            SoupError::Exhausted { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SoupError {
    fn from(source: std::io::Error) -> Self {
        Self::Io { path: None, source }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SoupError::io_at(
            "/tmp/x.json",
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        );
        let s = e.to_string();
        assert!(s.contains("/tmp/x.json") && s.contains("gone"), "{s}");

        let e = SoupError::WorkerPanic {
            ordinal: 3,
            message: "boom".into(),
        };
        assert!(e.to_string().contains("ingredient 3"));
    }

    #[test]
    fn exhausted_chains_source() {
        let last = SoupError::WorkerPanic {
            ordinal: 1,
            message: "x".into(),
        };
        let e = SoupError::Exhausted {
            ordinal: 1,
            attempts: 3,
            last: Box::new(last),
        };
        let src = std::error::Error::source(&e).expect("has source");
        assert!(src.to_string().contains("panicked"));
    }

    #[test]
    fn retryability_classification() {
        assert!(SoupError::corrupt("nan").is_retryable());
        assert!(SoupError::WorkerPanic {
            ordinal: 0,
            message: String::new()
        }
        .is_retryable());
        assert!(!SoupError::usage("missing --out").is_retryable());
        assert!(!SoupError::shape("2x2 vs 3x3").is_retryable());
    }

    #[test]
    fn from_io_error() {
        let e: SoupError = std::io::Error::other("disk").into();
        assert_eq!(e.kind(), "io");
    }

    #[test]
    fn kind_tags_are_stable() {
        assert_eq!(SoupError::parse("x").kind(), "parse");
        assert_eq!(SoupError::checkpoint("x").kind(), "checkpoint");
        assert_eq!(SoupError::numeric("x").kind(), "numeric");
        assert_eq!(SoupError::worker_lost(1, "x").kind(), "worker_lost");
        assert_eq!(
            SoupError::shard_degraded(vec![0], "x").kind(),
            "shard_degraded"
        );
    }

    #[test]
    fn supervision_kinds_classify_and_display() {
        // A lost worker is worth a respawn; a degraded run is final.
        let lost = SoupError::worker_lost(2, "heartbeat deadline (30s) missed");
        assert!(lost.is_retryable());
        let s = lost.to_string();
        assert!(s.contains("shard 2") && s.contains("heartbeat"), "{s}");

        let degraded = SoupError::shard_degraded(vec![0, 3], "restart budget exhausted");
        assert!(!degraded.is_retryable());
        let s = degraded.to_string();
        assert!(s.contains("[0, 3]") && s.contains("budget"), "{s}");
    }
}
