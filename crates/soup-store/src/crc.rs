//! CRC32 (IEEE 802.3, reflected polynomial `0xEDB8_8320`) — the checksum
//! guarding every `soup-ckpt/2` envelope payload.
//!
//! Implemented in-repo (the build is offline) with a 256-entry lookup table
//! generated at compile time. Matches the ubiquitous zlib/`crc32fast`
//! parameterisation: init `0xFFFF_FFFF`, reflected in/out, final xor
//! `0xFFFF_FFFF` — so envelopes stay verifiable by standard tooling.

/// Compile-time generated lookup table for the reflected IEEE polynomial.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC32 of `bytes` (one-shot).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for the IEEE parameterisation.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flip() {
        let mut data = b"the quick brown fox".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), clean, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
        assert_eq!(crc32(&data), clean);
    }
}
