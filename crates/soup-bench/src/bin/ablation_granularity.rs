//! §II/III-E ablation: GIS granularity.
//!
//! GIS cost is O(N·g·F_v); this sweep shows time growing linearly in `g`
//! while accuracy saturates — the inefficiency motivating Learned Souping.
//!
//! Usage: `cargo run -p soup-bench --release --bin ablation_granularity [preset]`

use soup_bench::harness::{model_config, train_pool, write_csv, ExperimentPreset};
use soup_core::strategy::test_accuracy;
use soup_core::{GisSouping, SoupStrategy};
use soup_gnn::Arch;
use soup_graph::DatasetKind;

fn main() {
    let preset = ExperimentPreset::from_args();
    let dataset = DatasetKind::Flickr.generate_scaled(42, preset.dataset_scale);
    let cfg = model_config(Arch::Gcn, &dataset);
    let ingredients = train_pool(&dataset, &cfg, &preset, 42);
    println!(
        "ABLATION GIS granularity (flickr/GCN, preset '{}', {} ingredients)",
        preset.name,
        ingredients.len()
    );
    println!(
        "{:>6} {:>12} {:>10} {:>10}",
        "g", "forwards", "test acc", "time (s)"
    );
    let mut rows = Vec::new();
    for g in [2, 4, 8, 16, 32, 64] {
        let gis = GisSouping::new(g);
        let outcome = gis.soup(&ingredients, &dataset, &cfg, 3);
        let acc = test_accuracy(&outcome, &dataset, &cfg);
        println!(
            "{:>6} {:>12} {:>9.2}% {:>10.3}",
            g,
            outcome.stats.forward_passes,
            acc * 100.0,
            outcome.stats.wall_time.as_secs_f64()
        );
        rows.push(format!(
            "{g},{},{:.4},{:.4}",
            outcome.stats.forward_passes,
            acc,
            outcome.stats.wall_time.as_secs_f64()
        ));
    }
    let _ = write_csv(
        "ablation_granularity",
        "granularity,forwards,test_acc,time_s",
        &rows,
    )
    .map(|p| soup_obs::info!("wrote {}", p.display()));
    soup_bench::harness::finish_observability();
}
