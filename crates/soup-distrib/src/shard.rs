//! Multi-process sharded Phase-1: plan, dataset preparation, coordinator.
//!
//! Threads share an address space, so the thread-pool trainer
//! ([`crate::train_ingredients_opts`]) can never demonstrate the paper's
//! memory claim — every worker sees the whole graph. This module promotes
//! workers to OS processes that each *own* one contiguous node range of a
//! shard-ordered mmap dataset:
//!
//! 1. [`prepare_sharded_dataset`] partitions the graph (streaming LDG),
//!    relabels nodes so every shard is a contiguous id range, and rewrites
//!    the dataset in shard order — after which "shard `i`'s data" and
//!    "shard `i`'s pages" are the same thing (the DGL playbook);
//! 2. [`run_sharded`] forks one worker process per shard (any executable
//!    that calls [`crate::shard_worker::run_shard_worker`] — `soupctl
//!    shard-worker` or `bench_shard` re-executing itself), sequences them
//!    through the READY → GO → FETCHED → PROCEED → RESULT control protocol
//!    over a Unix socket ([`crate::halo`]), and aggregates their
//!    shard-local test counts into one global accuracy.
//!
//! Each worker trains its ingredients and soups them entirely inside its
//! shard (Phase-1 + PLS), checkpointing through the usual `soup-store`
//! journal in `out_dir/shard-<i>/` — so `--resume` works per shard, and a
//! killed run restarts only the unfinished shards' missing ingredients.

use std::io::{BufReader, BufWriter};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use soup_error::SoupError;
use soup_graph::mmap::{write_mmap_dataset, MmapDataset, MmapMeta};
use soup_partition::quality::{edge_cut_on, halo_counts};
use soup_partition::streaming::{ldg_partition_restream, DEFAULT_PASSES, DEFAULT_SLACK};

use crate::halo::{
    control_socket_path, expect_frame, u32_payload, write_frame, OP_ACK, OP_FETCHED, OP_GO,
    OP_PROCEED, OP_READY, OP_RESULT,
};

type Result<T> = std::result::Result<T, SoupError>;

/// Everything a shard worker needs to run, serialised as
/// `out_dir/plan.json`. Paths are strings because the plan crosses a
/// process boundary as JSON.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardPlan {
    pub version: u32,
    /// Shard-ordered `soup-graphmmap/1` dataset path.
    pub dataset: String,
    /// Shard count (= worker process count).
    pub k: usize,
    /// Owned node range `[start, end)` per shard, in the relabeled ids.
    pub ranges: Vec<(u64, u64)>,
    /// Root seed; shard `i` derives its own stream from it.
    pub seed: u64,
    /// Ingredients each shard trains (the per-shard Phase-1 `R`).
    pub rounds: usize,
    /// Model: architecture name (`gcn`|`sage`|`gat`|`gin`) + shape.
    pub arch: String,
    pub hidden: usize,
    pub layers: usize,
    pub dropout: f32,
    /// Ingredient training epochs + learning rate.
    pub epochs: usize,
    pub lr: f32,
    /// Souping strategy (`us`|`greedy`|`gis`|`ls`|`pls`) and its knobs.
    pub strategy: String,
    pub soup_epochs: usize,
    pub pls_k: usize,
    pub pls_r: usize,
    /// Run directory: control/halo sockets, `plan.json`, `shard-<i>/` state.
    pub out_dir: String,
    /// Force the UDS halo path even where the shared map is available.
    pub no_shm: bool,
    /// Reuse valid per-shard checkpoints instead of retraining.
    pub resume: bool,
}

impl ShardPlan {
    pub fn out_dir_path(&self) -> PathBuf {
        PathBuf::from(&self.out_dir)
    }

    pub fn dataset_path(&self) -> PathBuf {
        PathBuf::from(&self.dataset)
    }

    pub fn shard_dir(&self, shard: usize) -> PathBuf {
        self.out_dir_path().join(format!("shard-{shard}"))
    }

    pub fn plan_path(&self) -> PathBuf {
        self.out_dir_path().join("plan.json")
    }

    /// Owned range of `shard` as usizes.
    pub fn range(&self, shard: usize) -> std::ops::Range<usize> {
        let (s, e) = self.ranges[shard];
        s as usize..e as usize
    }

    /// The shard that owns (relabeled) node `v`.
    pub fn owner_of(&self, v: usize) -> usize {
        self.ranges.partition_point(|&(_, end)| (end as usize) <= v)
    }

    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| SoupError::io_at(path, e))?;
        let plan: ShardPlan = serde_json::from_str(&text)
            .map_err(|e| SoupError::corrupt(format!("shard plan {}: {e}", path.display())))?;
        if plan.version != 1 {
            return Err(SoupError::corrupt(format!(
                "shard plan version {} unsupported",
                plan.version
            )));
        }
        if plan.ranges.len() != plan.k {
            return Err(SoupError::corrupt(format!(
                "shard plan: {} ranges for k={}",
                plan.ranges.len(),
                plan.k
            )));
        }
        Ok(plan)
    }

    pub fn save(&self) -> Result<PathBuf> {
        let path = self.plan_path();
        let text = serde_json::to_string(self)
            .map_err(|e| SoupError::usage(format!("shard plan serialise: {e}")))?;
        soup_store::write_durable(&path, text.as_bytes())?;
        Ok(path)
    }
}

/// Partition quality of a prepared sharding, printed by `soupctl
/// partition` and exported as soup-obs gauges.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardQuality {
    /// Undirected edges crossing shard boundaries.
    pub edge_cut: usize,
    /// `Σ_p |halo(p)| / n` — remote feature rows per owned node.
    pub halo_fraction: f64,
    /// Largest shard over ideal `n/k` size.
    pub balance: f64,
    /// Distinct out-of-shard neighbors per shard.
    pub halo_counts: Vec<usize>,
}

impl ShardQuality {
    /// Publish as gauges (`partition.edge_cut`, `partition.halo_fraction`,
    /// `partition.balance`) so metric series and `soupctl obs` see them.
    pub fn export_gauges(&self) {
        soup_obs::gauge!("partition.edge_cut").set(self.edge_cut as f64);
        soup_obs::gauge!("partition.halo_fraction").set(self.halo_fraction);
        soup_obs::gauge!("partition.balance").set(self.balance);
    }
}

/// Output of [`prepare_sharded_dataset`].
#[derive(Debug, Clone)]
pub struct PrepareReport {
    pub ranges: Vec<(u64, u64)>,
    pub quality: ShardQuality,
    pub nodes: usize,
    pub nnz: usize,
}

/// Compute the shard assignment and quality for `src` without rewriting
/// anything (the analysis half of [`prepare_sharded_dataset`]).
pub fn analyze_sharding(src: &MmapDataset, k: usize) -> (Vec<u32>, ShardQuality) {
    let assignment = ldg_partition_restream(src, k, DEFAULT_SLACK, DEFAULT_PASSES);
    let counts = halo_counts(src, &assignment, k);
    let n = src.num_nodes();
    let mut sizes = vec![0usize; k];
    for &p in &assignment {
        sizes[p as usize] += 1;
    }
    let ideal = n as f64 / k as f64;
    let balance = sizes.iter().copied().max().unwrap_or(0) as f64 / ideal;
    let quality = ShardQuality {
        edge_cut: edge_cut_on(src, &assignment),
        halo_fraction: counts.iter().sum::<usize>() as f64 / n.max(1) as f64,
        balance,
        halo_counts: counts,
    };
    (assignment, quality)
}

/// Partition `src_path` into `k` shards and rewrite it shard-ordered at
/// `out_path`: nodes are relabeled so shard `p` owns the contiguous range
/// `[offset_p, offset_{p+1})`, adjacency rows are remapped and re-sorted,
/// features/labels/splits follow the same permutation. The rewrite streams
/// row by row — peak memory is the id maps (`O(n)` u32s), never the
/// feature matrix.
pub fn prepare_sharded_dataset(
    src_path: impl AsRef<Path>,
    k: usize,
    out_path: impl AsRef<Path>,
) -> Result<PrepareReport> {
    let src = MmapDataset::open(&src_path)?;
    src.validate()?;
    let n = src.num_nodes();
    assert!(k >= 1 && k <= n.max(1), "k={k} outside 1..={n}");
    let (assignment, quality) = analyze_sharding(&src, k);

    // Stable relabeling: new id = shard offset + arrival order within the
    // shard. Two O(n) u32 maps; u32 is enough because the mmap format
    // already caps node ids at u32.
    let mut sizes = vec![0usize; k];
    for &p in &assignment {
        sizes[p as usize] += 1;
    }
    let mut offsets = vec![0usize; k + 1];
    for p in 0..k {
        offsets[p + 1] = offsets[p] + sizes[p];
    }
    let ranges: Vec<(u64, u64)> = (0..k)
        .map(|p| (offsets[p] as u64, offsets[p + 1] as u64))
        .collect();
    let mut next = offsets[..k].to_vec();
    let mut old_to_new: Vec<u32> = vec![0; n];
    let mut new_to_old: Vec<u32> = vec![0; n];
    for old in 0..n {
        let p = assignment[old] as usize;
        let new = next[p];
        next[p] += 1;
        old_to_new[old] = new as u32;
        new_to_old[new] = old as u32;
    }

    let meta = MmapMeta {
        n,
        nnz: src.num_directed_edges(),
        feature_dim: src.feature_dim(),
        num_classes: src.num_classes(),
        train_len: src.train_ids().len(),
        val_len: src.val_ids().len(),
        test_len: src.test_ids().len(),
    };
    write_mmap_dataset(&out_path, &meta, |w| {
        let mut acc = 0u64;
        w.put_indptr(0)?;
        for &old in &new_to_old {
            acc += src.neighbors(old as usize).len() as u64;
            w.put_indptr(acc)?;
        }
        let mut row: Vec<u32> = Vec::new();
        for &old in &new_to_old {
            row.clear();
            row.extend(
                src.neighbors(old as usize)
                    .iter()
                    .map(|&u| old_to_new[u as usize]),
            );
            row.sort_unstable();
            for &c in &row {
                w.put_index(c)?;
            }
        }
        for &old in &new_to_old {
            w.put_feature_row(src.feature_row(old as usize))?;
        }
        let labels = src.labels();
        for &old in &new_to_old {
            w.put_label(labels[old as usize])?;
        }
        let remap_sorted = |ids: &[u32]| {
            let mut v: Vec<u32> = ids.iter().map(|&i| old_to_new[i as usize]).collect();
            v.sort_unstable();
            v
        };
        for v in remap_sorted(src.train_ids()) {
            w.put_train_id(v)?;
        }
        for v in remap_sorted(src.val_ids()) {
            w.put_val_id(v)?;
        }
        for v in remap_sorted(src.test_ids()) {
            w.put_test_id(v)?;
        }
        Ok(())
    })?;

    Ok(PrepareReport {
        ranges,
        quality,
        nodes: n,
        nnz: meta.nnz,
    })
}

/// What one shard worker reports back over the control socket (and writes
/// durably to `shard-<i>/result.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardResult {
    pub shard: usize,
    /// Correct predictions on the shard's owned test nodes.
    pub correct: u64,
    pub test_total: u64,
    /// Soup validation accuracy on the shard's owned val nodes.
    pub val_accuracy: f64,
    pub test_accuracy: f64,
    pub wall_ms: u64,
    /// `VmHWM` of the worker process at reporting time.
    pub peak_rss_bytes: u64,
    pub ingredients: usize,
    /// Ingredients satisfied from checkpoints (`--resume`).
    pub resumed: usize,
    /// Distinct remote feature rows this shard fetched.
    pub halo_nodes: usize,
    /// Whether the shared-map fast path served the halo (vs UDS frames).
    pub used_shm: bool,
}

/// Aggregated outcome of a sharded run.
#[derive(Debug, Clone)]
pub struct ShardRunReport {
    pub per_shard: Vec<ShardResult>,
    /// Global test accuracy: `Σ correct / Σ total` over all shards.
    pub test_accuracy: f64,
    pub wall_ms: u64,
    /// Largest worker `VmHWM` — the number the R/K claim is about.
    pub max_worker_peak_rss: u64,
}

/// How to launch a worker process: an executable plus argument prefix; the
/// coordinator appends `--plan <path> --shard <i>`. `soupctl` passes
/// `(current_exe, ["shard-worker"])`; `bench_shard` re-executes itself.
#[derive(Debug, Clone)]
pub struct WorkerLaunch {
    pub exe: PathBuf,
    pub args: Vec<String>,
}

impl WorkerLaunch {
    pub fn new(exe: PathBuf, args: &[&str]) -> Self {
        Self {
            exe,
            args: args.iter().map(|s| s.to_string()).collect(),
        }
    }
}

/// Kill-on-drop guard so a coordinator error never leaks worker processes.
struct Children(Vec<std::process::Child>);

impl Drop for Children {
    fn drop(&mut self) {
        for child in &mut self.0 {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Fork one worker per shard and drive the control protocol:
/// accept K × READY, broadcast GO (all halo servers are now listening),
/// collect K × FETCHED, broadcast PROCEED (halo exchange done — training
/// may start), then collect K × RESULT and ACK each worker out.
///
/// The coordinator itself never maps the dataset: its resident set stays
/// at process baseline, which keeps the bench's memory accounting honest.
pub fn run_sharded(plan: &ShardPlan, launch: &WorkerLaunch) -> Result<ShardRunReport> {
    let _span = soup_obs::span!("distrib.shard_run");
    let start = Instant::now();
    let out_dir = plan.out_dir_path();
    std::fs::create_dir_all(&out_dir).map_err(|e| SoupError::io_at(&out_dir, e))?;
    let plan_path = plan.save()?;

    let control = control_socket_path(&out_dir);
    let _ = std::fs::remove_file(&control);
    for shard in 0..plan.k {
        let _ = std::fs::remove_file(crate::halo::halo_socket_path(&out_dir, shard));
    }
    let listener = UnixListener::bind(&control).map_err(|e| SoupError::io_at(&control, e))?;

    let mut children = Children(Vec::with_capacity(plan.k));
    for shard in 0..plan.k {
        let child = std::process::Command::new(&launch.exe)
            .args(&launch.args)
            .arg("--plan")
            .arg(&plan_path)
            .arg("--shard")
            .arg(shard.to_string())
            .spawn()
            .map_err(|e| SoupError::io_at(&launch.exe, e))?;
        children.0.push(child);
    }

    // READY barrier: every worker's halo server is listening.
    let mut conns: Vec<Option<ControlConn>> = (0..plan.k).map(|_| None).collect();
    for _ in 0..plan.k {
        let (stream, _) = listener
            .accept()
            .map_err(|e| SoupError::io_at(&control, e))?;
        stream
            .set_read_timeout(Some(Duration::from_secs(3600)))
            .map_err(SoupError::from)?;
        let mut conn = ControlConn::new(stream)?;
        let shard = u32_payload(&expect_frame(&mut conn.reader, OP_READY)?)? as usize;
        if shard >= plan.k || conns[shard].is_some() {
            return Err(SoupError::corrupt(format!(
                "shard coordinator: bad or duplicate READY from shard {shard}"
            )));
        }
        conns[shard] = Some(conn);
    }
    let mut conns: Vec<ControlConn> = conns.into_iter().map(|c| c.unwrap()).collect();

    for conn in &mut conns {
        write_frame(&mut conn.writer, OP_GO, &[])?;
    }
    // FETCHED barrier: every worker's halo is resident; serving shards can
    // now be busy training without starving a neighbor's fetch.
    for conn in &mut conns {
        let shard = u32_payload(&expect_frame(&mut conn.reader, OP_FETCHED)?)?;
        let _ = shard;
    }
    for conn in &mut conns {
        write_frame(&mut conn.writer, OP_PROCEED, &[])?;
    }

    let mut per_shard: Vec<ShardResult> = Vec::with_capacity(plan.k);
    for conn in &mut conns {
        let payload = expect_frame(&mut conn.reader, OP_RESULT)?;
        if payload.len() < 4 {
            return Err(SoupError::corrupt("shard RESULT shorter than its header"));
        }
        let json = std::str::from_utf8(&payload[4..])
            .map_err(|_| SoupError::corrupt("shard RESULT payload is not UTF-8"))?;
        let result: ShardResult = serde_json::from_str(json)
            .map_err(|e| SoupError::corrupt(format!("shard RESULT decode: {e}")))?;
        per_shard.push(result);
        write_frame(&mut conn.writer, OP_ACK, &[])?;
    }
    per_shard.sort_by_key(|r| r.shard);

    for (shard, child) in children.0.iter_mut().enumerate() {
        let status = child.wait().map_err(SoupError::from)?;
        if !status.success() {
            return Err(SoupError::corrupt(format!(
                "shard worker {shard} exited with {status}"
            )));
        }
    }
    children.0.clear();

    let correct: u64 = per_shard.iter().map(|r| r.correct).sum();
    let total: u64 = per_shard.iter().map(|r| r.test_total).sum();
    let max_worker_peak_rss = per_shard
        .iter()
        .map(|r| r.peak_rss_bytes)
        .max()
        .unwrap_or(0);
    soup_obs::gauge!("shard.test_accuracy").set(correct as f64 / total.max(1) as f64);
    soup_obs::gauge!("shard.max_worker_peak_rss").set(max_worker_peak_rss as f64);
    Ok(ShardRunReport {
        test_accuracy: correct as f64 / total.max(1) as f64,
        per_shard,
        wall_ms: start.elapsed().as_millis() as u64,
        max_worker_peak_rss,
    })
}

/// One accepted control connection, split into buffered halves.
struct ControlConn {
    reader: BufReader<UnixStream>,
    writer: BufWriter<UnixStream>,
}

impl ControlConn {
    fn new(stream: UnixStream) -> Result<Self> {
        let reader = BufReader::new(stream.try_clone().map_err(SoupError::from)?);
        let writer = BufWriter::new(stream);
        Ok(Self { reader, writer })
    }
}

/// Worker-side control handle: connect, then step through the barriers.
pub struct WorkerControl {
    reader: BufReader<UnixStream>,
    writer: BufWriter<UnixStream>,
}

impl WorkerControl {
    /// Connect to the coordinator (retrying while it binds) and announce
    /// this shard as READY.
    pub fn connect(out_dir: &Path, shard: usize) -> Result<Self> {
        let path = control_socket_path(out_dir);
        let stream = crate::halo::connect_retry(&path, Duration::from_secs(30))?;
        stream
            .set_read_timeout(Some(Duration::from_secs(3600)))
            .map_err(SoupError::from)?;
        let reader = BufReader::new(stream.try_clone().map_err(SoupError::from)?);
        let mut this = Self {
            reader,
            writer: BufWriter::new(stream),
        };
        write_frame(&mut this.writer, OP_READY, &(shard as u32).to_le_bytes())?;
        Ok(this)
    }

    pub fn wait_go(&mut self) -> Result<()> {
        expect_frame(&mut self.reader, OP_GO).map(|_| ())
    }

    pub fn send_fetched(&mut self, shard: usize) -> Result<()> {
        write_frame(&mut self.writer, OP_FETCHED, &(shard as u32).to_le_bytes())
    }

    pub fn wait_proceed(&mut self) -> Result<()> {
        expect_frame(&mut self.reader, OP_PROCEED).map(|_| ())
    }

    /// Send the final RESULT and wait for the coordinator's ACK.
    pub fn send_result(&mut self, result: &ShardResult) -> Result<()> {
        let json = serde_json::to_string(result)
            .map_err(|e| SoupError::usage(format!("shard result serialise: {e}")))?;
        let mut payload = Vec::with_capacity(4 + json.len());
        payload.extend_from_slice(&(result.shard as u32).to_le_bytes());
        payload.extend_from_slice(json.as_bytes());
        write_frame(&mut self.writer, OP_RESULT, &payload)?;
        expect_frame(&mut self.reader, OP_ACK).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soup_graph::mmap::save_mmap_dataset;
    use soup_graph::DatasetKind;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("soup-shard-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn prepare_relabels_into_contiguous_ranges() {
        let dir = tmpdir("prepare");
        let d = DatasetKind::Flickr.generate_scaled(21, 0.03);
        let src = dir.join("src.gmm");
        let out = dir.join("sharded.gmm");
        save_mmap_dataset(&d, &src).unwrap();
        let report = prepare_sharded_dataset(&src, 3, &out).unwrap();
        assert_eq!(report.nodes, d.num_nodes());
        assert_eq!(report.nnz, d.graph.num_directed_edges());
        // Ranges tile [0, n).
        assert_eq!(report.ranges[0].0, 0);
        assert_eq!(report.ranges[2].1 as usize, d.num_nodes());
        assert!(report.ranges.windows(2).all(|w| w[0].1 == w[1].0));
        // The rewritten dataset is structurally valid and has the same
        // degree multiset and label histogram.
        let m = MmapDataset::open(&out).unwrap();
        m.validate().unwrap();
        let mut old_degrees: Vec<usize> = (0..d.num_nodes()).map(|v| d.graph.degree(v)).collect();
        let mut new_degrees: Vec<usize> =
            (0..m.num_nodes()).map(|v| m.neighbors(v).len()).collect();
        old_degrees.sort_unstable();
        new_degrees.sort_unstable();
        assert_eq!(old_degrees, new_degrees);
        let hist = |labels: &[u32]| {
            let mut h = vec![0usize; d.num_classes];
            for &l in labels {
                h[l as usize] += 1;
            }
            h
        };
        assert_eq!(hist(m.labels()), hist(&d.labels));
        // Quality numbers are well-formed.
        assert!(report.quality.balance >= 1.0 - 1e-9);
        assert!(report.quality.halo_fraction >= 0.0);
        assert_eq!(report.quality.halo_counts.len(), 3);
    }

    #[test]
    fn prepare_preserves_edges_under_relabeling() {
        let dir = tmpdir("edges");
        let d = DatasetKind::Flickr.generate_scaled(22, 0.02);
        let src = dir.join("src.gmm");
        let out = dir.join("sharded.gmm");
        save_mmap_dataset(&d, &src).unwrap();
        prepare_sharded_dataset(&src, 2, &out).unwrap();
        let m = MmapDataset::open(&out).unwrap();
        // Features follow their node: match each relabeled node back to its
        // original by feature row, then check neighborhoods correspond.
        use std::collections::HashMap;
        let mut by_row: HashMap<Vec<u32>, usize> = HashMap::new();
        for v in 0..d.num_nodes() {
            let key: Vec<u32> = d.features.row(v).iter().map(|x| x.to_bits()).collect();
            assert!(by_row.insert(key, v).is_none(), "feature rows not unique");
        }
        let mut new_to_old = vec![usize::MAX; d.num_nodes()];
        for (v, slot) in new_to_old.iter_mut().enumerate() {
            let key: Vec<u32> = m.feature_row(v).iter().map(|x| x.to_bits()).collect();
            *slot = by_row[&key];
        }
        for v in (0..m.num_nodes()).step_by(11) {
            let mut mapped: Vec<u32> = m
                .neighbors(v)
                .iter()
                .map(|&u| new_to_old[u as usize] as u32)
                .collect();
            mapped.sort_unstable();
            assert_eq!(mapped, d.graph.neighbors(new_to_old[v]));
        }
    }

    #[test]
    fn plan_roundtrips_and_owner_lookup_works() {
        let dir = tmpdir("plan");
        let plan = ShardPlan {
            version: 1,
            dataset: dir.join("ds.gmm").display().to_string(),
            k: 3,
            ranges: vec![(0, 10), (10, 25), (25, 30)],
            seed: 42,
            rounds: 2,
            arch: "gcn".into(),
            hidden: 16,
            layers: 2,
            dropout: 0.1,
            epochs: 5,
            lr: 0.01,
            strategy: "pls".into(),
            soup_epochs: 4,
            pls_k: 4,
            pls_r: 2,
            out_dir: dir.display().to_string(),
            no_shm: false,
            resume: false,
        };
        let path = plan.save().unwrap();
        let back = ShardPlan::load(&path).unwrap();
        assert_eq!(back.ranges, plan.ranges);
        assert_eq!(back.seed, 42);
        assert_eq!(back.owner_of(0), 0);
        assert_eq!(back.owner_of(9), 0);
        assert_eq!(back.owner_of(10), 1);
        assert_eq!(back.owner_of(29), 2);
        assert_eq!(back.range(1), 10..25);
    }
}
