//! CSR sparse × dense products — the message-passing kernel behind GCN
//! (symmetric-normalised adjacency) and GraphSAGE (row-normalised mean
//! aggregation).
//!
//! A [`SparseMat`] is an immutable CSR matrix shared via `Arc`. Its
//! structural arrays are registered with the device-memory meter so that
//! experiments account for graph storage the same way the paper's GPU
//! measurements do. Non-symmetric matrices eagerly build their transpose,
//! which the backward pass needs (`∂L/∂X = Aᵀ G`); symmetric matrices
//! (GCN's `D^{-1/2} A D^{-1/2}`) reuse the forward arrays.
//!
//! SpMM dispatch is *nnz-balanced*: each CSR caches a `ChunkPlan` cutting
//! its rows into chunks of approximately equal nnz (binary search over
//! `indptr`), built once per matrix and reused by every product — every
//! training epoch and every souping candidate evaluation. Within a chunk,
//! output rows are computed in register-resident column tiles
//! (`spmm_row_tile`): the edge list streams once per tile while the
//! output stays in accumulator registers, eliminating the per-edge
//! output-row reload of the naive saxpy formulation.

use crate::memory::MemGuard;
use crate::parallel::par_threshold;
use crate::pool;
use crate::tape::{Tape, Var};
use crate::tensor::Tensor;
use rayon::prelude::*;
use std::sync::{Arc, OnceLock};

/// Row ranges of approximately equal nnz, built once per CSR and reused by
/// every SpMM dispatch over that matrix (every epoch, every souping
/// candidate evaluation). Power-law graphs (Reddit, ogbn-products) have hub
/// vertices whose rows hold orders of magnitude more entries than the
/// median; chunking rows by *count* would hand one rayon task the hub and
/// stall the join, so chunks are cut at nnz quantiles instead, found by
/// binary search over `indptr`.
#[derive(Debug)]
struct ChunkPlan {
    /// Row boundaries: chunk `i` covers rows `bounds[i]..bounds[i+1]`.
    bounds: Vec<usize>,
    /// Largest per-chunk nnz, for the imbalance metric.
    max_chunk_nnz: usize,
    /// Total nnz of the matrix the plan was built for.
    total_nnz: usize,
}

impl ChunkPlan {
    fn build(indptr: &[usize]) -> Self {
        let rows = indptr.len() - 1;
        let nnz = *indptr.last().unwrap();
        // Over-decompose relative to the worker count so the scheduler can
        // even out residual imbalance; never more chunks than rows.
        let target_chunks = (rayon::current_num_threads() * 4).clamp(1, rows.max(1));
        let mut bounds = Vec::with_capacity(target_chunks + 1);
        bounds.push(0usize);
        for c in 1..target_chunks {
            let target = nnz * c / target_chunks;
            // First row whose prefix nnz reaches the quantile.
            let row = indptr.partition_point(|&p| p < target).min(rows);
            if row > *bounds.last().unwrap() && row < rows {
                bounds.push(row);
            }
        }
        if rows > 0 {
            bounds.push(rows);
        }
        let max_chunk_nnz = bounds
            .windows(2)
            .map(|w| indptr[w[1]] - indptr[w[0]])
            .max()
            .unwrap_or(0);
        let plan = Self {
            bounds,
            max_chunk_nnz,
            total_nnz: nnz,
        };
        soup_obs::counter!("tensor.spmm.plan.builds").inc();
        soup_obs::gauge!("tensor.spmm.plan.chunks").set(plan.chunks() as f64);
        soup_obs::gauge!("tensor.spmm.plan.imbalance").set(plan.imbalance());
        plan
    }

    fn chunks(&self) -> usize {
        self.bounds.len().saturating_sub(1)
    }

    /// Max chunk nnz over the ideal (mean) chunk nnz; 1.0 is perfectly
    /// balanced. Row-count chunking on a Zipf graph scores ≫ 1 here.
    fn imbalance(&self) -> f64 {
        let chunks = self.chunks();
        if chunks == 0 || self.total_nnz == 0 {
            return 1.0;
        }
        let mean = self.total_nnz as f64 / chunks as f64;
        self.max_chunk_nnz as f64 / mean
    }
}

#[derive(Debug)]
struct Csr {
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f32>,
    /// Lazily-built row-chunk plan, cached for the matrix lifetime.
    plan: OnceLock<ChunkPlan>,
}

impl Csr {
    fn new(indptr: Vec<usize>, indices: Vec<u32>, values: Vec<f32>) -> Self {
        Self {
            indptr,
            indices,
            values,
            plan: OnceLock::new(),
        }
    }

    fn plan(&self) -> &ChunkPlan {
        self.plan.get_or_init(|| ChunkPlan::build(&self.indptr))
    }

    fn bytes(&self) -> usize {
        self.indptr.len() * std::mem::size_of::<usize>()
            + self.indices.len() * std::mem::size_of::<u32>()
            + self.values.len() * std::mem::size_of::<f32>()
    }

    fn transpose(&self, rows: usize, cols: usize) -> Csr {
        let nnz = self.indices.len();
        let mut counts = vec![0usize; cols + 1];
        for &c in &self.indices {
            counts[c as usize + 1] += 1;
        }
        for i in 0..cols {
            counts[i + 1] += counts[i];
        }
        let indptr = counts.clone();
        let mut indices = vec![0u32; nnz];
        let mut values = vec![0.0f32; nnz];
        let mut cursor = counts;
        for r in 0..rows {
            for e in self.indptr[r]..self.indptr[r + 1] {
                let c = self.indices[e] as usize;
                let pos = cursor[c];
                cursor[c] += 1;
                indices[pos] = r as u32;
                values[pos] = self.values[e];
            }
        }
        Csr::new(indptr, indices, values)
    }
}

#[derive(Debug)]
struct Inner {
    rows: usize,
    cols: usize,
    fwd: Csr,
    /// Transposed CSR for backward; `None` means the matrix is symmetric
    /// and `fwd` doubles as its own transpose.
    bwd: Option<Csr>,
    _mem: MemGuard,
}

/// Immutable CSR sparse matrix, cheaply cloneable.
#[derive(Debug, Clone)]
pub struct SparseMat {
    inner: Arc<Inner>,
}

impl SparseMat {
    /// Build from CSR arrays.
    ///
    /// `symmetric` declares that the matrix equals its transpose (values
    /// included) — the caller's responsibility; debug builds verify it.
    pub fn new(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f32>,
        symmetric: bool,
    ) -> Self {
        assert_eq!(indptr.len(), rows + 1, "indptr length must be rows+1");
        assert_eq!(
            indices.len(),
            values.len(),
            "indices/values length mismatch"
        );
        assert_eq!(
            *indptr.last().unwrap(),
            indices.len(),
            "indptr[-1] must equal nnz"
        );
        assert!(
            indptr.windows(2).all(|w| w[0] <= w[1]),
            "indptr must be non-decreasing"
        );
        assert!(
            indices.iter().all(|&c| (c as usize) < cols),
            "column index out of range"
        );
        if symmetric {
            assert_eq!(rows, cols, "symmetric matrix must be square");
        }
        let fwd = Csr::new(indptr, indices, values);
        let bwd = if symmetric {
            None
        } else {
            Some(fwd.transpose(rows, cols))
        };
        let bytes = fwd.bytes() + bwd.as_ref().map_or(0, Csr::bytes);
        let mat = Self {
            inner: Arc::new(Inner {
                rows,
                cols,
                fwd,
                bwd,
                _mem: MemGuard::new(bytes),
            }),
        };
        #[cfg(debug_assertions)]
        if symmetric {
            debug_assert!(
                mat.is_value_symmetric(),
                "matrix declared symmetric but is not"
            );
        }
        mat
    }

    pub fn rows(&self) -> usize {
        self.inner.rows
    }

    pub fn cols(&self) -> usize {
        self.inner.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.inner.fwd.indices.len()
    }

    pub fn is_symmetric(&self) -> bool {
        self.inner.bwd.is_none()
    }

    pub fn indptr(&self) -> &[usize] {
        &self.inner.fwd.indptr
    }

    pub fn indices(&self) -> &[u32] {
        &self.inner.fwd.indices
    }

    pub fn values(&self) -> &[f32] {
        &self.inner.fwd.values
    }

    /// Dense materialisation (tests / tiny matrices only).
    pub fn to_dense(&self) -> Tensor {
        let mut out = pool::take_zeroed(self.rows() * self.cols());
        for r in 0..self.rows() {
            for e in self.inner.fwd.indptr[r]..self.inner.fwd.indptr[r + 1] {
                out[r * self.cols() + self.inner.fwd.indices[e] as usize] +=
                    self.inner.fwd.values[e];
            }
        }
        Tensor::from_vec(self.rows(), self.cols(), out)
    }

    /// Exact check that values form a symmetric matrix (O(nnz log nnz)).
    pub fn is_value_symmetric(&self) -> bool {
        if self.rows() != self.cols() {
            return false;
        }
        let mut entries: Vec<(u32, u32, f32)> = Vec::with_capacity(self.nnz());
        for r in 0..self.rows() {
            for e in self.inner.fwd.indptr[r]..self.inner.fwd.indptr[r + 1] {
                entries.push((
                    r as u32,
                    self.inner.fwd.indices[e],
                    self.inner.fwd.values[e],
                ));
            }
        }
        let mut flipped: Vec<(u32, u32, f32)> =
            entries.iter().map(|&(r, c, v)| (c, r, v)).collect();
        entries.sort_by_key(|a| (a.0, a.1));
        flipped.sort_by_key(|a| (a.0, a.1));
        entries.len() == flipped.len()
            && entries
                .iter()
                .zip(&flipped)
                .all(|(a, b)| a.0 == b.0 && a.1 == b.1 && (a.2 - b.2).abs() < 1e-6)
    }

    /// `self × x` as raw tensors (no autograd). Row-parallel.
    pub fn matvec_dense(&self, x: &Tensor) -> Tensor {
        assert_eq!(
            self.cols(),
            x.rows(),
            "spmm dims: {}x{} × {}",
            self.rows(),
            self.cols(),
            x.shape()
        );
        spmm_kernel(&self.inner.fwd, self.rows(), x)
    }

    fn backward_csr(&self) -> &Csr {
        self.inner.bwd.as_ref().unwrap_or(&self.inner.fwd)
    }
}

fn record_spmm_metrics(nnz: usize, rows: usize, c: usize) {
    soup_obs::counter!("tensor.spmm.calls").inc();
    soup_obs::counter!("tensor.spmm.nnz").add(nnz as u64);
    soup_obs::counter!("tensor.spmm.flops").add(2 * (nnz * c) as u64);
    // CSR entry reads (value + index) plus gathered x rows plus the output.
    soup_obs::counter!("tensor.spmm.bytes").add((nnz * 8 + nnz * c * 4 + rows * c * 4) as u64);
}

/// One `T`-lane column tile of one output row: stream the row's whole edge
/// list once, accumulating into a `T`-element register tile, then store.
/// With `T = 64` the accumulator is eight 8-lane vectors — the entire
/// output tile lives in registers across every edge, so the kernel does
/// *zero* output-row loads (the naive saxpy reloads and restores the output
/// row once per edge). Empty rows fall out naturally: the tile stays zero.
#[inline(always)]
fn spmm_row_tile<const T: usize>(
    csr: &Csr,
    row_beg: usize,
    row_end: usize,
    c: usize,
    j0: usize,
    xs: &[f32],
    otile: &mut [f32],
) {
    let mut acc = [0.0f32; T];
    for e in row_beg..row_end {
        let col = csr.indices[e] as usize;
        let v = csr.values[e];
        let xrow = &xs[col * c + j0..][..T];
        for j in 0..T {
            acc[j] += v * xrow[j];
        }
    }
    otile[..T].copy_from_slice(&acc);
}

/// Compute rows `r0..r1` of `A × X` into `out` (row `r0` of the product at
/// `out[0..c]`). Every output element is written — `out` may hold stale
/// pool contents, sparing the caller an up-front memset of the output.
///
/// Each output row is processed in register-resident column tiles
/// ([`spmm_row_tile`]), 64 lanes at a time with narrower tiles for the
/// remainder; sub-4-lane leftovers use per-lane scalar accumulators.
#[inline(always)]
fn spmm_rows_body(csr: &Csr, r0: usize, r1: usize, c: usize, xs: &[f32], out: &mut [f32]) {
    for r in r0..r1 {
        let orow = &mut out[(r - r0) * c..(r - r0 + 1) * c];
        let row_beg = csr.indptr[r];
        let row_end = csr.indptr[r + 1];
        let mut j0 = 0;
        while j0 + 64 <= c {
            spmm_row_tile::<64>(csr, row_beg, row_end, c, j0, xs, &mut orow[j0..]);
            j0 += 64;
        }
        if j0 + 32 <= c {
            spmm_row_tile::<32>(csr, row_beg, row_end, c, j0, xs, &mut orow[j0..]);
            j0 += 32;
        }
        if j0 + 16 <= c {
            spmm_row_tile::<16>(csr, row_beg, row_end, c, j0, xs, &mut orow[j0..]);
            j0 += 16;
        }
        if j0 + 8 <= c {
            spmm_row_tile::<8>(csr, row_beg, row_end, c, j0, xs, &mut orow[j0..]);
            j0 += 8;
        }
        if j0 + 4 <= c {
            spmm_row_tile::<4>(csr, row_beg, row_end, c, j0, xs, &mut orow[j0..]);
            j0 += 4;
        }
        for j in j0..c {
            let mut a = 0.0f32;
            for e in row_beg..row_end {
                a += csr.values[e] * xs[csr.indices[e] as usize * c + j];
            }
            orow[j] = a;
        }
    }
}

/// Baseline-ISA compilation of [`spmm_rows_body`].
fn spmm_rows_generic(csr: &Csr, r0: usize, r1: usize, c: usize, xs: &[f32], out: &mut [f32]) {
    spmm_rows_body(csr, r0, r1, c, xs, out);
}

/// [`spmm_rows_body`] compiled with AVX2 + FMA codegen (runtime-selected
/// via [`crate::parallel::cpu_has_avx2_fma`]): the 8-wide edge combine
/// becomes fused multiply-adds over 8-lane vectors.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
fn spmm_rows_avx2(csr: &Csr, r0: usize, r1: usize, c: usize, xs: &[f32], out: &mut [f32]) {
    spmm_rows_body(csr, r0, r1, c, xs, out);
}

#[inline(always)]
fn spmm_rows(csr: &Csr, r0: usize, r1: usize, c: usize, xs: &[f32], out: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if crate::parallel::cpu_has_avx2_fma() {
        // SAFETY: the required target features were verified at runtime.
        unsafe { spmm_rows_avx2(csr, r0, r1, c, xs, out) };
        return;
    }
    spmm_rows_generic(csr, r0, r1, c, xs, out);
}

/// SpMM over the cached nnz-balanced chunk plan: the output is split into
/// per-chunk row ranges (disjoint by construction) and chunks are
/// dispatched as rayon tasks, so a hub vertex occupies one task instead of
/// stalling a whole row-count chunk.
fn spmm_kernel(csr: &Csr, rows: usize, x: &Tensor) -> Tensor {
    let c = x.cols();
    let nnz = csr.indices.len();
    record_spmm_metrics(nnz, rows, c);
    let xs = x.data();
    // Scratch, not zeroed: `spmm_rows` fully initialises every output row.
    let mut out = pool::take_scratch(rows * c);
    let parallel = rayon::current_num_threads() > 1 && (nnz + rows) * c >= par_threshold();
    if parallel && csr.plan().chunks() > 1 {
        let plan = csr.plan();
        // Carve the output into disjoint per-chunk slices.
        let mut slices: Vec<(usize, usize, &mut [f32])> = Vec::with_capacity(plan.chunks());
        let mut rest = out.as_mut_slice();
        for w in plan.bounds.windows(2) {
            let (head, tail) = rest.split_at_mut((w[1] - w[0]) * c);
            slices.push((w[0], w[1], head));
            rest = tail;
        }
        slices
            .into_par_iter()
            .for_each(|(r0, r1, slice)| spmm_rows(csr, r0, r1, c, xs, slice));
    } else {
        spmm_rows(csr, 0, rows, c, xs, &mut out);
    }
    Tensor::from_vec(rows, c, out)
}

/// The pre-plan row-parallel kernel (one saxpy per edge, rows chunked by
/// count), kept as the baseline the `kernels` bench compares the
/// nnz-balanced kernel against.
#[doc(hidden)]
pub fn spmm_rowpar_reference(a: &SparseMat, x: &Tensor) -> Tensor {
    let csr = &a.inner.fwd;
    let rows = a.rows();
    let c = x.cols();
    record_spmm_metrics(csr.indices.len(), rows, c);
    let xs = x.data();
    let mut out = pool::take_zeroed(rows * c);
    let row_work = |(r, orow): (usize, &mut [f32])| {
        for e in csr.indptr[r]..csr.indptr[r + 1] {
            let col = csr.indices[e] as usize;
            let v = csr.values[e];
            let xrow = &xs[col * c..(col + 1) * c];
            for (o, &xv) in orow.iter_mut().zip(xrow) {
                *o += v * xv;
            }
        }
    };
    if rows * c >= par_threshold() {
        out.par_chunks_mut(c).enumerate().for_each(row_work);
    } else {
        out.chunks_mut(c).enumerate().for_each(row_work);
    }
    Tensor::from_vec(rows, c, out)
}

impl Tape {
    /// Differentiable `A × x` for a constant sparse `A`.
    pub fn spmm(&self, a: &SparseMat, x: Var) -> Var {
        let out = a.matvec_dense(&self.value(x));
        let a = a.clone();
        self.push_op(
            out,
            vec![x],
            Box::new(move |g, _, _| {
                let gx = spmm_kernel(a.backward_csr(), a.cols(), g);
                vec![Some(gx)]
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::DEVICE_MEMORY;
    use crate::rng::SplitMix64;
    use crate::tape::gradcheck;

    /// 3×3 asymmetric test matrix:
    /// [0 2 0]
    /// [1 0 3]
    /// [0 4 0]
    fn asym() -> SparseMat {
        SparseMat::new(
            3,
            3,
            vec![0, 1, 3, 4],
            vec![1, 0, 2, 1],
            vec![2.0, 1.0, 3.0, 4.0],
            false,
        )
    }

    /// Symmetric matrix [0 1; 1 0] scaled.
    fn sym() -> SparseMat {
        SparseMat::new(2, 2, vec![0, 1, 2], vec![1, 0], vec![0.5, 0.5], true)
    }

    #[test]
    fn dense_roundtrip() {
        let a = asym();
        let d = a.to_dense();
        assert_eq!(d.data(), &[0.0, 2.0, 0.0, 1.0, 0.0, 3.0, 0.0, 4.0, 0.0]);
        assert_eq!(a.nnz(), 4);
        assert!(!a.is_symmetric());
        assert!(sym().is_symmetric());
    }

    #[test]
    fn spmm_matches_dense() {
        let a = asym();
        let mut rng = SplitMix64::new(1);
        let x = Tensor::randn(3, 5, 1.0, &mut rng);
        let sparse = a.matvec_dense(&x);
        let dense = a.to_dense().matmul(&x);
        assert!(sparse.allclose(&dense, 1e-5));
    }

    #[test]
    fn spmm_large_parallel_matches_dense() {
        // Random sparse 200×200 with ~5 entries/row, wide enough feature dim
        // to hit the parallel path.
        let mut rng = SplitMix64::new(2);
        let n = 200;
        let mut indptr = vec![0usize];
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for _ in 0..n {
            for _ in 0..5 {
                indices.push(rng.next_below(n) as u32);
                values.push(rng.normal());
            }
            indptr.push(indices.len());
        }
        let a = SparseMat::new(n, n, indptr, indices, values, false);
        let x = Tensor::randn(n, 64, 1.0, &mut rng);
        let sparse = a.matvec_dense(&x);
        let dense = a.to_dense().matmul(&x);
        assert!(sparse.allclose(&dense, 1e-3));
    }

    #[test]
    fn spmm_gradcheck_asymmetric() {
        let a = asym();
        let mut rng = SplitMix64::new(3);
        let x = Tensor::randn(3, 2, 1.0, &mut rng);
        let w = Tensor::randn(3, 2, 1.0, &mut rng);
        gradcheck(
            &|t, v| {
                let y = t.spmm(&a, v[0]);
                let wc = t.constant(w.clone());
                t.sum(t.mul(y, wc))
            },
            &[x],
            1e-2,
            2e-2,
        )
        .unwrap();
    }

    #[test]
    fn spmm_gradcheck_symmetric() {
        let a = sym();
        let mut rng = SplitMix64::new(4);
        let x = Tensor::randn(2, 3, 1.0, &mut rng);
        let w = Tensor::randn(2, 3, 1.0, &mut rng);
        gradcheck(
            &|t, v| {
                let y = t.spmm(&a, v[0]);
                let wc = t.constant(w.clone());
                t.sum(t.mul(y, wc))
            },
            &[x],
            1e-2,
            2e-2,
        )
        .unwrap();
    }

    #[test]
    fn transpose_is_correct() {
        let a = asym();
        let at_dense = a.to_dense().transpose();
        // Backward of spmm with grad seed e_i recovers rows of A^T.
        let tape = Tape::new();
        let x = tape.param(Tensor::eye(3));
        let y = tape.spmm(&a, x);
        let loss = tape.sum(y);
        let g = tape.backward(loss);
        // dL/dX = A^T * ones(3,3) -> each column is A^T row-sums.
        let expect = at_dense.matmul(&Tensor::ones(3, 3));
        assert!(g.get(x).unwrap().allclose(&expect, 1e-5));
    }

    #[test]
    fn chunk_plan_balances_nnz_quantiles() {
        // 8 rows: row 0 is a hub with 90 entries, the rest have 1–2.
        let mut indptr = vec![0usize, 90];
        for r in 1..8 {
            indptr.push(indptr[r] + 1 + (r % 2));
        }
        let plan = ChunkPlan::build(&indptr);
        assert!(plan.chunks() >= 1);
        assert_eq!(*plan.bounds.first().unwrap(), 0);
        assert_eq!(*plan.bounds.last().unwrap(), 8);
        assert!(plan.bounds.windows(2).all(|w| w[0] < w[1]));
        // The hub row cannot be split further, so it must sit alone in its
        // chunk when there is more than one chunk.
        if plan.chunks() > 1 {
            assert_eq!(plan.bounds[1], 1, "hub row isolated in its own chunk");
        }
        assert!(plan.imbalance() >= 1.0);
    }

    #[test]
    fn chunk_plan_handles_empty_and_uniform() {
        let empty = ChunkPlan::build(&[0]);
        assert_eq!(empty.chunks(), 0);
        assert_eq!(empty.imbalance(), 1.0);
        let uniform = ChunkPlan::build(&(0..=100).map(|i| i * 3).collect::<Vec<_>>());
        assert_eq!(*uniform.bounds.last().unwrap(), 100);
        assert!(uniform.imbalance() < 1.5);
    }

    #[test]
    fn balanced_spmm_matches_dense_on_hub_graph() {
        // Single hub row holding >90% of nnz, wide features to force the
        // parallel chunked path.
        let mut rng = SplitMix64::new(9);
        let n = 64;
        let hub_deg = 600;
        let mut indptr = vec![0usize];
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for _ in 0..hub_deg {
            indices.push(rng.next_below(n) as u32);
            values.push(rng.normal());
        }
        indptr.push(indices.len());
        for _ in 1..n {
            indices.push(rng.next_below(n) as u32);
            values.push(rng.normal());
            indptr.push(indices.len());
        }
        let a = SparseMat::new(n, n, indptr, indices, values, false);
        let x = Tensor::randn(n, 48, 1.0, &mut rng);
        let got = a.matvec_dense(&x);
        let want = a.to_dense().matmul(&x);
        assert!(got.allclose(&want, 1e-3));
        let reference = spmm_rowpar_reference(&a, &x);
        assert!(got.allclose(&reference, 1e-4));
    }

    #[test]
    fn plan_is_cached_per_matrix() {
        let a = asym();
        let p1 = a.inner.fwd.plan() as *const ChunkPlan;
        let _ = a.matvec_dense(&Tensor::ones(3, 2));
        let p2 = a.inner.fwd.plan() as *const ChunkPlan;
        assert_eq!(p1, p2, "plan must be built once and cached");
    }

    #[test]
    fn memory_registered_and_released() {
        let before = DEVICE_MEMORY.current();
        let a = asym();
        assert!(DEVICE_MEMORY.current() > before);
        drop(a);
        assert_eq!(DEVICE_MEMORY.current(), before);
    }

    #[test]
    #[should_panic(expected = "indptr length")]
    fn bad_indptr_panics() {
        SparseMat::new(3, 3, vec![0, 1], vec![0], vec![1.0], false);
    }

    #[test]
    #[should_panic(expected = "column index")]
    fn bad_column_panics() {
        SparseMat::new(2, 2, vec![0, 1, 1], vec![5], vec![1.0], false);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn nonsquare_symmetric_panics() {
        SparseMat::new(2, 3, vec![0, 0, 0], vec![], vec![], true);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn spmm_equals_dense_matmul(seed in 0u64..200, n in 2usize..20, c in 1usize..6) {
                let mut rng = SplitMix64::new(seed);
                let mut indptr = vec![0usize];
                let mut indices = Vec::new();
                let mut values = Vec::new();
                for _ in 0..n {
                    let deg = rng.next_below(4);
                    for _ in 0..deg {
                        indices.push(rng.next_below(n) as u32);
                        values.push(rng.normal());
                    }
                    indptr.push(indices.len());
                }
                let a = SparseMat::new(n, n, indptr, indices, values, false);
                let x = Tensor::randn(n, c, 1.0, &mut rng);
                prop_assert!(a.matvec_dense(&x).allclose(&a.to_dense().matmul(&x), 1e-4));
            }
        }
    }
}
