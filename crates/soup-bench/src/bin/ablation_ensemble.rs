//! §I/§II motivating comparison: soup vs classic ensemble.
//!
//! "Model soups do not incur any additional time or memory costs during
//! inference" — this experiment quantifies that: test accuracy, inference
//! wall-clock, peak inference memory and resident parameter bytes of the
//! LS soup versus the soft-voting ensemble of the same ingredients.
//!
//! Usage: `cargo run --release -p soup-bench --bin ablation_ensemble [preset]`

use soup_bench::harness::{model_config, train_pool, write_csv, ExperimentPreset};
use soup_core::ensemble::compare_soup_vs_ensemble;
use soup_core::{LearnedHyper, LearnedSouping, SoupStrategy};
use soup_gnn::Arch;
use soup_graph::DatasetKind;
use soup_tensor::memory::format_bytes;

fn main() {
    let preset = ExperimentPreset::from_args();
    println!("ABLATION soup vs ensemble (preset '{}')", preset.name);
    println!(
        "{:<14} {:>6} | {:>9} {:>11} {:>12} {:>12} | {:>9} {:>11} {:>12} {:>12}",
        "dataset",
        "N",
        "soup acc",
        "soup time",
        "soup mem",
        "soup params",
        "ens acc",
        "ens time",
        "ens mem",
        "ens params"
    );
    let mut rows = Vec::new();
    for kind in [DatasetKind::Flickr, DatasetKind::OgbnArxiv] {
        let dataset = kind.generate_scaled(42, preset.dataset_scale);
        let cfg = model_config(Arch::Gcn, &dataset);
        let ingredients = train_pool(&dataset, &cfg, &preset, 42);
        let soup = LearnedSouping::new(LearnedHyper {
            epochs: preset.learned_epochs,
            ..Default::default()
        })
        .soup(&ingredients, &dataset, &cfg, 3);
        let cmp = compare_soup_vs_ensemble(&soup.params, &ingredients, &dataset, &cfg);
        println!(
            "{:<14} {:>6} | {:>8.2}% {:>10.4}s {:>12} {:>12} | {:>8.2}% {:>10.4}s {:>12} {:>12}",
            kind.name(),
            ingredients.len(),
            cmp.soup_test_acc * 100.0,
            cmp.soup_cost.wall_time.as_secs_f64(),
            format_bytes(cmp.soup_cost.peak_mem_bytes),
            format_bytes(cmp.soup_cost.param_bytes),
            cmp.ensemble_test_acc * 100.0,
            cmp.ensemble_cost.wall_time.as_secs_f64(),
            format_bytes(cmp.ensemble_cost.peak_mem_bytes),
            format_bytes(cmp.ensemble_cost.param_bytes),
        );
        rows.push(format!(
            "{},{},{:.4},{:.6},{},{},{:.4},{:.6},{},{}",
            kind.name(),
            ingredients.len(),
            cmp.soup_test_acc,
            cmp.soup_cost.wall_time.as_secs_f64(),
            cmp.soup_cost.peak_mem_bytes,
            cmp.soup_cost.param_bytes,
            cmp.ensemble_test_acc,
            cmp.ensemble_cost.wall_time.as_secs_f64(),
            cmp.ensemble_cost.peak_mem_bytes,
            cmp.ensemble_cost.param_bytes,
        ));
    }
    println!("\nExpected shape: ensemble accuracy ≥ soup by a small margin, at N× the");
    println!("inference passes and N× the resident parameters — the cost soups remove.");
    let _ = write_csv(
        "ablation_ensemble",
        "dataset,n,soup_acc,soup_time_s,soup_mem,soup_params,ens_acc,ens_time_s,ens_mem,ens_params",
        &rows,
    )
    .map(|p| soup_obs::info!("wrote {}", p.display()));
    soup_bench::harness::finish_observability();
}
