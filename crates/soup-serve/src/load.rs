//! Closed-loop load generation with Zipf-skewed node popularity.
//!
//! Each simulated client holds one connection and issues its next request
//! the moment the previous answer (or rejection) lands — a *closed loop*,
//! so offered load scales with concurrency and measured latency feeds back
//! into the request rate, the standard way to probe a server's
//! latency/throughput frontier. Node ids are drawn Zipf(s): a few hot
//! nodes dominate, matching real query skew rather than uniform sampling.
//!
//! Fully deterministic given the seed (client `i` uses the derived stream
//! `seed + i`), so bench runs are reproducible.

use crate::client::{Client, PredictResult};
use soup_tensor::SplitMix64;
use std::net::SocketAddr;
use std::time::Instant;

/// Load-run knobs.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Requests each client issues (served + rejected both count).
    pub requests_per_client: usize,
    /// Node ids per PREDICT request.
    pub nodes_per_request: usize,
    /// Zipf skew exponent (1.0 ≈ classic web-object popularity).
    pub zipf_s: f64,
    /// Base RNG seed; client `i` draws from `seed + i`.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            clients: 4,
            requests_per_client: 200,
            nodes_per_request: 4,
            zipf_s: 1.0,
            seed: 42,
        }
    }
}

/// Aggregated result of one closed-loop run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests that were served.
    pub served: u64,
    /// Requests rejected with OVERLOADED.
    pub overloaded: u64,
    /// Wall time of the whole run in seconds.
    pub elapsed_s: f64,
    /// Served requests per second.
    pub rps: f64,
    /// Median served-request latency (request write → response read).
    pub p50_us: u64,
    /// Tail served-request latency.
    pub p99_us: u64,
    /// Mean served-request latency.
    pub mean_us: f64,
}

/// Zipf(s) sampler over `0..n` via inverse-CDF lookup. The CDF is built
/// once (O(n)); each draw is a binary search.
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    pub fn new(n: usize, s: f64) -> ZipfSampler {
        assert!(n > 0, "Zipf needs a non-empty support");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(s);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler { cdf }
    }

    /// Draw one id; rank 0 is the hottest.
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.next_f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Run the closed loop against `addr`, drawing node ids from `0..num_nodes`.
///
/// Returns per-run aggregates; per-request latencies are measured at the
/// client (full round trip including queueing) and only *served* requests
/// enter the latency distribution — rejections are counted separately.
pub fn run_closed_loop(
    addr: SocketAddr,
    num_nodes: usize,
    config: &LoadConfig,
) -> soup_error::Result<LoadReport> {
    let zipf = std::sync::Arc::new(ZipfSampler::new(num_nodes, config.zipf_s));
    let start = Instant::now();
    let handles: Vec<_> = (0..config.clients)
        .map(|i| {
            let zipf = zipf.clone();
            let config = config.clone();
            std::thread::spawn(move || -> soup_error::Result<(Vec<u64>, u64)> {
                let mut client = Client::connect(addr)?;
                let mut rng = SplitMix64::new(config.seed + i as u64);
                let mut latencies = Vec::with_capacity(config.requests_per_client);
                let mut overloaded = 0u64;
                let mut nodes = vec![0u32; config.nodes_per_request];
                for _ in 0..config.requests_per_client {
                    for slot in &mut nodes {
                        *slot = zipf.sample(&mut rng) as u32;
                    }
                    let t0 = Instant::now();
                    match client.predict(&nodes)? {
                        PredictResult::Classes { .. } => {
                            latencies.push(t0.elapsed().as_micros() as u64);
                        }
                        PredictResult::Overloaded => overloaded += 1,
                    }
                }
                Ok((latencies, overloaded))
            })
        })
        .collect();

    let mut latencies = Vec::new();
    let mut overloaded = 0u64;
    for handle in handles {
        let (lats, rej) = handle
            .join()
            .map_err(|_| soup_error::SoupError::parse("load client panicked"))??;
        latencies.extend(lats);
        overloaded += rej;
    }
    let elapsed_s = start.elapsed().as_secs_f64();
    latencies.sort_unstable();
    let served = latencies.len() as u64;
    let quantile = |q: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let idx = ((latencies.len() - 1) as f64 * q).round() as usize;
        latencies[idx]
    };
    Ok(LoadReport {
        served,
        overloaded,
        elapsed_s,
        rps: served as f64 / elapsed_s.max(1e-9),
        p50_us: quantile(0.5),
        p99_us: quantile(0.99),
        mean_us: if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<u64>() as f64 / latencies.len() as f64
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let zipf = ZipfSampler::new(1000, 1.0);
        let mut rng = SplitMix64::new(7);
        let mut counts = vec![0u32; 1000];
        for _ in 0..20_000 {
            let id = zipf.sample(&mut rng);
            assert!(id < 1000);
            counts[id] += 1;
        }
        // Rank 0 must dominate the median rank by a wide margin.
        assert!(counts[0] > 20 * counts[500].max(1));
    }

    #[test]
    fn zipf_is_deterministic() {
        let zipf = ZipfSampler::new(64, 1.2);
        let draw = |seed| {
            let mut rng = SplitMix64::new(seed);
            (0..32).map(|_| zipf.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(5), draw(5));
        assert_ne!(draw(5), draw(6));
    }
}
