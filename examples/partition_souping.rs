//! Partition Learned Souping on the largest benchmark.
//!
//! Demonstrates the paper's second contribution (Alg. 4): PLS partitions
//! the graph with the validation-balanced multilevel partitioner, then
//! optimises the soup on R-of-K partition unions per epoch. The example
//! prints the memory/time trade-off against full-graph Learned Souping and
//! the R/K ratio analysis of §VI-B.
//!
//! Run: `cargo run --release --example partition_souping`

use enhanced_soups::partition::{partition_val_balanced, PartitionConfig};
use enhanced_soups::prelude::*;
use enhanced_soups::soup::strategy::test_accuracy;
use enhanced_soups::soup::LearnedHyper;
use enhanced_soups::tensor::memory::format_bytes;

fn main() {
    // ogbn-products counterpart, scaled for a laptop run.
    let dataset = DatasetKind::OgbnProducts.generate_scaled(42, 0.3);
    println!(
        "dataset: {} — {} nodes, {} edges",
        dataset.kind.name(),
        dataset.num_nodes(),
        dataset.graph.num_edges()
    );

    // Inspect the validation-balanced partitioning PLS will use.
    let k = 16;
    let partitioning = partition_val_balanced(
        &dataset.graph,
        &dataset.splits,
        &PartitionConfig::new(k).with_seed(1),
    );
    let val_counts = enhanced_soups::partition::quality::subset_counts(
        &partitioning.assignment,
        &dataset.splits.val,
        k,
    );
    println!("\nvalidation nodes per partition (K={k}): {val_counts:?}");
    println!(
        "edge cut: {} of {} edges",
        enhanced_soups::partition::edge_cut(&dataset.graph, &partitioning.assignment),
        dataset.graph.num_edges()
    );

    // Train a small ingredient pool.
    let cfg = ModelConfig::sage(dataset.num_features(), dataset.num_classes()).with_hidden(32);
    let tc = TrainConfig {
        epochs: 15,
        ..TrainConfig::quick()
    };
    println!("\ntraining 6 ingredients ...");
    let ingredients = train_ingredients(&dataset, &cfg, &tc, 6, 4, 42);

    // LS vs PLS at different R/K ratios.
    let hyper = LearnedHyper {
        epochs: 25,
        ..Default::default()
    };
    println!(
        "\n{:<18} {:>9} {:>9} {:>10} {:>12}",
        "strategy", "val", "test", "time", "peak mem"
    );
    let ls = LearnedSouping::new(hyper).soup(&ingredients, &dataset, &cfg, 3);
    println!(
        "{:<18} {:>8.2}% {:>8.2}% {:>9.3}s {:>12}",
        "LS (full graph)",
        ls.val_accuracy * 100.0,
        test_accuracy(&ls, &dataset, &cfg) * 100.0,
        ls.stats.wall_time.as_secs_f64(),
        format_bytes(ls.stats.peak_mem_bytes)
    );
    for (r, kk) in [(2usize, 16usize), (4, 16), (8, 16)] {
        let pls = PartitionLearnedSouping::new(hyper, kk, r);
        let combos = pls.num_possible_subgraphs();
        let outcome = pls.soup(&ingredients, &dataset, &cfg, 3);
        println!(
            "{:<18} {:>8.2}% {:>8.2}% {:>9.3}s {:>12}   (R/K={:.2}, {:.0} subgraphs)",
            format!("PLS R={r}/K={kk}"),
            outcome.val_accuracy * 100.0,
            test_accuracy(&outcome, &dataset, &cfg) * 100.0,
            outcome.stats.wall_time.as_secs_f64(),
            format_bytes(outcome.stats.peak_mem_bytes),
            r as f64 / kk as f64,
            combos,
        );
    }
    println!(
        "\nExpected shape (paper §V-C, §VI-B): PLS memory tracks R/K of LS; \
              R=1-2 degrades accuracy; moderate R keeps accuracy with big savings."
    );
}
