//! Property tests for the cache-blocked GEMM and nnz-balanced SpMM
//! kernels, checking them against independent scalar references across
//! deliberately awkward shapes: dimensions that are not multiples of the
//! MR/NR/KC tile sizes, degenerate 1×N and N×1 matrices, graphs with empty
//! rows, and a single hub row holding >90% of the nonzeros.
//!
//! The references here are written from scratch (triple loop / per-edge
//! saxpy) so a bug shared between the tiled kernel and its packing helpers
//! cannot cancel out.

use proptest::prelude::*;
use soup_tensor::gemm::{KC, MR, NR};
use soup_tensor::ops::sparse::SparseMat;
use soup_tensor::{SplitMix64, Tensor};

/// Scalar triple-loop C = A(m×k) · B(k×n), independent of the crate's
/// kernels and packing.
fn gemm_ref(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for t in 0..k {
            let av = a[i * k + t];
            for j in 0..n {
                out[i * n + j] += av * b[t * n + j];
            }
        }
    }
    out
}

fn assert_close(got: &[f32], want: &[f32], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (idx, (&g, &w)) in got.iter().zip(want).enumerate() {
        assert!(
            (g - w).abs() <= 1e-3 * (1.0 + w.abs()),
            "{what}: idx {idx}: got {g}, want {w}"
        );
    }
}

/// Check all three matmul entry points on one (m, n, k) shape. Operands for
/// the nt/tn variants are stored transposed so every driver computes the
/// same logical product and can share the reference.
fn check_matmuls(m: usize, n: usize, k: usize, seed: u64) {
    let mut rng = SplitMix64::new(seed);
    let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
    let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
    let want = gemm_ref(m, n, k, &a, &b);

    let ta = Tensor::from_vec(m, k, a.clone());
    let tb = Tensor::from_vec(k, n, b.clone());
    assert_close(ta.matmul(&tb).data(), &want, "matmul");

    // matmul_nt(A, Bt) with Bt = B stored (n, k).
    let mut bt = vec![0.0f32; n * k];
    for t in 0..k {
        for j in 0..n {
            bt[j * k + t] = b[t * n + j];
        }
    }
    let tbt = Tensor::from_vec(n, k, bt);
    assert_close(ta.matmul_nt(&tbt).data(), &want, "matmul_nt");

    // matmul_tn(At, B) with At = A stored (k, m).
    let mut at = vec![0.0f32; k * m];
    for i in 0..m {
        for t in 0..k {
            at[t * m + i] = a[i * k + t];
        }
    }
    let tat = Tensor::from_vec(k, m, at);
    assert_close(tat.matmul_tn(&tb).data(), &want, "matmul_tn");
}

/// Per-edge saxpy SpMM reference, independent of chunk plans and the
/// unrolled kernel.
fn spmm_ref(indptr: &[usize], indices: &[u32], values: &[f32], x: &Tensor) -> Vec<f32> {
    let rows = indptr.len() - 1;
    let c = x.cols();
    let xs = x.data();
    let mut out = vec![0.0f32; rows * c];
    for r in 0..rows {
        for e in indptr[r]..indptr[r + 1] {
            let col = indices[e] as usize;
            let v = values[e];
            for j in 0..c {
                out[r * c + j] += v * xs[col * c + j];
            }
        }
    }
    out
}

fn check_spmm(rows: usize, cols: usize, degrees: &[usize], c: usize, seed: u64) {
    assert_eq!(degrees.len(), rows);
    let mut rng = SplitMix64::new(seed);
    let mut indptr = vec![0usize; rows + 1];
    let mut indices = Vec::new();
    let mut values = Vec::new();
    for (r, &deg) in degrees.iter().enumerate() {
        for _ in 0..deg.min(cols) {
            indices.push(rng.next_below(cols) as u32);
            values.push(rng.normal());
        }
        indptr[r + 1] = indices.len();
    }
    let x = Tensor::randn(cols, c, 1.0, &mut rng);
    let want = spmm_ref(&indptr, &indices, &values, &x);
    let a = SparseMat::new(rows, cols, indptr, indices, values, false);
    assert_close(a.matvec_dense(&x).data(), &want, "spmm");
}

/// The pre-engine souping baseline: materialise `Σ_i coeffs[i]·parts[i]`
/// as a chain of two-way interpolations, each step a fresh temporary —
/// `acc_i = acc_{i-1} + coeffs[i]·parts[i]` in plain scalar f32.
fn chained_interpolate_ref(coeffs: &[f32], parts: &[&Tensor]) -> Vec<f32> {
    let mut acc = vec![0.0f32; parts[0].data().len()];
    for (c, p) in coeffs.iter().zip(parts) {
        let next: Vec<f32> = acc.iter().zip(p.data()).map(|(a, x)| a + c * x).collect();
        acc = next;
    }
    acc
}

/// Fused R-way blend vs the chained-interpolation chain it replaced: the
/// fused kernel accumulates in the same order, so only FMA contraction
/// (AVX2 path) can perturb the result — bounded well inside 1e-6 relative.
fn check_blend(rows: usize, cols: usize, r: usize, seed: u64) {
    let mut rng = SplitMix64::new(seed);
    let parts: Vec<Tensor> = (0..r)
        .map(|_| Tensor::randn(rows, cols, 1.0, &mut rng))
        .collect();
    let refs: Vec<&Tensor> = parts.iter().collect();
    // Softmax-like convex coefficients, as GIS/LS produce.
    let raw: Vec<f32> = (0..r).map(|_| rng.normal().abs() + 0.05).collect();
    let total: f32 = raw.iter().sum();
    let coeffs: Vec<f32> = raw.iter().map(|c| c / total).collect();
    let want = chained_interpolate_ref(&coeffs, &refs);

    let mut dst = Tensor::zeros(rows, cols);
    soup_tensor::ops::soup::blend_into(&mut dst, &coeffs, &refs);
    for (idx, (&g, &w)) in dst.data().iter().zip(&want).enumerate() {
        assert!(
            (g - w).abs() <= 1e-6 * (1.0 + w.abs()),
            "blend r={r} idx {idx}: got {g}, want {w}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random shapes spanning the tile-remainder classes: each dimension
    /// independently lands on/off MR/NR/KC multiples and crosses the
    /// small-product naive cutoff.
    #[test]
    fn matmul_matches_reference_on_random_shapes(
        m in 1usize..70,
        n in 1usize..70,
        k in 1usize..120,
        seed in 0u64..1_000_000,
    ) {
        check_matmuls(m, n, k, seed);
    }

    /// Random sparse structures: degree 0 (empty rows) is common by
    /// construction, feature widths cross the unroll remainder classes.
    #[test]
    fn spmm_matches_reference_on_random_graphs(
        rows in 1usize..40,
        cols in 1usize..40,
        c in 1usize..33,
        seed in 0u64..1_000_000,
        density in 0usize..6,
    ) {
        let mut rng = SplitMix64::new(seed ^ 0x9e37);
        let degrees: Vec<usize> = (0..rows).map(|_| rng.next_below(density + 1)).collect();
        check_spmm(rows, cols, &degrees, c, seed);
    }

    /// Fused soup blend vs chained interpolation for every soup size GIS
    /// probes (R ∈ {2..8}), crossing the rayon parallel-chunk threshold.
    #[test]
    fn blend_into_matches_chained_interpolation(
        rows in 1usize..80,
        cols in 1usize..48,
        r in 2usize..=8,
        seed in 0u64..1_000_000,
    ) {
        check_blend(rows, cols, r, seed);
    }
}

#[test]
fn matmul_tile_boundary_shapes() {
    // Exact multiples, ±1 remainders, degenerate vectors, and a k that
    // spans multiple KC slabs.
    let shapes = [
        (MR, NR, KC),
        (MR * 2, NR * 3, KC * 2),
        (MR * 2 + 1, NR + 7, KC + 1),
        (MR - 1, NR - 1, KC - 1),
        (1, 1, 1),
        (1, 64, 64), // 1×N row vector times matrix
        (64, 1, 64), // matrix times N×1 column vector
        (1, 1, KC * 2 + 3),
        (3, 5, 7),
        (65, 33, KC * 2 + 17),
    ];
    for (i, &(m, n, k)) in shapes.iter().enumerate() {
        check_matmuls(m, n, k, 1000 + i as u64);
    }
}

#[test]
fn spmm_hub_row_dominates_nnz() {
    // One hub row holds >90% of the edges; the chunk plan must isolate it
    // and the result must still match the per-edge reference.
    let rows = 32;
    let mut degrees = vec![1usize; rows];
    degrees[7] = 400; // 400 / (400 + 31) ≈ 93% of nnz
    check_spmm(rows, 24, &degrees, 16, 42);
}

#[test]
fn spmm_empty_and_all_empty_rows() {
    // Alternating empty rows.
    let degrees: Vec<usize> = (0..20).map(|r| if r % 2 == 0 { 3 } else { 0 }).collect();
    check_spmm(20, 10, &degrees, 5, 7);
    // Entirely empty matrix: output must be exactly zero.
    check_spmm(8, 8, &[0; 8], 4, 8);
}

#[test]
fn spmm_single_row_and_single_col() {
    check_spmm(1, 16, &[12], 8, 9); // 1×N structure
    let degrees = vec![1usize; 16];
    check_spmm(16, 1, &degrees, 8, 10); // N×1: every edge hits column 0
}
