//! Shared experiment machinery: presets, grid cells, result aggregation
//! and table formatting.

use soup_core::strategy::test_accuracy;
use soup_core::{
    GisSouping, Ingredient, LearnedHyper, LearnedSouping, PartitionLearnedSouping, SoupOutcome,
    SoupStrategy, UniformSouping,
};
use soup_distrib::train_ingredients;
use soup_gnn::model::PropOps;
use soup_gnn::{evaluate_accuracy, Arch, ModelConfig, TrainConfig};
use soup_graph::metrics::mean_std;
use soup_graph::{Dataset, DatasetKind};

/// Scale preset for an experiment run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentPreset {
    pub name: &'static str,
    /// Dataset node-count multiplier.
    pub dataset_scale: f64,
    /// Ingredients per (arch, dataset) cell (paper: 50).
    pub ingredients: usize,
    /// Soup repetitions per strategy (paper: 4).
    pub soups: usize,
    /// Ingredient-training epochs.
    pub train_epochs: usize,
    /// GIS interpolation granularity.
    pub gis_granularity: usize,
    /// LS / PLS optimisation epochs.
    pub learned_epochs: usize,
    /// PLS partition count K and budget R.
    pub pls_k: usize,
    pub pls_r: usize,
    /// Phase-1 worker threads.
    pub workers: usize,
}

impl ExperimentPreset {
    /// Seconds-per-cell smoke preset.
    pub fn quick() -> Self {
        Self {
            name: "quick",
            dataset_scale: 0.18,
            ingredients: 6,
            soups: 2,
            train_epochs: 12,
            gis_granularity: 12,
            learned_epochs: 15,
            pls_k: 8,
            pls_r: 2,
            workers: 4,
        }
    }

    /// The default for the experiment binaries. The `ingredients ×
    /// gis_granularity` to `learned_epochs` ratio mirrors the paper's
    /// regime (50 ingredients, §IV-C): GIS pays `N·(g-1)` full-graph
    /// forwards versus LS's `e` forward+backward passes.
    pub fn standard() -> Self {
        Self {
            name: "standard",
            dataset_scale: 0.5,
            ingredients: 12,
            soups: 3,
            train_epochs: 30,
            gis_granularity: 20,
            learned_epochs: 40,
            pls_k: 16,
            pls_r: 4,
            workers: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4),
        }
    }

    /// Paper-scale settings (hours of wall-clock).
    pub fn full() -> Self {
        Self {
            name: "full",
            dataset_scale: 1.0,
            ingredients: 50,
            soups: 4,
            train_epochs: 80,
            gis_granularity: 20,
            learned_epochs: 60,
            pls_k: 32,
            pls_r: 8,
            workers: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(8),
        }
    }

    /// Parse from the CLI, defaulting to `standard`. The first positional
    /// argument selects the preset; `--trace-out FILE` opens a JSONL trace
    /// sink, `--metrics-out FILE` starts the background `soup-metrics/1`
    /// sampler (tick length via `--metrics-interval-ms`, default 100) and
    /// `--metrics-summary` prints the span/counter report in
    /// [`finish_observability`].
    pub fn from_args() -> Self {
        let mut preset = None;
        let mut metrics_out: Option<String> = None;
        let mut metrics_interval_ms: u64 = 100;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "quick" => preset = Some(Self::quick()),
                "full" => preset = Some(Self::full()),
                "standard" => preset = Some(Self::standard()),
                "--trace-out" => {
                    let Some(path) = args.next() else {
                        eprintln!("--trace-out needs a file argument");
                        std::process::exit(2);
                    };
                    if let Err(e) = soup_obs::trace::init(&path) {
                        eprintln!("cannot open trace file {path}: {e}");
                        std::process::exit(2);
                    }
                }
                "--metrics-out" => {
                    let Some(path) = args.next() else {
                        eprintln!("--metrics-out needs a file argument");
                        std::process::exit(2);
                    };
                    metrics_out = Some(path);
                }
                "--metrics-interval-ms" => {
                    let parsed = args.next().and_then(|v| v.parse().ok());
                    let Some(ms) = parsed else {
                        eprintln!("--metrics-interval-ms needs an integer argument");
                        std::process::exit(2);
                    };
                    metrics_interval_ms = ms;
                }
                "--metrics-summary" => {
                    METRICS_SUMMARY.store(true, std::sync::atomic::Ordering::Relaxed);
                }
                other => {
                    eprintln!(
                        "unknown argument '{other}', expected \
                         [quick|standard|full] [--trace-out FILE] \
                         [--metrics-out FILE] [--metrics-interval-ms N] \
                         [--metrics-summary]"
                    );
                    std::process::exit(2);
                }
            }
        }
        if let Some(path) = metrics_out {
            // Pool/memory gauges ride the sampler through the probe hook.
            soup_tensor::memory::install_obs_probe();
            match soup_obs::series::start(
                &path,
                std::time::Duration::from_millis(metrics_interval_ms),
            ) {
                Ok(handle) => *SAMPLER.lock().unwrap() = Some(handle),
                Err(e) => {
                    eprintln!("cannot open metrics file {path}: {e}");
                    std::process::exit(2);
                }
            }
        }
        preset.unwrap_or_else(Self::standard)
    }
}

static METRICS_SUMMARY: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);
/// The `--metrics-out` sampler, parked here between
/// [`ExperimentPreset::from_args`] and [`finish_observability`].
static SAMPLER: std::sync::Mutex<Option<soup_obs::series::SamplerHandle>> =
    std::sync::Mutex::new(None);

/// Finalize the observability options of [`ExperimentPreset::from_args`]:
/// stop the `--metrics-out` sampler (flushing the final sample and
/// footer), close the `--trace-out` sink (appending the final metrics
/// record) and print the `--metrics-summary` report. Binaries call this
/// last.
pub fn finish_observability() {
    // Final pool release: after this, `DEVICE_MEMORY` pooled accounting
    // balances back to zero and only genuinely live tensors remain counted.
    soup_tensor::pool::trim();
    if let Some(handle) = SAMPLER.lock().unwrap().take() {
        if let Some(path) = handle.stop() {
            soup_obs::info!("wrote metrics series {}", path.display());
        }
    }
    if let Some(path) = soup_obs::trace::finish() {
        soup_obs::info!("wrote trace {}", path.display());
    }
    if METRICS_SUMMARY.load(std::sync::atomic::Ordering::Relaxed) {
        soup_obs::report::print_summary();
    }
}

/// A souping strategy selector for grid runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    Uniform,
    Gis,
    Learned,
    PartitionLearned,
}

impl StrategyKind {
    pub const TABLE: [StrategyKind; 4] = [
        Self::Uniform,
        Self::Gis,
        Self::Learned,
        Self::PartitionLearned,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            Self::Uniform => "US",
            Self::Gis => "GIS",
            Self::Learned => "LS",
            Self::PartitionLearned => "PLS",
        }
    }

    /// Instantiate with preset hyperparameters.
    pub fn build(&self, preset: &ExperimentPreset) -> Box<dyn SoupStrategy> {
        let hyper = LearnedHyper {
            epochs: preset.learned_epochs,
            ..Default::default()
        };
        match self {
            Self::Uniform => Box::new(UniformSouping),
            Self::Gis => Box::new(GisSouping::new(preset.gis_granularity)),
            Self::Learned => Box::new(LearnedSouping::new(hyper)),
            Self::PartitionLearned => Box::new(PartitionLearnedSouping::new(
                hyper,
                preset.pls_k,
                preset.pls_r,
            )),
        }
    }
}

/// One (arch, dataset) grid cell.
#[derive(Debug, Clone)]
pub struct CellConfig {
    pub arch: Arch,
    pub dataset: DatasetKind,
    pub seed: u64,
}

/// Aggregated results of one strategy in a cell.
#[derive(Debug, Clone)]
pub struct StrategyResult {
    pub strategy: StrategyKind,
    pub test_acc_mean: f64,
    pub test_acc_std: f64,
    pub time_mean_s: f64,
    pub time_std_s: f64,
    pub peak_mem_mean: f64,
    pub epochs_mean: f64,
    pub forward_passes_mean: f64,
}

/// Full cell result: the ingredient pool statistics plus per-strategy rows.
#[derive(Debug, Clone)]
pub struct CellResult {
    pub arch: Arch,
    pub dataset: DatasetKind,
    pub ingredient_test_mean: f64,
    pub ingredient_test_std: f64,
    pub ingredient_tests: Vec<f64>,
    pub strategies: Vec<StrategyResult>,
}

/// Build the model config a cell uses (hidden sizes follow the paper's
/// "relatively small" models, §IV-B).
pub fn model_config(arch: Arch, dataset: &Dataset) -> ModelConfig {
    match arch {
        Arch::Gcn => {
            ModelConfig::gcn(dataset.num_features(), dataset.num_classes()).with_hidden(64)
        }
        Arch::Sage => {
            ModelConfig::sage(dataset.num_features(), dataset.num_classes()).with_hidden(64)
        }
        Arch::Gat => ModelConfig::gat(dataset.num_features(), dataset.num_classes())
            .with_hidden(16)
            .with_heads(4),
        Arch::Gin => {
            ModelConfig::gin(dataset.num_features(), dataset.num_classes()).with_hidden(64)
        }
    }
}

/// Train the ingredient pool for a cell (Phase 1).
pub fn train_pool(
    dataset: &Dataset,
    cfg: &ModelConfig,
    preset: &ExperimentPreset,
    seed: u64,
) -> Vec<Ingredient> {
    let tc = TrainConfig {
        epochs: preset.train_epochs,
        early_stop_patience: None,
        ..TrainConfig::quick()
    };
    train_ingredients(dataset, cfg, &tc, preset.ingredients, preset.workers, seed)
}

/// Run one grid cell: train ingredients once, soup `preset.soups` times per
/// strategy, aggregate.
pub fn run_cell(cell: &CellConfig, preset: &ExperimentPreset) -> CellResult {
    let _cell_span = soup_obs::span!("cell");
    soup_obs::info!(
        "cell {}/{}: training {} ingredients on {} workers",
        cell.arch.name(),
        cell.dataset.name(),
        preset.ingredients,
        preset.workers
    );
    let dataset = cell
        .dataset
        .generate_scaled(cell.seed, preset.dataset_scale);
    let cfg = model_config(cell.arch, &dataset);
    let ingredients = train_pool(&dataset, &cfg, preset, cell.seed);

    // Ingredient test accuracies (the "Ingredients" column of Table II).
    let ops = PropOps::prepare(cfg.arch, &dataset.graph);
    let ingredient_tests: Vec<f64> = ingredients
        .iter()
        .map(|i| {
            evaluate_accuracy(
                &cfg,
                &ops,
                &i.params,
                &dataset.features,
                &dataset.labels,
                &dataset.splits.test,
            )
        })
        .collect();
    let (ing_mean, ing_std) = mean_std(&ingredient_tests);

    let strategies = StrategyKind::TABLE
        .iter()
        .map(|kind| {
            // Release pooled workspace buffers before each strategy so its
            // peak-memory measurement (Fig. 4b) starts from a clean
            // allocator state and never inherits another experiment's idle
            // buffers.
            let trimmed = soup_tensor::pool::trim();
            soup_obs::counter!("bench.pool.trimmed_bytes").add(trimmed as u64);
            let strategy = kind.build(preset);
            let mut accs = Vec::new();
            let mut times = Vec::new();
            let mut mems = Vec::new();
            let mut epochs = Vec::new();
            let mut forwards = Vec::new();
            for rep in 0..preset.soups {
                let outcome: SoupOutcome = strategy.soup(
                    &ingredients,
                    &dataset,
                    &cfg,
                    cell.seed ^ ((rep as u64 + 1) * 0x9e37),
                );
                accs.push(test_accuracy(&outcome, &dataset, &cfg));
                times.push(outcome.stats.wall_time.as_secs_f64());
                mems.push(outcome.stats.peak_mem_bytes as f64);
                epochs.push(outcome.stats.epochs as f64);
                forwards.push(outcome.stats.forward_passes as f64);
            }
            let (acc_mean, acc_std) = mean_std(&accs);
            let (time_mean, time_std) = mean_std(&times);
            let (mem_mean, _) = mean_std(&mems);
            let (ep_mean, _) = mean_std(&epochs);
            let (fw_mean, _) = mean_std(&forwards);
            StrategyResult {
                strategy: *kind,
                test_acc_mean: acc_mean,
                test_acc_std: acc_std,
                time_mean_s: time_mean,
                time_std_s: time_std,
                peak_mem_mean: mem_mean,
                epochs_mean: ep_mean,
                forward_passes_mean: fw_mean,
            }
        })
        .collect();

    CellResult {
        arch: cell.arch,
        dataset: cell.dataset,
        ingredient_test_mean: ing_mean,
        ingredient_test_std: ing_std,
        ingredient_tests,
        strategies,
    }
}

/// The full 3×4 grid of the paper's evaluation.
pub fn full_grid(seed: u64) -> Vec<CellConfig> {
    let mut cells = Vec::new();
    for arch in Arch::ALL {
        for dataset in DatasetKind::ALL {
            cells.push(CellConfig {
                arch,
                dataset,
                seed,
            });
        }
    }
    cells
}

/// `mean ± std` with percent scaling (Table II style).
pub fn format_pm(mean: f64, std: f64) -> String {
    format!("{:5.2} ± {:.2}", mean * 100.0, std * 100.0)
}

/// `mean ± std` in seconds (Table III style).
pub fn format_pm_secs(mean: f64, std: f64) -> String {
    format!("{mean:7.3} ± {std:.3}")
}

/// Write rows as CSV under `results/`, with a metrics sidecar
/// (`results/{name}.metrics.json`) snapshotting every counter, gauge,
/// histogram and span accumulated while the artefact was produced.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut contents = String::from(header);
    contents.push('\n');
    for r in rows {
        contents.push_str(r);
        contents.push('\n');
    }
    std::fs::write(&path, contents)?;
    let metrics = serde_json::to_string(&soup_obs::registry::snapshot_value())
        .unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"));
    std::fs::write(dir.join(format!("{name}.metrics.json")), metrics)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_ordering() {
        let q = ExperimentPreset::quick();
        let s = ExperimentPreset::standard();
        let f = ExperimentPreset::full();
        assert!(q.ingredients < s.ingredients && s.ingredients < f.ingredients);
        assert!(q.dataset_scale < s.dataset_scale && s.dataset_scale <= f.dataset_scale);
        assert_eq!(f.ingredients, 50); // paper's count
        assert_eq!(f.soups, 4); // paper reports the average of 4 soups
        assert_eq!((f.pls_k, f.pls_r), (32, 8)); // §VI-B practical choice
    }

    #[test]
    fn strategy_kinds_cover_table() {
        let names: Vec<&str> = StrategyKind::TABLE.iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["US", "GIS", "LS", "PLS"]);
    }

    #[test]
    fn grid_is_three_by_four() {
        let grid = full_grid(1);
        assert_eq!(grid.len(), 12);
    }

    #[test]
    fn formatting() {
        assert_eq!(format_pm(0.513, 0.0061), "51.30 ± 0.61");
        assert!(format_pm_secs(1.5, 0.25).contains("1.500"));
    }

    #[test]
    fn every_strategy_kind_builds() {
        let preset = ExperimentPreset::quick();
        for kind in StrategyKind::TABLE {
            let s = kind.build(&preset);
            assert_eq!(s.name(), kind.name());
        }
    }

    #[test]
    fn model_configs_match_dataset_dims() {
        use soup_gnn::Arch;
        let d = DatasetKind::Flickr.generate_scaled(1, 0.1);
        for arch in [Arch::Gcn, Arch::Sage, Arch::Gat, Arch::Gin] {
            let cfg = model_config(arch, &d);
            assert_eq!(cfg.in_dim, d.num_features(), "{arch:?}");
            assert_eq!(cfg.out_dim, d.num_classes(), "{arch:?}");
            assert_eq!(cfg.arch, arch);
        }
    }

    #[test]
    fn csv_writer_roundtrip() {
        let rows = vec!["a,1".to_string(), "b,2".to_string()];
        let path = write_csv("harness_test_tmp", "name,value", &rows).unwrap();
        let contents = std::fs::read_to_string(&path).unwrap();
        assert_eq!(contents, "name,value\na,1\nb,2\n");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn quick_cell_runs_end_to_end() {
        // The smallest possible full-pipeline smoke test of the harness.
        let mut preset = ExperimentPreset::quick();
        preset.dataset_scale = 0.12;
        preset.ingredients = 3;
        preset.soups = 1;
        preset.train_epochs = 8;
        preset.learned_epochs = 8;
        let cell = CellConfig {
            arch: Arch::Gcn,
            dataset: DatasetKind::Flickr,
            seed: 5,
        };
        let result = run_cell(&cell, &preset);
        assert_eq!(result.strategies.len(), 4);
        assert_eq!(result.ingredient_tests.len(), 3);
        for s in &result.strategies {
            assert!(
                (0.0..=1.0).contains(&s.test_acc_mean),
                "{:?} acc {}",
                s.strategy,
                s.test_acc_mean
            );
            assert!(s.time_mean_s >= 0.0);
        }
        // US must be the cheapest in time among the four.
        let us = &result.strategies[0];
        for other in &result.strategies[1..] {
            assert!(us.time_mean_s <= other.time_mean_s + 1e-4);
        }
    }
}
