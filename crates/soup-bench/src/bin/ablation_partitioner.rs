//! §III-C ablation: does PLS need a METIS-quality partitioner?
//!
//! Compares PLS under four partition pools — the paper's validation-
//! balanced multilevel partitioner, plain multilevel, BFS blocks, and
//! structure-blind random assignment — on edge cut, validation balance,
//! accuracy and souping time. Random partitions maximise the cut, so each
//! epoch's partition union carries the *least* graph structure for the
//! same R/K.
//!
//! Usage: `cargo run --release -p soup-bench --bin ablation_partitioner [preset]`

use soup_bench::harness::{model_config, train_pool, write_csv, ExperimentPreset};
use soup_core::strategy::test_accuracy;
use soup_core::{LearnedHyper, PartitionLearnedSouping, PartitionerKind, SoupStrategy};
use soup_gnn::Arch;
use soup_graph::DatasetKind;
use soup_partition::quality::subset_counts;
use soup_partition::{
    bfs_partition, edge_cut, partition_val_balanced, random_partition, PartitionConfig,
};

fn main() {
    let preset = ExperimentPreset::from_args();
    let dataset = DatasetKind::Reddit.generate_scaled(42, preset.dataset_scale);
    let cfg = model_config(Arch::Gcn, &dataset);
    let ingredients = train_pool(&dataset, &cfg, &preset, 42);
    let (k, r) = (preset.pls_k, preset.pls_r);
    println!(
        "ABLATION partitioner quality (PLS on reddit/GCN, K={k}, R={r}, preset '{}')",
        preset.name
    );

    // Static partition quality first.
    let pcfg = PartitionConfig::new(k).with_seed(42);
    let pools = [
        (
            "ml+valbal",
            partition_val_balanced(&dataset.graph, &dataset.splits, &pcfg),
        ),
        ("bfs", bfs_partition(&dataset.graph, k, 42)),
        ("random", random_partition(dataset.num_nodes(), k, 42)),
    ];
    println!("\nstatic quality:");
    println!(
        "{:<12} {:>10} {:>22}",
        "partitioner", "edge cut", "val spread (min..max)"
    );
    for (name, p) in &pools {
        let cut = edge_cut(&dataset.graph, &p.assignment);
        let counts = subset_counts(&p.assignment, &dataset.splits.val, k);
        println!(
            "{name:<12} {cut:>10} {:>12}..{}",
            counts.iter().min().unwrap(),
            counts.iter().max().unwrap()
        );
    }

    // PLS outcome per partitioner.
    let hyper = LearnedHyper {
        epochs: preset.learned_epochs,
        ..Default::default()
    };
    println!("\nPLS outcome:");
    println!(
        "{:<22} {:>10} {:>10} {:>10}",
        "partitioner", "val acc", "test acc", "time (s)"
    );
    let mut rows = Vec::new();
    for kind in [
        PartitionerKind::MultilevelValBalanced,
        PartitionerKind::Multilevel,
        PartitionerKind::Bfs,
        PartitionerKind::Random,
    ] {
        let pls = PartitionLearnedSouping::new(hyper, k, r).with_partitioner(kind);
        let outcome = pls.soup(&ingredients, &dataset, &cfg, 5);
        let acc = test_accuracy(&outcome, &dataset, &cfg);
        println!(
            "{:<22} {:>9.2}% {:>9.2}% {:>10.3}",
            format!("{kind:?}"),
            outcome.val_accuracy * 100.0,
            acc * 100.0,
            outcome.stats.wall_time.as_secs_f64()
        );
        rows.push(format!(
            "{kind:?},{:.4},{acc:.4},{:.4}",
            outcome.val_accuracy,
            outcome.stats.wall_time.as_secs_f64()
        ));
    }
    let _ = write_csv(
        "ablation_partitioner",
        "partitioner,val_acc,test_acc,time_s",
        &rows,
    )
    .map(|p| soup_obs::info!("wrote {}", p.display()));
    soup_bench::harness::finish_observability();
}
