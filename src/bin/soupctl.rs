//! `soupctl` — command-line driver for the Enhanced-Soups pipeline.
//!
//! ```text
//! soupctl generate  --dataset flickr --scale 0.5 --seed 42 --out ds.json
//! soupctl train     --data ds.json --arch gcn --ingredients 8 --workers 4 \
//!                   --epochs 30 --seed 42 --out-dir ckpts/
//! soupctl train     --data ds.json --arch gcn --out-dir ckpts/ --resume
//! soupctl soup      --data ds.json --ckpt-dir ckpts/ --strategy ls \
//!                   --epochs 50 --seed 7 --out soup.json
//! soupctl eval      --data ds.json --ckpt-dir ckpts/ --params soup.json --split test
//! soupctl serve     --data ds.json --ckpt-dir ckpts/ --params soup.json --port 7450
//! soupctl query     --addr 127.0.0.1:7450 --nodes 0,17,42
//! soupctl diversity --data ds.json --ckpt-dir ckpts/
//! soupctl generate  --dataset products --scale 0.2 --mmap --out ds.gmm
//! soupctl partition --data ds.gmm --k 4
//! soupctl shard     --data ds.gmm --k 4 --out-dir run/ --strategy pls
//! ```
//!
//! Every subcommand's flag surface is a declarative typed spec
//! ([`enhanced_soups::cli`]): unknown flags and type mismatches are usage
//! errors (exit 2), and per-command `--help` is generated from the same
//! spec the parser runs.
//!
//! `train` persists every ingredient as a checksummed `soup-ckpt/2`
//! checkpoint (written atomically through the crash-safe store) plus a
//! `manifest.json` recording the model configuration, per-ingredient
//! metadata and the run journal, which `soup`/`eval`/`serve`/`diversity`
//! read back so the architecture never has to be re-specified. A killed
//! run is picked up with `--resume`: existing checkpoints are validated
//! and only missing or corrupt ingredients retrain. Phase 2 is resumable
//! too: `soup --strategy ls --resume` continues the α-optimisation
//! bit-identically from the last durable epoch checkpoint. `serve` exposes
//! the souped model over a micro-batching TCP loop with admission control
//! and hot model swap; `query` is the matching client.
//!
//! The sharded path works on out-of-core `soup-graphmmap/1` datasets
//! (`generate --mmap`): `partition` reports k-way quality (edge-cut, halo
//! fraction, balance) or rewrites the dataset shard-ordered, and `shard`
//! runs multi-process Phase-1 + souping — one OS process per shard, halo
//! features over Unix sockets (shared-map fast path), ≈R/K peak memory per
//! worker. The workers it forks are the hidden `shard-worker` subcommand.

use enhanced_soups::cli::{CommandSpec, FlagDef, Flags};
use enhanced_soups::distrib::{
    analyze_sharding, parse_kill_list, parse_shard_list, prepare_sharded_dataset, run_shard_worker,
    run_sharded, ShardPlan, WorkerLaunch,
};
use enhanced_soups::gnn::model::PropOps;
use enhanced_soups::gnn::{checkpoint_name, evaluate_accuracy, load_checkpoint, ParamSet};
use enhanced_soups::gnn::{ModelConfig, TrainConfig};
use enhanced_soups::graph::io::{load_dataset, save_dataset};
use enhanced_soups::graph::mmap::{save_mmap_dataset, MmapDataset};
use enhanced_soups::prelude::*;
use enhanced_soups::serve::{Client, PredictResult, ServeConfig, Server};
use enhanced_soups::soup::resume::load_state;
use enhanced_soups::soup::strategy::test_accuracy;
use enhanced_soups::soup::{
    diversity_report, load_manifest, write_manifest, Manifest, ManifestEntry, SoupCtx, StrategySpec,
};
use enhanced_soups::tensor::quant::QuantKind;
use std::path::{Path, PathBuf};
use std::process::exit;
use std::time::Duration;

const GENERATE: CommandSpec = CommandSpec {
    name: "generate",
    summary: "synthesize a dataset shaped like one of the paper's benchmarks",
    positional: "",
    flags: &[
        FlagDef::str("dataset", "NAME", "flickr | arxiv | reddit | products").required(),
        FlagDef::f64("scale", "node-count multiplier").default("1.0"),
        FlagDef::u64("seed", "generator seed").default("42"),
        FlagDef::str("out", "FILE", "output dataset file").required(),
        FlagDef::switch(
            "mmap",
            "write the out-of-core soup-graphmmap/1 format (for partition/shard)",
        ),
    ],
};

const PARTITION: CommandSpec = CommandSpec {
    name: "partition",
    summary: "k-way shard quality report; --out rewrites the dataset shard-ordered",
    positional: "",
    flags: &[
        FlagDef::str(
            "data",
            "FILE",
            "soup-graphmmap/1 dataset (`generate --mmap`)",
        )
        .required(),
        FlagDef::u64("k", "shard count").default("4"),
        FlagDef::str(
            "out",
            "FILE",
            "write the shard-ordered rewrite here (default: analyze only)",
        ),
    ],
};

const SHARD: CommandSpec = CommandSpec {
    name: "shard",
    summary: "multi-process sharded phase 1 + souping (one worker per shard)",
    positional: "",
    flags: &[
        FlagDef::str(
            "data",
            "FILE",
            "soup-graphmmap/1 dataset (`generate --mmap`)",
        )
        .required(),
        FlagDef::u64("k", "shard count = worker process count").default("2"),
        FlagDef::str(
            "out-dir",
            "DIR",
            "run directory: plan, sockets, per-shard checkpoints",
        )
        .required(),
        FlagDef::str("arch", "NAME", "gcn | sage | gat | gin").default("gcn"),
        FlagDef::u64("hidden", "hidden width").default("64"),
        FlagDef::u64("layers", "model depth").default("2"),
        FlagDef::f64("dropout", "dropout rate").default("0.5"),
        FlagDef::u64("ingredients", "pool size per shard").default("4"),
        FlagDef::u64("epochs", "training epochs per ingredient").default("30"),
        FlagDef::f64("lr", "ingredient learning rate").default("0.01"),
        FlagDef::str("strategy", "NAME", "us | greedy | gis | ls | pls").default("pls"),
        FlagDef::u64("soup-epochs", "LS/PLS optimisation epochs").default("50"),
        FlagDef::u64("pls-k", "PLS partition count K").default("16"),
        FlagDef::u64("pls-r", "PLS partitions per epoch R").default("4"),
        FlagDef::u64("seed", "root seed (shard i derives its own stream)").default("42"),
        FlagDef::switch(
            "resume",
            "reuse the run directory's plan and valid per-shard checkpoints",
        ),
        FlagDef::switch(
            "no-shm",
            "force the socket halo path (skip the shared-map fast path)",
        ),
        FlagDef::f64(
            "worker-timeout",
            "heartbeat deadline in seconds: a worker silent this long is \
             declared lost and respawned",
        )
        .default("30"),
        FlagDef::u64(
            "restart-budget",
            "respawns per shard before the run degrades without it",
        )
        .default("2"),
        FlagDef::u64("chaos-seed", "seed of the chaos fault schedule").default("0"),
        FlagDef::str(
            "chaos-kill",
            "LIST",
            "kill shard:phase once (first incarnation), e.g. 0:train,2:spawn",
        ),
        FlagDef::str(
            "chaos-kill-every",
            "LIST",
            "kill shard:phase at every incarnation (defeats the restart budget)",
        ),
        FlagDef::f64(
            "chaos-kill-rate",
            "probability a (shard, phase) is struck by a seeded kill",
        )
        .default("0"),
        FlagDef::f64(
            "chaos-frame-rate",
            "probability an epoch-0 control frame is dropped/delayed/truncated",
        )
        .default("0"),
        FlagDef::u64("chaos-frame-delay-ms", "delay used by frame-delay faults").default("5"),
        FlagDef::str(
            "chaos-corrupt-journal",
            "LIST",
            "shards whose newest checkpoint is corrupted before their first respawn",
        ),
    ],
};

/// Hidden: the worker half of `shard`. Not listed in `soupctl help`; the
/// coordinator launches `soupctl shard-worker --plan ... --shard i`.
const SHARD_WORKER: CommandSpec = CommandSpec {
    name: "shard-worker",
    summary: "(internal) one shard worker process, forked by `shard`",
    positional: "",
    flags: &[
        FlagDef::str("plan", "FILE", "plan.json written by the coordinator").required(),
        FlagDef::u64("shard", "this worker's shard index").required(),
        FlagDef::u64(
            "epoch",
            "session epoch (incarnation counter, bumped on respawn)",
        )
        .default("0"),
    ],
};

const TRAIN: CommandSpec = CommandSpec {
    name: "train",
    summary: "phase 1: train the ingredient pool (crash-safe, resumable)",
    positional: "",
    flags: &[
        FlagDef::str("data", "FILE", "dataset from `generate`").required(),
        FlagDef::str("arch", "NAME", "gcn | sage | gat | gin").required(),
        FlagDef::u64("hidden", "hidden width").default("64"),
        FlagDef::u64("ingredients", "pool size").default("8"),
        FlagDef::u64("workers", "parallel trainers").default("4"),
        FlagDef::u64("epochs", "training epochs per ingredient").default("30"),
        FlagDef::u64("seed", "base seed (ingredient i trains with seed+i)").default("42"),
        FlagDef::str("out-dir", "DIR", "checkpoint directory").required(),
        FlagDef::switch(
            "resume",
            "revalidate checkpoints, retrain only missing/corrupt",
        ),
        FlagDef::u64(
            "retry-budget",
            "retries per ingredient before permanent failure",
        )
        .default("2"),
        FlagDef::u64(
            "straggler-deadline-ms",
            "requeue attempts running longer than this",
        )
        .default("0"),
        FlagDef::f64(
            "fault-rate",
            "inject faults into this fraction of first attempts",
        )
        .default("0.0"),
        FlagDef::f64(
            "storage-fault-rate",
            "strike this fraction of artifact writes (store heals them)",
        )
        .default("0.0"),
        FlagDef::u64("fault-seed", "fault-schedule seed (default: --seed)"),
    ],
};

const SOUP: CommandSpec = CommandSpec {
    name: "soup",
    summary: "phase 2: mix the pool with a souping strategy",
    positional: "",
    flags: &[
        FlagDef::str("data", "FILE", "dataset from `generate`").required(),
        FlagDef::str("ckpt-dir", "DIR", "checkpoint directory from `train`").required(),
        FlagDef::str("strategy", "NAME", "us | greedy | gis | ls | pls").required(),
        FlagDef::u64("epochs", "LS/PLS optimisation epochs").default("50"),
        FlagDef::u64("granularity", "GIS interpolation steps").default("20"),
        FlagDef::u64("pls-k", "PLS partition count K").default("16"),
        FlagDef::u64("pls-r", "PLS partitions per epoch R").default("4"),
        FlagDef::u64("seed", "phase-2 seed").default("7"),
        FlagDef::str("out", "FILE", "write the souped parameters as JSON"),
        FlagDef::switch(
            "resume",
            "continue from the last durable phase-2 checkpoint (ls/pls)",
        ),
        FlagDef::u64("ckpt-every", "persist optimizer state every N epochs").default("1"),
        FlagDef::u64("stop-after-epoch", "simulated kill right after epoch N").default("0"),
        FlagDef::f64(
            "storage-fault-rate",
            "inject faults into phase-2 state writes",
        )
        .default("0.0"),
        FlagDef::u64("fault-seed", "storage-fault seed (default: --seed)"),
        FlagDef::switch("quant-check", "gate int8/bf16 quantized accuracy at 0.5 pp"),
    ],
};

const EVAL: CommandSpec = CommandSpec {
    name: "eval",
    summary: "evaluate saved parameters on a dataset split",
    positional: "",
    flags: &[
        FlagDef::str("data", "FILE", "dataset from `generate`").required(),
        FlagDef::str(
            "ckpt-dir",
            "DIR",
            "checkpoint directory (for the architecture)",
        )
        .required(),
        FlagDef::str("params", "FILE", "parameters from `soup --out`").required(),
        FlagDef::str("split", "NAME", "train | val | test").default("test"),
    ],
};

const SERVE: CommandSpec = CommandSpec {
    name: "serve",
    summary: "serve node-classification queries over a souped model (TCP)",
    positional: "",
    flags: &[
        FlagDef::str("data", "FILE", "dataset from `generate`").required(),
        FlagDef::str("ckpt-dir", "DIR", "checkpoint directory from `train`").required(),
        FlagDef::str(
            "params",
            "FILE",
            "souped parameters to serve (default: soup the pool at startup)",
        ),
        FlagDef::str(
            "strategy",
            "NAME",
            "startup souping strategy when --params is absent",
        )
        .default("us"),
        FlagDef::u64("seed", "startup souping seed").default("7"),
        FlagDef::u64("port", "TCP port (0 = ephemeral, printed at startup)").default("7450"),
        FlagDef::u64("max-batch", "close a batch at this many queued node ids").default("64"),
        FlagDef::u64(
            "max-delay-us",
            "close a batch this long after its first request",
        )
        .default("500"),
        FlagDef::u64(
            "queue-depth",
            "admission queue capacity (full => OVERLOADED)",
        )
        .default("128"),
        FlagDef::u64("workers", "accept-loop threads = max live connections").default("4"),
        FlagDef::str(
            "quant",
            "KIND",
            "serve the quantized forward path: int8 | bf16",
        ),
        FlagDef::u64(
            "idle-timeout-ms",
            "reap a connection idle this long (stalled mid-frame: 2x)",
        )
        .default("60000"),
    ],
};

const QUERY: CommandSpec = CommandSpec {
    name: "query",
    summary: "client for a running `soupctl serve`",
    positional: "",
    flags: &[
        FlagDef::str("addr", "HOST:PORT", "server address").required(),
        FlagDef::str("nodes", "IDS", "comma-separated node ids to classify"),
        FlagDef::switch("ping", "liveness probe; prints the model version"),
        FlagDef::switch("stats", "print the server's metrics snapshot (JSON)"),
        FlagDef::str(
            "swap",
            "FILE",
            "hot-swap: promote this checkpoint to the live model",
        ),
        FlagDef::str(
            "resoup",
            "NAME",
            "re-soup --ckpt-dir with this strategy and promote",
        ),
        FlagDef::str("ckpt-dir", "DIR", "pool directory for --resoup"),
        FlagDef::u64("seed", "souping seed for --resoup").default("7"),
        FlagDef::switch("shutdown", "stop the server"),
    ],
};

const DIVERSITY: CommandSpec = CommandSpec {
    name: "diversity",
    summary: "report ingredient-pool diversity (§V-A)",
    positional: "",
    flags: &[
        FlagDef::str("data", "FILE", "dataset from `generate`").required(),
        FlagDef::str("ckpt-dir", "DIR", "checkpoint directory from `train`").required(),
    ],
};

const VERIFY: CommandSpec = CommandSpec {
    name: "verify",
    summary: "offline integrity audit of an artifact directory",
    positional: "DIR",
    flags: &[FlagDef::str(
        "ckpt-dir",
        "DIR",
        "directory to audit (alternative to positional)",
    )],
};

const TRACE_VALIDATE: CommandSpec = CommandSpec {
    name: "trace-validate",
    summary: "check a --trace-out file against the soup-trace/1 schema",
    positional: "FILE",
    flags: &[FlagDef::str(
        "file",
        "FILE",
        "trace to validate (alternative to positional)",
    )],
};

const OBS: CommandSpec = CommandSpec {
    name: "obs",
    summary: "offline tooling over --trace-out / --metrics-out artifacts",
    positional: "<report|tail|diff|flame> FILE...",
    flags: &[
        FlagDef::u64("last", "samples to show (tail)").default("5"),
        FlagDef::f64("noise", "noise band for diff (fraction)"),
        FlagDef::switch(
            "fail-on-regress",
            "non-zero exit if diff regresses beyond the band",
        ),
        FlagDef::str("out", "FILE", "output file (flame)").default("flame.folded"),
    ],
};

const COMMANDS: &[&CommandSpec] = &[
    &GENERATE,
    &TRAIN,
    &SOUP,
    &EVAL,
    &SERVE,
    &QUERY,
    &DIVERSITY,
    &VERIFY,
    &TRACE_VALIDATE,
    &OBS,
    &PARTITION,
    &SHARD,
    &SHARD_WORKER,
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        usage();
        exit(2);
    };
    match command.as_str() {
        "help" | "--help" | "-h" => {
            usage();
            return;
        }
        _ => {}
    }
    let Some(spec) = COMMANDS.iter().find(|s| s.name == command.as_str()) else {
        eprintln!("unknown command '{command}'");
        usage();
        exit(2);
    };
    if rest.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("{}", spec.usage());
        return;
    }
    let flags = match spec.parse(rest) {
        Ok(flags) => flags,
        Err(e) => {
            eprintln!("error: {e}");
            exit(2);
        }
    };
    // Observability flags apply to every command: --trace-out streams a
    // JSONL trace of the run, --metrics-out a live soup-metrics/1 time
    // series, --metrics-summary prints the span/counter report at exit.
    if let Some(path) = flags.str("trace-out") {
        if let Err(e) = enhanced_soups::obs::trace::init(path) {
            eprintln!("error: cannot open trace file {path}: {e}");
            exit(1);
        }
    }
    let sampler = flags.str("metrics-out").map(|path| {
        let interval = flags.req_u64("metrics-interval-ms");
        // Pool/memory gauges ride the sampler via the probe hook.
        enhanced_soups::tensor::memory::install_obs_probe();
        match enhanced_soups::obs::series::start(path, Duration::from_millis(interval)) {
            Ok(handle) => handle,
            Err(e) => {
                eprintln!("error: cannot open metrics file {path}: {e}");
                exit(1);
            }
        }
    });
    let result = match spec.name {
        "generate" => cmd_generate(&flags),
        "train" => cmd_train(&flags),
        "soup" => cmd_soup(&flags),
        "eval" => cmd_eval(&flags),
        "serve" => cmd_serve(&flags),
        "query" => cmd_query(&flags),
        "diversity" => cmd_diversity(&flags),
        "verify" => cmd_verify(&flags),
        "trace-validate" => cmd_trace_validate(&flags),
        "obs" => cmd_obs(&flags),
        "partition" => cmd_partition(&flags),
        "shard" => cmd_shard(&flags),
        "shard-worker" => cmd_shard_worker(&flags),
        _ => unreachable!("command table covers every spec"),
    };
    if let Some(handle) = sampler {
        if let Some(path) = handle.stop() {
            soup_obs::info!("wrote metrics series {}", path.display());
        }
    }
    if let Some(path) = enhanced_soups::obs::trace::finish() {
        soup_obs::info!("wrote trace {}", path.display());
    }
    if flags.switch("metrics-summary") {
        enhanced_soups::obs::report::print_summary();
    }
    if let Err(e) = result {
        eprintln!("error: {e}");
        exit(if e.kind() == "usage" { 2 } else { 1 });
    }
}

fn usage() {
    eprintln!("soupctl — GNN model souping (Enhanced Soups reproduction)\n");
    for spec in COMMANDS {
        // shard-worker is an implementation detail of `shard`, not a
        // user-facing command.
        if spec.name == SHARD_WORKER.name {
            continue;
        }
        eprintln!("  {:<16} {}", spec.name, spec.summary);
    }
    eprintln!(
        "\nrun `soupctl <command> --help` for the command's flags\n\
         \n\
         global flags (any command):"
    );
    for def in enhanced_soups::cli::GLOBAL_FLAGS {
        eprintln!(
            "  --{:<26} {}",
            format!("{} {}", def.name, def.value_name),
            def.help
        );
    }
    eprintln!(
        "  (SOUP_LOG=debug|info|warn|off controls stderr log verbosity;\n\
         \x20  SOUP_LOG=off yields silent machine-readable runs)"
    );
}

fn cmd_generate(flags: &Flags) -> Result<()> {
    let name = flags.req_str("dataset");
    let kind = DatasetKind::from_name(name)
        .ok_or_else(|| SoupError::usage(format!("unknown dataset '{name}'")))?;
    let out = flags.req_str("out");
    let dataset = kind.generate_scaled(flags.req_u64("seed"), flags.req_f64("scale"));
    if flags.switch("mmap") {
        save_mmap_dataset(&dataset, out)?;
    } else {
        save_dataset(&dataset, out)?;
    }
    soup_obs::info!(
        "wrote {} ({} nodes, {} edges, {} classes{})",
        out,
        dataset.num_nodes(),
        dataset.graph.num_edges(),
        dataset.num_classes(),
        if flags.switch("mmap") {
            ", soup-graphmmap/1"
        } else {
            ""
        }
    );
    Ok(())
}

fn cmd_train(flags: &Flags) -> Result<()> {
    let dataset = load_dataset(flags.req_str("data"))?;
    let arch_name = flags.req_str("arch");
    let arch = enhanced_soups::gnn::Arch::from_name(arch_name)
        .ok_or_else(|| SoupError::usage(format!("unknown architecture '{arch_name}'")))?;
    let cfg = match arch {
        enhanced_soups::gnn::Arch::Gcn => {
            ModelConfig::gcn(dataset.num_features(), dataset.num_classes())
        }
        enhanced_soups::gnn::Arch::Sage => {
            ModelConfig::sage(dataset.num_features(), dataset.num_classes())
        }
        enhanced_soups::gnn::Arch::Gat => {
            ModelConfig::gat(dataset.num_features(), dataset.num_classes())
        }
        enhanced_soups::gnn::Arch::Gin => {
            ModelConfig::gin(dataset.num_features(), dataset.num_classes())
        }
    }
    .with_hidden(flags.req_usize("hidden"));
    let n = flags.req_usize("ingredients");
    let workers = flags.req_usize("workers");
    let seed = flags.req_u64("seed");
    let fault_rate = flags.req_f64("fault-rate");
    let storage_fault_rate = flags.req_f64("storage-fault-rate");
    let fault_seed = flags.u64("fault-seed").unwrap_or(seed);
    let straggler_ms = flags.req_u64("straggler-deadline-ms");
    let resume = flags.switch("resume");
    let out_dir = PathBuf::from(flags.req_str("out-dir"));

    let tc = TrainConfig {
        epochs: flags.req_usize("epochs"),
        early_stop_patience: None,
        ..TrainConfig::quick()
    };
    let mut opts = TrainOpts::default()
        .with_workers(workers)
        .with_seed(seed)
        .with_retry_budget(flags.req_u64("retry-budget") as u32)
        .with_checkpoint_dir(&out_dir)
        .with_resume(resume);
    if fault_rate > 0.0 || storage_fault_rate > 0.0 {
        opts = opts.with_fault_plan(
            FaultPlan::new(fault_rate, fault_seed).with_storage_rate(storage_fault_rate),
        );
        soup_obs::info!(
            "fault injection: rate {fault_rate}, storage rate {storage_fault_rate}, \
             seed {fault_seed}"
        );
    }
    if straggler_ms > 0 {
        opts = opts.with_straggler_deadline(Duration::from_millis(straggler_ms));
    }
    soup_obs::info!(
        "training {n} {} ingredients on {workers} workers{} ...",
        cfg.arch.name(),
        if resume { " (resuming)" } else { "" }
    );
    let run = train_ingredients_opts(&dataset, &cfg, &tc, n, &opts)?;
    for f in &run.failed {
        soup_obs::warn!(
            "ingredient {} failed permanently after {} attempts: {}",
            f.ordinal,
            f.attempts,
            f.error
        );
    }
    if run.ingredients.is_empty() {
        // Nothing survived: surface the first terminal failure.
        return Err(run
            .failed
            .into_iter()
            .next()
            .map(|f| f.error)
            .unwrap_or_else(|| SoupError::checkpoint("training produced no ingredients")));
    }
    let mut manifest = Manifest {
        config: cfg,
        ingredients: Vec::new(),
    };
    for ing in &run.ingredients {
        let file = checkpoint_name(ing.id);
        soup_obs::info!(
            "  ingredient {} — val acc {:.2}%{} -> {file}",
            ing.id,
            ing.val_accuracy * 100.0,
            if run.resumed.contains(&ing.id) {
                " (resumed)"
            } else {
                ""
            }
        );
        manifest.ingredients.push(ManifestEntry {
            id: ing.id,
            val_accuracy: ing.val_accuracy,
            train_seed: ing.train_seed,
            file,
        });
    }
    let manifest_path = out_dir.join("manifest.json");
    write_manifest(&manifest_path, &manifest)?;
    soup_obs::info!(
        "wrote {} ({} trained, {} resumed, {} failed, {} requeues)",
        manifest_path.display(),
        run.ingredients.len() - run.resumed.len(),
        run.resumed.len(),
        run.failed.len(),
        run.retries,
    );
    // Training is over; don't let its pooled buffers linger into whatever
    // runs next in this process or distort an immediately following soup.
    enhanced_soups::tensor::pool::trim();
    Ok(())
}

/// Build the [`StrategySpec`] shared by `soup` and `serve` from flags.
fn strategy_spec(flags: &Flags, name: &str) -> StrategySpec {
    let mut spec = StrategySpec::new(name);
    spec.epochs = flags.req_usize("epochs");
    spec.granularity = flags.req_usize("granularity");
    spec.pls_k = flags.req_usize("pls-k");
    spec.pls_r = flags.req_usize("pls-r");
    spec
}

fn cmd_soup(flags: &Flags) -> Result<()> {
    let dataset = load_dataset(flags.req_str("data"))?;
    let dir = PathBuf::from(flags.req_str("ckpt-dir"));
    let (cfg, ingredients) = load_manifest(&dir)?;
    // Phase-1 -> Phase-2 boundary: buffers pooled while loading/validating
    // checkpoints would otherwise count against the souping phase's peak
    // memory (the paper's Table III/Fig. 4 quantity).
    let trimmed = enhanced_soups::tensor::pool::trim();
    if trimmed > 0 {
        soup_obs::info!(
            "trimmed {} of pooled phase-1 buffers",
            enhanced_soups::tensor::memory::format_bytes(trimmed)
        );
    }
    let seed = flags.req_u64("seed");
    let strategy_name = flags.req_str("strategy");
    // Phase-2 durability (LS/PLS only): any of --resume / --ckpt-every /
    // --stop-after-epoch turns on durable optimizer-state checkpoints in
    // the checkpoint directory.
    let resume = flags.switch("resume");
    let stop_after = flags.req_usize("stop-after-epoch");
    let storage_fault_rate = flags.req_f64("storage-fault-rate");
    let persist = (resume || stop_after > 0 || flags.provided("ckpt-every")).then(|| {
        Phase2Persist::new(&dir)
            .every(flags.req_usize("ckpt-every"))
            .resume(resume)
            .stop_after((stop_after > 0).then_some(stop_after))
            .faults((storage_fault_rate > 0.0).then(|| {
                StorageFaultPlan::new(storage_fault_rate, flags.u64("fault-seed").unwrap_or(seed))
            }))
    });
    if persist.is_some() && !matches!(strategy_name, "ls" | "pls") {
        return Err(SoupError::usage(
            "--resume/--ckpt-every/--stop-after-epoch apply to --strategy ls|pls only",
        ));
    }
    // All five strategies route through the unified trait entry point; the
    // spec's build() turns bad hyperparameters into usage errors.
    let strategy = strategy_spec(flags, strategy_name).build()?;
    soup_obs::info!(
        "souping {} ingredients with {strategy_name} ...",
        ingredients.len()
    );
    let ctx = SoupCtx::new(&ingredients, &dataset, &cfg, seed).with_persist_opt(persist.as_ref());
    let mixed = strategy.try_soup(&ctx)?;
    let Some(outcome) = mixed else {
        soup_obs::info!(
            "stopped after epoch {stop_after} with a durable phase-2 checkpoint; \
             continue with --resume"
        );
        return Ok(());
    };
    if outcome.is_degraded() {
        soup_obs::warn!("degraded soup — missing ordinals {:?}", outcome.missing);
    }
    let test = test_accuracy(&outcome, &dataset, &cfg);
    soup_obs::info!(
        "{}: val {:.2}%  test {:.2}%  time {:.3}s  peak-mem {}  spmm-saved {}",
        strategy_name,
        outcome.val_accuracy * 100.0,
        test * 100.0,
        outcome.stats.wall_time.as_secs_f64(),
        enhanced_soups::tensor::memory::format_bytes(outcome.stats.peak_mem_bytes),
        outcome.stats.spmm_saved,
    );
    if flags.switch("quant-check") {
        quant_check(&cfg, &dataset, &outcome.params, test)?;
    }
    if let Some(out) = flags.str("out") {
        outcome.params.save_json(out)?;
        soup_obs::info!("wrote {out}");
    }
    Ok(())
}

/// `--quant-check`: quantize the souped weights (int8 and bf16) and gate
/// the test-accuracy delta of the quantized forward path at 0.5 pp — the
/// acceptance bound for post-soup quantized inference. Non-zero exit on
/// breach, which is what the CI smoke keys off.
fn quant_check(
    cfg: &ModelConfig,
    dataset: &enhanced_soups::graph::Dataset,
    params: &ParamSet,
    f32_acc: f64,
) -> Result<()> {
    use enhanced_soups::gnn::quant::{evaluate_accuracy_quant, QuantParamSet};
    let ops = PropOps::prepare(cfg.arch, &dataset.graph);
    for kind in [QuantKind::Int8, QuantKind::Bf16] {
        let qp = QuantParamSet::quantize(cfg, params, kind);
        let acc = evaluate_accuracy_quant(
            cfg,
            &ops,
            None,
            &qp,
            &dataset.features,
            &dataset.labels,
            &dataset.splits.test,
        );
        let delta_pp = (f32_acc - acc) * 100.0;
        soup_obs::info!(
            "quant-check {kind}: test {:.2}% vs f32 {:.2}% (Δ {:+.3} pp), weights {} -> {}",
            acc * 100.0,
            f32_acc * 100.0,
            delta_pp,
            enhanced_soups::tensor::memory::format_bytes(qp.f32_bytes()),
            enhanced_soups::tensor::memory::format_bytes(qp.memory_bytes()),
        );
        if delta_pp.abs() > 0.5 {
            return Err(SoupError::usage(format!(
                "quant-check failed: {kind} accuracy delta {delta_pp:+.3} pp exceeds 0.5 pp"
            )));
        }
    }
    Ok(())
}

fn cmd_eval(flags: &Flags) -> Result<()> {
    let dataset = load_dataset(flags.req_str("data"))?;
    let dir = PathBuf::from(flags.req_str("ckpt-dir"));
    let (cfg, _) = load_manifest(&dir)?;
    let params = ParamSet::load_json(flags.req_str("params"))?;
    let split = flags.req_str("split");
    let mask = match split {
        "train" => &dataset.splits.train,
        "val" => &dataset.splits.val,
        "test" => &dataset.splits.test,
        other => return Err(SoupError::usage(format!("unknown split '{other}'"))),
    };
    let ops = PropOps::prepare(cfg.arch, &dataset.graph);
    let acc = evaluate_accuracy(
        &cfg,
        &ops,
        &params,
        &dataset.features,
        &dataset.labels,
        mask,
    );
    println!("{split} accuracy: {:.4} ({:.2}%)", acc, acc * 100.0);
    Ok(())
}

/// `serve`: load the pool's architecture, pick the model (saved `--params`
/// or a startup soup), and run the micro-batching TCP loop until a
/// SHUTDOWN request arrives.
fn cmd_serve(flags: &Flags) -> Result<()> {
    let dataset = load_dataset(flags.req_str("data"))?;
    let dir = PathBuf::from(flags.req_str("ckpt-dir"));
    let (cfg, ingredients) = load_manifest(&dir)?;
    let params = match flags.str("params") {
        Some(path) => ParamSet::load_json(path)?,
        None => {
            let name = flags.req_str("strategy");
            let mut spec = StrategySpec::new(name);
            spec.epochs = 50;
            let strategy = spec.build()?;
            soup_obs::info!(
                "no --params: souping {} ingredients with {name} for serving ...",
                ingredients.len()
            );
            let ctx = SoupCtx::new(&ingredients, &dataset, &cfg, flags.req_u64("seed"));
            strategy
                .try_soup(&ctx)?
                .expect("startup souping runs without a stop-after budget")
                .params
        }
    };
    let quant = match flags.str("quant") {
        None => None,
        Some("int8") => Some(QuantKind::Int8),
        Some("bf16") => Some(QuantKind::Bf16),
        Some(other) => {
            return Err(SoupError::usage(format!(
                "--quant: unknown kind '{other}' (int8 | bf16)"
            )))
        }
    };
    let port = flags.req_u64("port");
    if port > u16::MAX as u64 {
        return Err(SoupError::usage(format!("--port {port} exceeds 65535")));
    }
    let config = ServeConfig {
        port: port as u16,
        max_batch: flags.req_usize("max-batch"),
        max_delay: Duration::from_micros(flags.req_u64("max-delay-us")),
        queue_depth: flags.req_usize("queue-depth"),
        workers: flags.req_usize("workers"),
        quant,
        idle_timeout: Duration::from_millis(flags.req_u64("idle-timeout-ms").max(1)),
    };
    if config.max_batch == 0 || config.queue_depth == 0 {
        return Err(SoupError::usage(
            "--max-batch and --queue-depth must be positive",
        ));
    }
    let server = Server::start(dataset, cfg, params, config)?;
    // Machine-readable so scripts (and CI) can discover an ephemeral port.
    println!("SERVING {}", server.addr());
    server.join();
    soup_obs::info!("serve loop exited");
    Ok(())
}

/// `query`: one-shot client. Actions run in flag order: ping, predict,
/// swap, resoup, stats, shutdown — any subset may be combined.
fn cmd_query(flags: &Flags) -> Result<()> {
    let addr = flags.req_str("addr");
    let addr: std::net::SocketAddr = addr
        .parse()
        .map_err(|_| SoupError::usage(format!("--addr: cannot parse '{addr}' as HOST:PORT")))?;
    let mut client = Client::connect(addr)?;
    let mut acted = false;
    if flags.switch("ping") {
        println!("version {}", client.ping()?);
        acted = true;
    }
    if let Some(list) = flags.str("nodes") {
        let nodes = list
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|s| {
                s.trim()
                    .parse::<u32>()
                    .map_err(|_| SoupError::usage(format!("--nodes: bad node id '{s}'")))
            })
            .collect::<Result<Vec<u32>>>()?;
        match client.predict(&nodes)? {
            PredictResult::Classes { version, classes } => {
                for (node, class) in nodes.iter().zip(&classes) {
                    println!("node {node} -> class {class}");
                }
                println!("(model version {version})");
            }
            PredictResult::Overloaded => {
                return Err(SoupError::usage("server overloaded — retry later"))
            }
        }
        acted = true;
    }
    if let Some(path) = flags.str("swap") {
        println!("promoted version {}", client.swap(path)?);
        acted = true;
    }
    if let Some(strategy) = flags.str("resoup") {
        let dir = flags
            .str("ckpt-dir")
            .ok_or_else(|| SoupError::usage("--resoup needs --ckpt-dir"))?;
        println!(
            "resouped version {}",
            client.resoup(strategy, dir, flags.req_u64("seed"))?
        );
        acted = true;
    }
    if flags.switch("stats") {
        println!("{}", client.stats()?);
        acted = true;
    }
    if flags.switch("shutdown") {
        client.shutdown()?;
        println!("server stopping");
        acted = true;
    }
    if !acted {
        return Err(SoupError::usage(
            "query: nothing to do — give --ping, --nodes, --swap, --resoup, --stats, or --shutdown",
        ));
    }
    Ok(())
}

/// Offline integrity audit of an artifact directory: envelope checksums,
/// format versions, manifest/journal consistency, NaN scans of every
/// parameter payload, and the phase-2 optimizer states. Prints one line per
/// artifact and fails (non-zero exit) if anything is corrupt.
fn cmd_verify(flags: &Flags) -> Result<()> {
    let dir = flags
        .positional
        .first()
        .map(String::as_str)
        .or_else(|| flags.str("ckpt-dir"))
        .ok_or_else(|| SoupError::usage("usage: soupctl verify DIR"))?;
    let dir = PathBuf::from(dir);
    if !dir.is_dir() {
        return Err(SoupError::usage(format!(
            "{} is not a directory",
            dir.display()
        )));
    }
    let mut problems: Vec<String> = Vec::new();
    let mut checked = 0usize;
    let note = |ok: bool, what: String, problems: &mut Vec<String>| {
        println!("  [{}] {what}", if ok { "ok" } else { "CORRUPT" });
        if !ok {
            problems.push(what);
        }
    };

    // Manifest: must parse; its journal (if present) must decode.
    let manifest_path = dir.join("manifest.json");
    let mut manifest: Option<Manifest> = None;
    if manifest_path.exists() {
        checked += 1;
        match std::fs::read_to_string(&manifest_path)
            .map_err(|e| SoupError::io_at(&manifest_path, e))
            .and_then(|json| {
                serde_json::from_str::<Manifest>(&json)
                    .map_err(|e| SoupError::parse(format!("manifest: {e}")))
            }) {
            Ok(m) => {
                note(
                    true,
                    format!("manifest.json ({} entries)", m.ingredients.len()),
                    &mut problems,
                );
                manifest = Some(m);
            }
            Err(e) => note(false, format!("manifest.json: {e}"), &mut problems),
        }
        match enhanced_soups::store::load_journal(&dir) {
            Ok(Some(j)) => note(
                true,
                format!(
                    "journal (phase {}, {} completed ordinals)",
                    j.phase,
                    j.completed.len()
                ),
                &mut problems,
            ),
            Ok(None) => {}
            Err(e) => note(false, format!("journal: {e}"), &mut problems),
        }
    }

    // Ingredient checkpoints: every manifest entry plus any stray
    // ingredient_* file on disk. load_checkpoint verifies the envelope
    // checksum and format version; the scan rejects non-finite parameters.
    let mut files: Vec<String> = manifest
        .as_ref()
        .map(|m| m.ingredients.iter().map(|e| e.file.clone()).collect())
        .unwrap_or_default();
    if let Ok(entries) = std::fs::read_dir(&dir) {
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with("ingredient_") && !files.contains(&name) {
                files.push(name);
            }
        }
    }
    files.sort();
    for file in &files {
        checked += 1;
        let verdict = load_checkpoint(dir.join(file)).and_then(|ck| {
            if ck
                .params
                .flat()
                .all(|t| t.data().iter().all(|v| v.is_finite()))
            {
                Ok(ck)
            } else {
                Err(SoupError::corrupt("non-finite parameters"))
            }
        });
        match verdict {
            Ok(ck) => note(
                true,
                format!(
                    "{file} (ingredient {}, val acc {:.4})",
                    ck.id, ck.val_accuracy
                ),
                &mut problems,
            ),
            Err(e) => note(false, format!("{file}: {e}"), &mut problems),
        }
    }

    // Phase-2 optimizer states.
    for strategy in ["ls", "pls"] {
        let path = enhanced_soups::soup::Phase2Persist::state_path(&dir, strategy);
        match load_state(&path) {
            Ok(None) => {}
            Ok(Some(state)) => {
                checked += 1;
                let finite = state
                    .alphas
                    .iter()
                    .chain(state.best_alphas.iter().flatten())
                    .all(|t| t.data().iter().all(|v| v.is_finite()));
                note(
                    finite,
                    format!(
                        "phase2_{strategy}.ck (epoch {}/{}{})",
                        state.next_epoch,
                        state.total_epochs,
                        if finite { "" } else { ": non-finite α" }
                    ),
                    &mut problems,
                );
            }
            Err(e) => {
                checked += 1;
                note(false, format!("phase2_{strategy}.ck: {e}"), &mut problems);
            }
        }
    }

    if checked == 0 {
        return Err(SoupError::usage(format!(
            "{}: nothing to verify (no manifest, checkpoints, or phase-2 states)",
            dir.display()
        )));
    }
    if problems.is_empty() {
        println!("{}: {checked} artifacts verified, all clean", dir.display());
        Ok(())
    } else {
        Err(SoupError::corrupt(format!(
            "{}: {} of {checked} artifacts corrupt: {}",
            dir.display(),
            problems.len(),
            problems.join("; ")
        )))
    }
}

fn cmd_trace_validate(flags: &Flags) -> Result<()> {
    let file = flags
        .positional
        .first()
        .map(String::as_str)
        .or_else(|| flags.str("file"))
        .ok_or_else(|| SoupError::usage("usage: soupctl trace-validate FILE"))?;
    let stats = enhanced_soups::obs::trace::validate_file(file)?;
    println!(
        "{file}: valid {} trace — {} lines, {} spans ({} distinct), {} events ({} distinct), \
         {} logs, metrics record: {}",
        enhanced_soups::obs::trace::SCHEMA,
        stats.lines,
        stats.spans,
        stats.span_paths.len(),
        stats.events,
        stats.event_names.len(),
        stats.logs,
        if stats.has_metrics { "yes" } else { "no" },
    );
    Ok(())
}

/// Offline observability tooling over `--trace-out` / `--metrics-out`
/// artifacts: `report` re-renders the end-of-run summary from a trace,
/// `tail` inspects a live time series, `diff` compares two runs with a
/// noise band, and `flame` exports an inferno-compatible folded-stack
/// file. The rendered output is the command's product, so it goes to
/// stdout unconditionally (not through `SOUP_LOG`).
fn cmd_obs(flags: &Flags) -> Result<()> {
    let usage = "usage: soupctl obs <report|tail|diff|flame> FILE...";
    let Some((sub, files)) = flags.positional.split_first() else {
        return Err(SoupError::usage(usage));
    };
    match sub.as_str() {
        "report" => {
            let file = files
                .first()
                .ok_or_else(|| SoupError::usage("usage: soupctl obs report <trace.jsonl>"))?;
            let content =
                std::fs::read_to_string(file).map_err(|e| SoupError::io_at(Path::new(file), e))?;
            // The metrics record is the registry snapshot `finish()` wrote.
            let snapshot = content
                .lines()
                .filter_map(|line| serde_json::from_str::<serde::Value>(line).ok())
                .find(|v| v.get("type").and_then(serde::Value::as_str) == Some("metrics"))
                .and_then(|v| enhanced_soups::obs::registry::snapshot_from_value(&v))
                .ok_or_else(|| {
                    SoupError::parse(format!("{file}: no parseable `metrics` record"))
                })?;
            print!(
                "{}",
                enhanced_soups::obs::report::render_snapshot(&snapshot)
            );
            Ok(())
        }
        "tail" => {
            let file = files.first().ok_or_else(|| {
                SoupError::usage("usage: soupctl obs tail <metrics.jsonl> [--last N]")
            })?;
            let last = flags.req_usize("last");
            let series = enhanced_soups::obs::series::validate_file(file)?;
            println!(
                "{file}: {} samples at {}ms{}",
                series.samples.len(),
                series.interval_ms,
                if series.complete {
                    ""
                } else {
                    " (no footer: run still live or crashed)"
                }
            );
            let skip = series.samples.len().saturating_sub(last);
            for sample in &series.samples[skip..] {
                // The busiest counters this tick tell you what the run is
                // actually doing right now.
                let mut deltas: Vec<(&str, u64)> = sample
                    .counters
                    .iter()
                    .filter(|(_, _, d)| *d > 0)
                    .map(|(n, _, d)| (n.as_str(), *d))
                    .collect();
                deltas.sort_by_key(|&(_, d)| std::cmp::Reverse(d));
                let top: Vec<String> = deltas
                    .iter()
                    .take(3)
                    .map(|(n, d)| format!("{n}+{d}"))
                    .collect();
                println!(
                    "  #{:<5} t={:>9.3}s rss={:>10} {}",
                    sample.seq,
                    sample.ts_us as f64 / 1e6,
                    enhanced_soups::obs::report::fmt_bytes(sample.rss_bytes),
                    top.join(" ")
                );
            }
            if let Some(sample) = series.samples.last() {
                for (name, value) in &sample.gauges {
                    println!("  {name:<52} {value:>14.4}");
                }
            }
            Ok(())
        }
        "diff" => {
            let (base, new) = match files {
                [base, new, ..] => (base, new),
                _ => {
                    return Err(SoupError::usage(
                        "usage: soupctl obs diff <base.jsonl> <new.jsonl> [--noise F]",
                    ))
                }
            };
            let noise = flags
                .f64("noise")
                .unwrap_or(enhanced_soups::obs::diff::DEFAULT_NOISE);
            let report = enhanced_soups::obs::diff::diff_traces(base, new, noise)?;
            print!("{}", report.render());
            if report.has_regressions() && flags.switch("fail-on-regress") {
                return Err(SoupError::corrupt(format!(
                    "{} span(s) regressed beyond the ±{:.0}% noise band",
                    report.regressions().count(),
                    noise * 100.0
                )));
            }
            Ok(())
        }
        "flame" => {
            let file = files.first().ok_or_else(|| {
                SoupError::usage("usage: soupctl obs flame <trace.jsonl> [--out FILE]")
            })?;
            let out = flags.req_str("out");
            let stacks = enhanced_soups::obs::flame::write_folded(file, out)?;
            println!("wrote {out} ({stacks} stacks)");
            Ok(())
        }
        other => Err(SoupError::usage(format!(
            "unknown obs subcommand '{other}' — {usage}"
        ))),
    }
}

/// `partition`: open an out-of-core dataset, run the streaming LDG
/// partitioner, and print the quality triplet the sharded pipeline lives
/// and dies by — edge-cut, halo fraction, balance — plus per-shard halo
/// counts. With `--out`, also rewrite the dataset shard-ordered (the
/// prepare step `shard` otherwise performs itself). The metrics are
/// exported as gauges so `--metrics-out` series and `soupctl obs` see them.
fn cmd_partition(flags: &Flags) -> Result<()> {
    let data = flags.req_str("data");
    let k = flags.req_usize("k");
    if k == 0 {
        return Err(SoupError::usage("--k must be positive"));
    }
    let src = MmapDataset::open(data)?;
    src.validate()?;
    if k > src.num_nodes() {
        return Err(SoupError::usage(format!(
            "--k {k} exceeds the dataset's {} nodes",
            src.num_nodes()
        )));
    }
    let (nodes, nnz) = (src.num_nodes(), src.num_directed_edges());
    let quality = match flags.str("out") {
        Some(out) => {
            drop(src); // prepare re-opens the source; don't hold two maps
            let report = prepare_sharded_dataset(data, k, out)?;
            soup_obs::info!("wrote {out} — shard-ordered, ranges {:?}", report.ranges);
            report.quality
        }
        None => analyze_sharding(&src, k).1,
    };
    quality.export_gauges();
    println!("{data}: {nodes} nodes, {nnz} directed edges, k = {k}");
    println!(
        "  edge-cut:      {} ({:.2}% of undirected edges)",
        quality.edge_cut,
        200.0 * quality.edge_cut as f64 / nnz.max(1) as f64
    );
    println!(
        "  halo fraction: {:.4} (remote feature rows fetched per node)",
        quality.halo_fraction
    );
    println!(
        "  balance:       {:.4} (largest shard / ideal n/k)",
        quality.balance
    );
    println!("  halo counts:   {:?}", quality.halo_counts);
    Ok(())
}

/// `shard`: the end-to-end multi-process pipeline. Partitions + rewrites
/// the dataset shard-ordered (unless resuming an existing run directory),
/// forks one `shard-worker` per shard, and aggregates their shard-local
/// test counts into a global accuracy. Each worker's peak RSS covers only
/// its own shard's pages — the ≈R/K memory behaviour `bench_shard`
/// measures.
fn cmd_shard(flags: &Flags) -> Result<()> {
    let data = flags.req_str("data");
    let k = flags.req_usize("k");
    if k == 0 {
        return Err(SoupError::usage("--k must be positive"));
    }
    let arch = flags.req_str("arch");
    if enhanced_soups::gnn::Arch::from_name(arch).is_none() {
        return Err(SoupError::usage(format!("unknown architecture '{arch}'")));
    }
    let out_dir = PathBuf::from(flags.req_str("out-dir"));
    std::fs::create_dir_all(&out_dir).map_err(|e| SoupError::io_at(&out_dir, e))?;
    let sharded = out_dir.join("sharded.gmm");
    let plan_path = out_dir.join("plan.json");
    let resume = flags.switch("resume");

    let worker_timeout_ms = (flags.req_f64("worker-timeout").max(0.1) * 1000.0) as u64;
    let restart_budget = flags.req_u64("restart-budget") as u32;
    let chaos = {
        let plan = enhanced_soups::distrib::ChaosPlan {
            seed: flags.req_u64("chaos-seed"),
            kills: parse_kill_list(flags.str("chaos-kill").unwrap_or(""))?,
            kill_rate: flags.req_f64("chaos-kill-rate"),
            persistent_kills: parse_kill_list(flags.str("chaos-kill-every").unwrap_or(""))?,
            frame_rate: flags.req_f64("chaos-frame-rate"),
            frame_delay_ms: flags.req_u64("chaos-frame-delay-ms"),
            corrupt_journal: parse_shard_list(flags.str("chaos-corrupt-journal").unwrap_or(""))?,
        };
        plan.is_active().then_some(plan)
    };

    // A resumed run must keep its original plan (seeds, ranges, shard
    // count) — only the resume bit flips, supervision knobs may be
    // re-tuned, and chaos never carries over into a recovery run.
    let plan = if resume && plan_path.exists() && sharded.exists() {
        let mut plan = ShardPlan::load(&plan_path)?;
        if plan.k != k && flags.provided("k") {
            return Err(SoupError::usage(format!(
                "--resume: run directory was sharded with k={}, not k={k}",
                plan.k
            )));
        }
        plan.resume = true;
        if flags.provided("worker-timeout") {
            plan.worker_timeout_ms = worker_timeout_ms;
        }
        if flags.provided("restart-budget") {
            plan.restart_budget = restart_budget;
        }
        plan.chaos = chaos;
        soup_obs::info!(
            "resuming sharded run in {} (k={})",
            out_dir.display(),
            plan.k
        );
        plan
    } else {
        soup_obs::info!("partitioning {data} into {k} shards ...");
        let report = prepare_sharded_dataset(data, k, &sharded)?;
        report.quality.export_gauges();
        soup_obs::info!(
            "shard-ordered {} nodes — edge-cut {}, halo fraction {:.4}, balance {:.3}",
            report.nodes,
            report.quality.edge_cut,
            report.quality.halo_fraction,
            report.quality.balance
        );
        ShardPlan {
            version: 1,
            dataset: sharded.display().to_string(),
            k,
            ranges: report.ranges,
            seed: flags.req_u64("seed"),
            rounds: flags.req_usize("ingredients"),
            arch: arch.to_string(),
            hidden: flags.req_usize("hidden"),
            layers: flags.req_usize("layers"),
            dropout: flags.req_f64("dropout") as f32,
            epochs: flags.req_usize("epochs"),
            lr: flags.req_f64("lr") as f32,
            strategy: flags.req_str("strategy").to_string(),
            soup_epochs: flags.req_usize("soup-epochs"),
            pls_k: flags.req_usize("pls-k"),
            pls_r: flags.req_usize("pls-r"),
            out_dir: out_dir.display().to_string(),
            no_shm: flags.switch("no-shm"),
            resume,
            worker_timeout_ms,
            restart_budget,
            chaos,
        }
    };
    // Catch a bad strategy name here, not as a cryptic worker exit.
    let mut spec = StrategySpec::new(plan.strategy.clone());
    spec.epochs = plan.soup_epochs;
    spec.pls_k = plan.pls_k;
    spec.pls_r = plan.pls_r;
    spec.build()?;

    let exe = std::env::current_exe().map_err(SoupError::from)?;
    let launch = WorkerLaunch::new(exe, &["shard-worker"]);
    soup_obs::info!(
        "launching {} shard workers ({} ingredients each, strategy {}) ...",
        plan.k,
        plan.rounds,
        plan.strategy
    );
    let report = run_sharded(&plan, &launch)?;
    if report.is_degraded() {
        soup_obs::warn!(
            "run degraded: shards {:?} exhausted their restart budget; \
             accuracy covers the {} surviving shard(s) only (see {}/run.json)",
            report.missing,
            report.per_shard.len(),
            out_dir.display()
        );
    }
    if report.restarts > 0 {
        soup_obs::info!(
            "supervisor recovered {} worker crash(es)/hang(s) via respawn",
            report.restarts
        );
    }
    for r in &report.per_shard {
        soup_obs::info!(
            "  shard {} — val {:.2}% test {:.2}% ({}/{} test nodes), \
             {} ingredients ({} resumed), halo {} rows via {}, peak rss {}",
            r.shard,
            r.val_accuracy * 100.0,
            r.test_accuracy * 100.0,
            r.correct,
            r.test_total,
            r.ingredients,
            r.resumed,
            r.halo_nodes,
            if r.used_shm { "shared map" } else { "sockets" },
            enhanced_soups::obs::report::fmt_bytes(r.peak_rss_bytes),
        );
    }
    println!(
        "sharded {} (k={}{}): test {:.2}%  wall {:.3}s  max worker peak rss {}",
        plan.strategy,
        plan.k,
        if report.is_degraded() {
            format!(", DEGRADED — missing shards {:?}", report.missing)
        } else {
            String::new()
        },
        report.test_accuracy * 100.0,
        report.wall_ms as f64 / 1000.0,
        enhanced_soups::obs::report::fmt_bytes(report.max_worker_peak_rss),
    );
    Ok(())
}

/// `shard-worker` (hidden): the process `shard` forks, one per shard. All
/// behaviour lives in [`run_shard_worker`]; stdout stays quiet because the
/// coordinator owns user-facing reporting.
fn cmd_shard_worker(flags: &Flags) -> Result<()> {
    let plan = PathBuf::from(flags.req_str("plan"));
    let epoch = flags.req_u64("epoch") as u32;
    let result = run_shard_worker(&plan, flags.req_usize("shard"), epoch)?;
    soup_obs::info!(
        "shard {} done — val {:.2}% test {:.2}%, {} ingredients",
        result.shard,
        result.val_accuracy * 100.0,
        result.test_accuracy * 100.0,
        result.ingredients
    );
    Ok(())
}

fn cmd_diversity(flags: &Flags) -> Result<()> {
    let dataset = load_dataset(flags.req_str("data"))?;
    let dir = PathBuf::from(flags.req_str("ckpt-dir"));
    let (cfg, ingredients) = load_manifest(&dir)?;
    let report = diversity_report(&ingredients, &dataset, &cfg);
    println!(
        "ingredient pool diversity ({} ingredients):",
        ingredients.len()
    );
    println!(
        "  mean pairwise weight distance: {:.4}",
        report.mean_weight_distance
    );
    println!(
        "  mean prediction disagreement:  {:.2}%",
        report.mean_disagreement * 100.0
    );
    println!(
        "  val-accuracy std:              {:.3}%",
        report.val_acc_std * 100.0
    );
    println!(
        "  (§V-A: pools with tiny spread favour uninformed US; dispersed pools favour GIS/LS)"
    );
    Ok(())
}
