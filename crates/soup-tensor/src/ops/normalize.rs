//! Row-wise L2 normalization.
//!
//! The stabiliser GraphSAGE's original paper applies to every layer output
//! and the one our GIN layers use in place of BatchNorm: sum aggregation
//! over hub nodes produces activations whose norm scales with degree, and
//! without normalisation the MLP saturates (dead ReLUs, saturated
//! softmax). Deterministic and batch-independent, unlike BatchNorm.

use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

impl Tape {
    /// Normalise each row to unit L2 norm: `y = x / max(‖x‖₂, eps)`.
    ///
    /// Backward (per row, when the norm is above `eps`):
    /// `∂L/∂x = (g − y·(yᵀg)) / ‖x‖`.
    pub fn l2_normalize_rows(&self, x: Var, eps: f32) -> Var {
        assert!(eps > 0.0, "eps must be positive");
        let xv = self.value(x);
        let (n, c) = (xv.rows(), xv.cols());
        let mut out = crate::pool::take_zeroed(n * c);
        let mut norms = crate::pool::take_zeroed(n);
        for r in 0..n {
            let row = xv.row(r);
            let norm = row.iter().map(|&v| v * v).sum::<f32>().sqrt().max(eps);
            norms[r] = norm;
            for (o, &v) in out[r * c..(r + 1) * c].iter_mut().zip(row) {
                *o = v / norm;
            }
        }
        self.push_op(
            Tensor::from_vec(n, c, out),
            vec![x],
            Box::new(move |g, _, out| {
                let (n, c) = (g.rows(), g.cols());
                let mut gx = crate::pool::take_zeroed(n * c);
                for r in 0..n {
                    let grow = g.row(r);
                    let yrow = out.row(r);
                    let dot: f32 = grow.iter().zip(yrow).map(|(&a, &b)| a * b).sum();
                    for i in 0..c {
                        gx[r * c + i] = (grow[i] - yrow[i] * dot) / norms[r];
                    }
                }
                vec![Some(Tensor::from_vec(n, c, gx))]
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::rng::SplitMix64;
    use crate::tape::{gradcheck, Tape};
    use crate::tensor::Tensor;

    #[test]
    fn rows_have_unit_norm() {
        let mut rng = SplitMix64::new(1);
        let x = Tensor::randn(5, 4, 3.0, &mut rng);
        let tape = Tape::new();
        let y = tape.value(tape.l2_normalize_rows(tape.constant(x), 1e-8));
        for r in 0..5 {
            let norm: f32 = y.row(r).iter().map(|&v| v * v).sum::<f32>().sqrt();
            assert!((norm - 1.0).abs() < 1e-5, "row {r} norm {norm}");
        }
    }

    #[test]
    fn zero_rows_stay_zero() {
        let tape = Tape::new();
        let x = tape.constant(Tensor::zeros(2, 3));
        let y = tape.value(tape.l2_normalize_rows(x, 1e-8));
        assert_eq!(y.sum(), 0.0);
        assert!(y.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn scale_invariant_forward() {
        let mut rng = SplitMix64::new(2);
        let x = Tensor::randn(3, 4, 1.0, &mut rng);
        let tape = Tape::new();
        let a = tape.value(tape.l2_normalize_rows(tape.constant(x.clone()), 1e-8));
        let b = tape.value(tape.l2_normalize_rows(tape.constant(x.scale(7.0)), 1e-8));
        assert!(a.allclose(&b, 1e-5));
    }

    #[test]
    fn gradcheck_normalization() {
        let mut rng = SplitMix64::new(3);
        // Keep rows away from zero norm.
        let x = Tensor::randn(3, 4, 1.0, &mut rng).map(|v| v + 0.5);
        let w = Tensor::randn(3, 4, 1.0, &mut rng);
        gradcheck(
            &|t, v| {
                let y = t.l2_normalize_rows(v[0], 1e-8);
                let wc = t.constant(w.clone());
                t.sum(t.mul(y, wc))
            },
            &[x],
            1e-3,
            3e-2,
        )
        .unwrap();
    }

    #[test]
    fn gradient_is_orthogonal_to_output() {
        // With g = y, backward must be ~0 (normalisation kills the radial
        // component).
        let mut rng = SplitMix64::new(4);
        let x = Tensor::randn(4, 3, 1.0, &mut rng);
        let tape = Tape::new();
        let xv = tape.param(x);
        let y = tape.l2_normalize_rows(xv, 1e-8);
        // loss = 0.5 * sum(y^2) = const => grad x = 0.
        let loss = tape.scale(tape.sum(tape.mul(y, y)), 0.5);
        let g = tape.backward(loss);
        assert!(g.get(xv).unwrap().max_abs() < 1e-5);
    }
}
